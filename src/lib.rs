//! # riq — Scheduling Reusable Instructions for Power Reduction
//!
//! Facade crate for the riq workspace, a from-scratch Rust reproduction of
//! the DATE 2004 paper *Scheduling Reusable Instructions for Power
//! Reduction* (Hu, Vijaykrishnan, Kim, Kandemir, Irwin).
//!
//! The paper proposes an out-of-order issue queue that detects tight loops
//! at decode, buffers their instructions inside the queue, and then
//! re-supplies ("reuses") the buffered instructions itself while the whole
//! pipeline front-end — instruction cache, branch predictor, fetch queue and
//! decoder — is clock-gated.
//!
//! This crate re-exports the workspace's public API under stable module
//! names:
//!
//! * [`isa`] — the MIPS-like target ISA;
//! * [`asm`] — assembler and program images;
//! * [`emu`] — functional reference emulator;
//! * [`ckpt`] — architectural checkpoints: fast-forward, a versioned
//!   binary snapshot codec, warm-window capture, and the shared store
//!   that amortizes fast-forwards across sweep configurations;
//! * [`mem`] — cache/TLB/memory timing models;
//! * [`bpred`] — branch predictors;
//! * [`power`] — Wattch-style power model;
//! * [`core`] — the cycle-level out-of-order core with the reuse-capable
//!   issue queue (the paper's contribution);
//! * [`kernels`] — loop-nest IR, loop distribution, and the benchmark suite;
//! * [`trace`] — cycle-accurate telemetry: typed trace events, pluggable
//!   sinks, and the JSON layer behind machine-readable run reports;
//! * [`fuzz`] — differential fuzzing: structured program generation, the
//!   emulator-vs-simulator oracle matrix, and automatic shrinking;
//! * [`analyze`] — static analysis: CFG and natural-loop recovery,
//!   reuse-eligibility classification mirroring the hardware detector, a
//!   program linter, and static-vs-dynamic agreement reports.
//!
//! # Examples
//!
//! Run a tiny loop on the baseline and on the reuse pipeline and compare
//! front-end activity:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq::asm::assemble;
//! use riq::core::{Processor, SimConfig};
//! use riq::isa::IntReg;
//!
//! let program = assemble(
//!     r#"
//!     .text
//!         addi $r2, $r0, 100      # trip count
//!     loop:
//!         addi $r3, $r3, 1
//!         addi $r2, $r2, -1
//!         bne  $r2, $r0, loop
//!         halt
//!     "#,
//! )?;
//!
//! let baseline = Processor::new(SimConfig::baseline()).run(&program)?;
//! let reuse = Processor::new(SimConfig::baseline().with_reuse(true)).run(&program)?;
//!
//! let r3 = IntReg::new(3);
//! assert_eq!(baseline.arch_state.int_reg(r3), reuse.arch_state.int_reg(r3));
//! assert!(reuse.stats.gated_cycles > 0);
//! # Ok(())
//! # }
//! ```

pub use riq_analyze as analyze;
pub use riq_asm as asm;
pub use riq_bpred as bpred;
pub use riq_ckpt as ckpt;
pub use riq_core as core;
pub use riq_emu as emu;
pub use riq_fuzz as fuzz;
pub use riq_isa as isa;
pub use riq_kernels as kernels;
pub use riq_mem as mem;
pub use riq_metrics as metrics;
pub use riq_power as power;
pub use riq_trace as trace;
