/root/repo/target/debug/examples/pipeline_trace-e278811a17382576.d: examples/pipeline_trace.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_trace-e278811a17382576.rmeta: examples/pipeline_trace.rs Cargo.toml

examples/pipeline_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
