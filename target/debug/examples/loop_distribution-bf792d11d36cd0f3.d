/root/repo/target/debug/examples/loop_distribution-bf792d11d36cd0f3.d: examples/loop_distribution.rs

/root/repo/target/debug/examples/loop_distribution-bf792d11d36cd0f3: examples/loop_distribution.rs

examples/loop_distribution.rs:
