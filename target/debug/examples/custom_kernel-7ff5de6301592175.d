/root/repo/target/debug/examples/custom_kernel-7ff5de6301592175.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-7ff5de6301592175: examples/custom_kernel.rs

examples/custom_kernel.rs:
