/root/repo/target/debug/examples/power_sweep-203e652960788029.d: examples/power_sweep.rs

/root/repo/target/debug/examples/power_sweep-203e652960788029: examples/power_sweep.rs

examples/power_sweep.rs:
