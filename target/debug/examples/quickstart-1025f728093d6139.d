/root/repo/target/debug/examples/quickstart-1025f728093d6139.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1025f728093d6139: examples/quickstart.rs

examples/quickstart.rs:
