/root/repo/target/debug/examples/custom_kernel-cacfa71c8d42040e.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-cacfa71c8d42040e: examples/custom_kernel.rs

examples/custom_kernel.rs:
