/root/repo/target/debug/examples/pipeline_trace-231fe3a7d84ed020.d: examples/pipeline_trace.rs

/root/repo/target/debug/examples/pipeline_trace-231fe3a7d84ed020: examples/pipeline_trace.rs

examples/pipeline_trace.rs:
