/root/repo/target/debug/examples/loop_distribution-f5c3ad37f3adff81.d: examples/loop_distribution.rs Cargo.toml

/root/repo/target/debug/examples/libloop_distribution-f5c3ad37f3adff81.rmeta: examples/loop_distribution.rs Cargo.toml

examples/loop_distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
