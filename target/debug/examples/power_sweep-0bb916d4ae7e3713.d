/root/repo/target/debug/examples/power_sweep-0bb916d4ae7e3713.d: examples/power_sweep.rs

/root/repo/target/debug/examples/power_sweep-0bb916d4ae7e3713: examples/power_sweep.rs

examples/power_sweep.rs:
