/root/repo/target/debug/examples/pipeline_trace-03212c2a824093d1.d: examples/pipeline_trace.rs

/root/repo/target/debug/examples/pipeline_trace-03212c2a824093d1: examples/pipeline_trace.rs

examples/pipeline_trace.rs:
