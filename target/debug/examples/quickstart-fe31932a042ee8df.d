/root/repo/target/debug/examples/quickstart-fe31932a042ee8df.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fe31932a042ee8df: examples/quickstart.rs

examples/quickstart.rs:
