/root/repo/target/debug/examples/loop_distribution-f57a4760d4a52b1b.d: examples/loop_distribution.rs

/root/repo/target/debug/examples/loop_distribution-f57a4760d4a52b1b: examples/loop_distribution.rs

examples/loop_distribution.rs:
