/root/repo/target/debug/deps/riq_bpred-e5a7e67e8cc989c8.d: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

/root/repo/target/debug/deps/libriq_bpred-e5a7e67e8cc989c8.rlib: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

/root/repo/target/debug/deps/libriq_bpred-e5a7e67e8cc989c8.rmeta: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

crates/bpred/src/lib.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/dir.rs:
crates/bpred/src/predictor.rs:
crates/bpred/src/ras.rs:
