/root/repo/target/debug/deps/trace_events-d2b50baaa3a1af0f.d: tests/trace_events.rs

/root/repo/target/debug/deps/trace_events-d2b50baaa3a1af0f: tests/trace_events.rs

tests/trace_events.rs:
