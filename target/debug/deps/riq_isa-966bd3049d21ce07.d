/root/repo/target/debug/deps/riq_isa-966bd3049d21ce07.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libriq_isa-966bd3049d21ce07.rmeta: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
