/root/repo/target/debug/deps/riq-0110939025b2ce2b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libriq-0110939025b2ce2b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
