/root/repo/target/debug/deps/riq_kernels-be1c66692aba0d2e.d: crates/kernels/src/lib.rs crates/kernels/src/codegen.rs crates/kernels/src/deps.rs crates/kernels/src/distribute.rs crates/kernels/src/generator.rs crates/kernels/src/ir.rs crates/kernels/src/suite.rs crates/kernels/src/transforms.rs

/root/repo/target/debug/deps/riq_kernels-be1c66692aba0d2e: crates/kernels/src/lib.rs crates/kernels/src/codegen.rs crates/kernels/src/deps.rs crates/kernels/src/distribute.rs crates/kernels/src/generator.rs crates/kernels/src/ir.rs crates/kernels/src/suite.rs crates/kernels/src/transforms.rs

crates/kernels/src/lib.rs:
crates/kernels/src/codegen.rs:
crates/kernels/src/deps.rs:
crates/kernels/src/distribute.rs:
crates/kernels/src/generator.rs:
crates/kernels/src/ir.rs:
crates/kernels/src/suite.rs:
crates/kernels/src/transforms.rs:
