/root/repo/target/debug/deps/config_table1-8af59ec5c3af5bf6.d: tests/config_table1.rs Cargo.toml

/root/repo/target/debug/deps/libconfig_table1-8af59ec5c3af5bf6.rmeta: tests/config_table1.rs Cargo.toml

tests/config_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
