/root/repo/target/debug/deps/riq_bench-67633ac210447fd4.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libriq_bench-67633ac210447fd4.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
