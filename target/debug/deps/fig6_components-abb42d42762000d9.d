/root/repo/target/debug/deps/fig6_components-abb42d42762000d9.d: crates/bench/benches/fig6_components.rs crates/bench/benches/common.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_components-abb42d42762000d9.rmeta: crates/bench/benches/fig6_components.rs crates/bench/benches/common.rs Cargo.toml

crates/bench/benches/fig6_components.rs:
crates/bench/benches/common.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
