/root/repo/target/debug/deps/riq_kernels-5216d64e5ded4b02.d: crates/kernels/src/lib.rs crates/kernels/src/codegen.rs crates/kernels/src/deps.rs crates/kernels/src/distribute.rs crates/kernels/src/generator.rs crates/kernels/src/ir.rs crates/kernels/src/suite.rs crates/kernels/src/transforms.rs

/root/repo/target/debug/deps/libriq_kernels-5216d64e5ded4b02.rlib: crates/kernels/src/lib.rs crates/kernels/src/codegen.rs crates/kernels/src/deps.rs crates/kernels/src/distribute.rs crates/kernels/src/generator.rs crates/kernels/src/ir.rs crates/kernels/src/suite.rs crates/kernels/src/transforms.rs

/root/repo/target/debug/deps/libriq_kernels-5216d64e5ded4b02.rmeta: crates/kernels/src/lib.rs crates/kernels/src/codegen.rs crates/kernels/src/deps.rs crates/kernels/src/distribute.rs crates/kernels/src/generator.rs crates/kernels/src/ir.rs crates/kernels/src/suite.rs crates/kernels/src/transforms.rs

crates/kernels/src/lib.rs:
crates/kernels/src/codegen.rs:
crates/kernels/src/deps.rs:
crates/kernels/src/distribute.rs:
crates/kernels/src/generator.rs:
crates/kernels/src/ir.rs:
crates/kernels/src/suite.rs:
crates/kernels/src/transforms.rs:
