/root/repo/target/debug/deps/differential-eca99d71155a0735.d: tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-eca99d71155a0735.rmeta: tests/differential.rs Cargo.toml

tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
