/root/repo/target/debug/deps/riq_core-3743b98c49d07bc1.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libriq_core-3743b98c49d07bc1.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libriq_core-3743b98c49d07bc1.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/fu.rs:
crates/core/src/iq.rs:
crates/core/src/lsq.rs:
crates/core/src/pipeline.rs:
crates/core/src/rename.rs:
crates/core/src/reuse.rs:
crates/core/src/rob.rs:
crates/core/src/specstate.rs:
crates/core/src/stats.rs:
