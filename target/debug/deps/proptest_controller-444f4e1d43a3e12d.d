/root/repo/target/debug/deps/proptest_controller-444f4e1d43a3e12d.d: crates/core/tests/proptest_controller.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_controller-444f4e1d43a3e12d.rmeta: crates/core/tests/proptest_controller.rs Cargo.toml

crates/core/tests/proptest_controller.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
