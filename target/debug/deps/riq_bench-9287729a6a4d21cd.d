/root/repo/target/debug/deps/riq_bench-9287729a6a4d21cd.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libriq_bench-9287729a6a4d21cd.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libriq_bench-9287729a6a4d21cd.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/tables.rs:
