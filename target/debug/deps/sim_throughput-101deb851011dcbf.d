/root/repo/target/debug/deps/sim_throughput-101deb851011dcbf.d: crates/bench/benches/sim_throughput.rs crates/bench/benches/common.rs Cargo.toml

/root/repo/target/debug/deps/libsim_throughput-101deb851011dcbf.rmeta: crates/bench/benches/sim_throughput.rs crates/bench/benches/common.rs Cargo.toml

crates/bench/benches/sim_throughput.rs:
crates/bench/benches/common.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
