/root/repo/target/debug/deps/riq_mem-f39900f80c5f6616.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs Cargo.toml

/root/repo/target/debug/deps/libriq_mem-f39900f80c5f6616.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
