/root/repo/target/debug/deps/ablation_strategy-5bc71afa59c3818e.d: crates/bench/benches/ablation_strategy.rs crates/bench/benches/common.rs Cargo.toml

/root/repo/target/debug/deps/libablation_strategy-5bc71afa59c3818e.rmeta: crates/bench/benches/ablation_strategy.rs crates/bench/benches/common.rs Cargo.toml

crates/bench/benches/ablation_strategy.rs:
crates/bench/benches/common.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
