/root/repo/target/debug/deps/generated_workloads-b21d7f448e6bdd5b.d: tests/generated_workloads.rs

/root/repo/target/debug/deps/generated_workloads-b21d7f448e6bdd5b: tests/generated_workloads.rs

tests/generated_workloads.rs:
