/root/repo/target/debug/deps/proptest_roundtrip-69b3385bc9b76bd6.d: crates/asm/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-69b3385bc9b76bd6.rmeta: crates/asm/tests/proptest_roundtrip.rs Cargo.toml

crates/asm/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
