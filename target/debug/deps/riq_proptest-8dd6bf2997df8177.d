/root/repo/target/debug/deps/riq_proptest-8dd6bf2997df8177.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libriq_proptest-8dd6bf2997df8177.rlib: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libriq_proptest-8dd6bf2997df8177.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
