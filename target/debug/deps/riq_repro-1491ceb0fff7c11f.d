/root/repo/target/debug/deps/riq_repro-1491ceb0fff7c11f.d: crates/bench/src/bin/riq_repro.rs

/root/repo/target/debug/deps/riq_repro-1491ceb0fff7c11f: crates/bench/src/bin/riq_repro.rs

crates/bench/src/bin/riq_repro.rs:
