/root/repo/target/debug/deps/riq_trace-df1328f7382315be.d: crates/trace/src/lib.rs crates/trace/src/events.rs crates/trace/src/json.rs crates/trace/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libriq_trace-df1328f7382315be.rmeta: crates/trace/src/lib.rs crates/trace/src/events.rs crates/trace/src/json.rs crates/trace/src/sink.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/events.rs:
crates/trace/src/json.rs:
crates/trace/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
