/root/repo/target/debug/deps/riq_emu-b3ad10120b4f81bd.d: crates/emu/src/lib.rs crates/emu/src/exec.rs crates/emu/src/machine.rs crates/emu/src/memory.rs

/root/repo/target/debug/deps/riq_emu-b3ad10120b4f81bd: crates/emu/src/lib.rs crates/emu/src/exec.rs crates/emu/src/machine.rs crates/emu/src/memory.rs

crates/emu/src/lib.rs:
crates/emu/src/exec.rs:
crates/emu/src/machine.rs:
crates/emu/src/memory.rs:
