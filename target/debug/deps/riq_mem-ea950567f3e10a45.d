/root/repo/target/debug/deps/riq_mem-ea950567f3e10a45.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/libriq_mem-ea950567f3e10a45.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/libriq_mem-ea950567f3e10a45.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/tlb.rs:
