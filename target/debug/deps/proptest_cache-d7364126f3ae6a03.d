/root/repo/target/debug/deps/proptest_cache-d7364126f3ae6a03.d: crates/mem/tests/proptest_cache.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_cache-d7364126f3ae6a03.rmeta: crates/mem/tests/proptest_cache.rs Cargo.toml

crates/mem/tests/proptest_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
