/root/repo/target/debug/deps/fig9_loopdist-2c7334aab8758972.d: crates/bench/benches/fig9_loopdist.rs crates/bench/benches/common.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_loopdist-2c7334aab8758972.rmeta: crates/bench/benches/fig9_loopdist.rs crates/bench/benches/common.rs Cargo.toml

crates/bench/benches/fig9_loopdist.rs:
crates/bench/benches/common.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
