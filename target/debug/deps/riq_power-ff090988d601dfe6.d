/root/repo/target/debug/deps/riq_power-ff090988d601dfe6.d: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libriq_power-ff090988d601dfe6.rlib: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libriq_power-ff090988d601dfe6.rmeta: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:
