/root/repo/target/debug/deps/config_table1-11116090b2212921.d: tests/config_table1.rs

/root/repo/target/debug/deps/config_table1-11116090b2212921: tests/config_table1.rs

tests/config_table1.rs:
