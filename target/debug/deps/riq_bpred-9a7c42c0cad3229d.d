/root/repo/target/debug/deps/riq_bpred-9a7c42c0cad3229d.d: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs Cargo.toml

/root/repo/target/debug/deps/libriq_bpred-9a7c42c0cad3229d.rmeta: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs Cargo.toml

crates/bpred/src/lib.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/dir.rs:
crates/bpred/src/predictor.rs:
crates/bpred/src/ras.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
