/root/repo/target/debug/deps/riq_isa-3b7734aa45214466.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libriq_isa-3b7734aa45214466.rlib: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libriq_isa-3b7734aa45214466.rmeta: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
