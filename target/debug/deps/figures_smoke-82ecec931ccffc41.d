/root/repo/target/debug/deps/figures_smoke-82ecec931ccffc41.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-82ecec931ccffc41: tests/figures_smoke.rs

tests/figures_smoke.rs:
