/root/repo/target/debug/deps/riq-62b5e151dd15ceb2.d: src/lib.rs

/root/repo/target/debug/deps/riq-62b5e151dd15ceb2: src/lib.rs

src/lib.rs:
