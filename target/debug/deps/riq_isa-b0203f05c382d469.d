/root/repo/target/debug/deps/riq_isa-b0203f05c382d469.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/riq_isa-b0203f05c382d469: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
