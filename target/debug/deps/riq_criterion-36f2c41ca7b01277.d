/root/repo/target/debug/deps/riq_criterion-36f2c41ca7b01277.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libriq_criterion-36f2c41ca7b01277.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
