/root/repo/target/debug/deps/distribution_semantics-f0fa87a5d8ef39f0.d: tests/distribution_semantics.rs

/root/repo/target/debug/deps/distribution_semantics-f0fa87a5d8ef39f0: tests/distribution_semantics.rs

tests/distribution_semantics.rs:
