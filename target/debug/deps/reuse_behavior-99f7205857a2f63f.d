/root/repo/target/debug/deps/reuse_behavior-99f7205857a2f63f.d: tests/reuse_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libreuse_behavior-99f7205857a2f63f.rmeta: tests/reuse_behavior.rs Cargo.toml

tests/reuse_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
