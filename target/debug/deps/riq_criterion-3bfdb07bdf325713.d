/root/repo/target/debug/deps/riq_criterion-3bfdb07bdf325713.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libriq_criterion-3bfdb07bdf325713.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
