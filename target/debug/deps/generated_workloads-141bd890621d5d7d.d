/root/repo/target/debug/deps/generated_workloads-141bd890621d5d7d.d: tests/generated_workloads.rs

/root/repo/target/debug/deps/generated_workloads-141bd890621d5d7d: tests/generated_workloads.rs

tests/generated_workloads.rs:
