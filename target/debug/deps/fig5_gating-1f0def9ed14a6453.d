/root/repo/target/debug/deps/fig5_gating-1f0def9ed14a6453.d: crates/bench/benches/fig5_gating.rs crates/bench/benches/common.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_gating-1f0def9ed14a6453.rmeta: crates/bench/benches/fig5_gating.rs crates/bench/benches/common.rs Cargo.toml

crates/bench/benches/fig5_gating.rs:
crates/bench/benches/common.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
