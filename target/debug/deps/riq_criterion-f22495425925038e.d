/root/repo/target/debug/deps/riq_criterion-f22495425925038e.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/riq_criterion-f22495425925038e: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
