/root/repo/target/debug/deps/distribution_semantics-71d0ecd744a1e1e2.d: tests/distribution_semantics.rs

/root/repo/target/debug/deps/distribution_semantics-71d0ecd744a1e1e2: tests/distribution_semantics.rs

tests/distribution_semantics.rs:
