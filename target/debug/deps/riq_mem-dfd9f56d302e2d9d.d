/root/repo/target/debug/deps/riq_mem-dfd9f56d302e2d9d.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/libriq_mem-dfd9f56d302e2d9d.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/libriq_mem-dfd9f56d302e2d9d.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/tlb.rs:
