/root/repo/target/debug/deps/distribution_semantics-1db0efbc264f977a.d: tests/distribution_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libdistribution_semantics-1db0efbc264f977a.rmeta: tests/distribution_semantics.rs Cargo.toml

tests/distribution_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
