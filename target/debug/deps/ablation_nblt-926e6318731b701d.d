/root/repo/target/debug/deps/ablation_nblt-926e6318731b701d.d: crates/bench/benches/ablation_nblt.rs crates/bench/benches/common.rs Cargo.toml

/root/repo/target/debug/deps/libablation_nblt-926e6318731b701d.rmeta: crates/bench/benches/ablation_nblt.rs crates/bench/benches/common.rs Cargo.toml

crates/bench/benches/ablation_nblt.rs:
crates/bench/benches/common.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
