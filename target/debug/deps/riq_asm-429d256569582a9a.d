/root/repo/target/debug/deps/riq_asm-429d256569582a9a.d: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/builder.rs crates/asm/src/parser.rs crates/asm/src/program.rs

/root/repo/target/debug/deps/riq_asm-429d256569582a9a: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/builder.rs crates/asm/src/parser.rs crates/asm/src/program.rs

crates/asm/src/lib.rs:
crates/asm/src/assembler.rs:
crates/asm/src/builder.rs:
crates/asm/src/parser.rs:
crates/asm/src/program.rs:
