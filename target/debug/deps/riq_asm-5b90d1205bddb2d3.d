/root/repo/target/debug/deps/riq_asm-5b90d1205bddb2d3.d: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/builder.rs crates/asm/src/parser.rs crates/asm/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libriq_asm-5b90d1205bddb2d3.rmeta: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/builder.rs crates/asm/src/parser.rs crates/asm/src/program.rs Cargo.toml

crates/asm/src/lib.rs:
crates/asm/src/assembler.rs:
crates/asm/src/builder.rs:
crates/asm/src/parser.rs:
crates/asm/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
