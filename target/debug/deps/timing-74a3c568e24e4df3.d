/root/repo/target/debug/deps/timing-74a3c568e24e4df3.d: crates/core/tests/timing.rs Cargo.toml

/root/repo/target/debug/deps/libtiming-74a3c568e24e4df3.rmeta: crates/core/tests/timing.rs Cargo.toml

crates/core/tests/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
