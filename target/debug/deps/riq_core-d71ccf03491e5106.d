/root/repo/target/debug/deps/riq_core-d71ccf03491e5106.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libriq_core-d71ccf03491e5106.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/fu.rs:
crates/core/src/iq.rs:
crates/core/src/lsq.rs:
crates/core/src/pipeline.rs:
crates/core/src/rename.rs:
crates/core/src/reuse.rs:
crates/core/src/rob.rs:
crates/core/src/specstate.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
