/root/repo/target/debug/deps/config_table1-d71e7cbdf5aed770.d: tests/config_table1.rs

/root/repo/target/debug/deps/config_table1-d71e7cbdf5aed770: tests/config_table1.rs

tests/config_table1.rs:
