/root/repo/target/debug/deps/proptest_roundtrip-2f4ec8782a891a1c.d: crates/asm/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-2f4ec8782a891a1c: crates/asm/tests/proptest_roundtrip.rs

crates/asm/tests/proptest_roundtrip.rs:
