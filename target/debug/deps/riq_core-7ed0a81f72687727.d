/root/repo/target/debug/deps/riq_core-7ed0a81f72687727.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libriq_core-7ed0a81f72687727.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libriq_core-7ed0a81f72687727.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/fu.rs:
crates/core/src/iq.rs:
crates/core/src/lsq.rs:
crates/core/src/pipeline.rs:
crates/core/src/rename.rs:
crates/core/src/reuse.rs:
crates/core/src/rob.rs:
crates/core/src/specstate.rs:
crates/core/src/stats.rs:
