/root/repo/target/debug/deps/riq_bench-5d914de915cbcddd.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libriq_bench-5d914de915cbcddd.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libriq_bench-5d914de915cbcddd.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
