/root/repo/target/debug/deps/riq_emu-1b860d3a4968aca1.d: crates/emu/src/lib.rs crates/emu/src/exec.rs crates/emu/src/machine.rs crates/emu/src/memory.rs

/root/repo/target/debug/deps/libriq_emu-1b860d3a4968aca1.rlib: crates/emu/src/lib.rs crates/emu/src/exec.rs crates/emu/src/machine.rs crates/emu/src/memory.rs

/root/repo/target/debug/deps/libriq_emu-1b860d3a4968aca1.rmeta: crates/emu/src/lib.rs crates/emu/src/exec.rs crates/emu/src/machine.rs crates/emu/src/memory.rs

crates/emu/src/lib.rs:
crates/emu/src/exec.rs:
crates/emu/src/machine.rs:
crates/emu/src/memory.rs:
