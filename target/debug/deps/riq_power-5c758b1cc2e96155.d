/root/repo/target/debug/deps/riq_power-5c758b1cc2e96155.d: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/debug/deps/riq_power-5c758b1cc2e96155: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:
