/root/repo/target/debug/deps/proptest_structures-e9a11002dee2af89.d: crates/core/tests/proptest_structures.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_structures-e9a11002dee2af89.rmeta: crates/core/tests/proptest_structures.rs Cargo.toml

crates/core/tests/proptest_structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
