/root/repo/target/debug/deps/random_programs-acdf3c3b9d25dd6d.d: tests/random_programs.rs

/root/repo/target/debug/deps/random_programs-acdf3c3b9d25dd6d: tests/random_programs.rs

tests/random_programs.rs:
