/root/repo/target/debug/deps/riq-bee2cffe5c1d0a8a.d: src/lib.rs

/root/repo/target/debug/deps/riq-bee2cffe5c1d0a8a: src/lib.rs

src/lib.rs:
