/root/repo/target/debug/deps/riq_bpred-5f8cdd66c4220275.d: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

/root/repo/target/debug/deps/libriq_bpred-5f8cdd66c4220275.rlib: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

/root/repo/target/debug/deps/libriq_bpred-5f8cdd66c4220275.rmeta: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

crates/bpred/src/lib.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/dir.rs:
crates/bpred/src/predictor.rs:
crates/bpred/src/ras.rs:
