/root/repo/target/debug/deps/riq-f221516296a4b6c6.d: src/lib.rs

/root/repo/target/debug/deps/libriq-f221516296a4b6c6.rlib: src/lib.rs

/root/repo/target/debug/deps/libriq-f221516296a4b6c6.rmeta: src/lib.rs

src/lib.rs:
