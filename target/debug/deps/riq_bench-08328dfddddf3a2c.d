/root/repo/target/debug/deps/riq_bench-08328dfddddf3a2c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libriq_bench-08328dfddddf3a2c.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
