/root/repo/target/debug/deps/riq_mem-f2c59ed01fb55ace.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/riq_mem-f2c59ed01fb55ace: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/tlb.rs:
