/root/repo/target/debug/deps/riq_repro-a2f2a1e1b849ac5d.d: crates/bench/src/bin/riq_repro.rs Cargo.toml

/root/repo/target/debug/deps/libriq_repro-a2f2a1e1b849ac5d.rmeta: crates/bench/src/bin/riq_repro.rs Cargo.toml

crates/bench/src/bin/riq_repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
