/root/repo/target/debug/deps/proptest_semantics-66e66833421bc0b4.d: crates/emu/tests/proptest_semantics.rs

/root/repo/target/debug/deps/proptest_semantics-66e66833421bc0b4: crates/emu/tests/proptest_semantics.rs

crates/emu/tests/proptest_semantics.rs:
