/root/repo/target/debug/deps/generated_workloads-d63c334399ec6d2b.d: tests/generated_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libgenerated_workloads-d63c334399ec6d2b.rmeta: tests/generated_workloads.rs Cargo.toml

tests/generated_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
