/root/repo/target/debug/deps/figures_smoke-91b3142992f05414.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-91b3142992f05414: tests/figures_smoke.rs

tests/figures_smoke.rs:
