/root/repo/target/debug/deps/proptest_encoding-41321c40ff899037.d: crates/isa/tests/proptest_encoding.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_encoding-41321c40ff899037.rmeta: crates/isa/tests/proptest_encoding.rs Cargo.toml

crates/isa/tests/proptest_encoding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
