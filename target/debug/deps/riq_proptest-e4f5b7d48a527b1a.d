/root/repo/target/debug/deps/riq_proptest-e4f5b7d48a527b1a.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libriq_proptest-e4f5b7d48a527b1a.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
