/root/repo/target/debug/deps/riq_emu-701e5706564d8521.d: crates/emu/src/lib.rs crates/emu/src/exec.rs crates/emu/src/machine.rs crates/emu/src/memory.rs Cargo.toml

/root/repo/target/debug/deps/libriq_emu-701e5706564d8521.rmeta: crates/emu/src/lib.rs crates/emu/src/exec.rs crates/emu/src/machine.rs crates/emu/src/memory.rs Cargo.toml

crates/emu/src/lib.rs:
crates/emu/src/exec.rs:
crates/emu/src/machine.rs:
crates/emu/src/memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
