/root/repo/target/debug/deps/proptest_cache-8a8ff25075bb6b56.d: crates/mem/tests/proptest_cache.rs

/root/repo/target/debug/deps/proptest_cache-8a8ff25075bb6b56: crates/mem/tests/proptest_cache.rs

crates/mem/tests/proptest_cache.rs:
