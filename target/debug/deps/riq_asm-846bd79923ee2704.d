/root/repo/target/debug/deps/riq_asm-846bd79923ee2704.d: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/builder.rs crates/asm/src/parser.rs crates/asm/src/program.rs

/root/repo/target/debug/deps/libriq_asm-846bd79923ee2704.rlib: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/builder.rs crates/asm/src/parser.rs crates/asm/src/program.rs

/root/repo/target/debug/deps/libriq_asm-846bd79923ee2704.rmeta: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/builder.rs crates/asm/src/parser.rs crates/asm/src/program.rs

crates/asm/src/lib.rs:
crates/asm/src/assembler.rs:
crates/asm/src/builder.rs:
crates/asm/src/parser.rs:
crates/asm/src/program.rs:
