/root/repo/target/debug/deps/proptest_structures-f5907865266b87bb.d: crates/core/tests/proptest_structures.rs

/root/repo/target/debug/deps/proptest_structures-f5907865266b87bb: crates/core/tests/proptest_structures.rs

crates/core/tests/proptest_structures.rs:
