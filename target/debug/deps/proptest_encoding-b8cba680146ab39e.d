/root/repo/target/debug/deps/proptest_encoding-b8cba680146ab39e.d: crates/isa/tests/proptest_encoding.rs

/root/repo/target/debug/deps/proptest_encoding-b8cba680146ab39e: crates/isa/tests/proptest_encoding.rs

crates/isa/tests/proptest_encoding.rs:
