/root/repo/target/debug/deps/proptest_semantics-307f7987e990dcbc.d: crates/emu/tests/proptest_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_semantics-307f7987e990dcbc.rmeta: crates/emu/tests/proptest_semantics.rs Cargo.toml

crates/emu/tests/proptest_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
