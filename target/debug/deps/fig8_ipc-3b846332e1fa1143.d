/root/repo/target/debug/deps/fig8_ipc-3b846332e1fa1143.d: crates/bench/benches/fig8_ipc.rs crates/bench/benches/common.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_ipc-3b846332e1fa1143.rmeta: crates/bench/benches/fig8_ipc.rs crates/bench/benches/common.rs Cargo.toml

crates/bench/benches/fig8_ipc.rs:
crates/bench/benches/common.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
