/root/repo/target/debug/deps/riq_trace-9fdf00d082202347.d: crates/trace/src/lib.rs crates/trace/src/events.rs crates/trace/src/json.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/riq_trace-9fdf00d082202347: crates/trace/src/lib.rs crates/trace/src/events.rs crates/trace/src/json.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/events.rs:
crates/trace/src/json.rs:
crates/trace/src/sink.rs:
