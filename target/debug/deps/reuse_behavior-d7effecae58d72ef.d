/root/repo/target/debug/deps/reuse_behavior-d7effecae58d72ef.d: tests/reuse_behavior.rs

/root/repo/target/debug/deps/reuse_behavior-d7effecae58d72ef: tests/reuse_behavior.rs

tests/reuse_behavior.rs:
