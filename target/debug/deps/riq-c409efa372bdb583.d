/root/repo/target/debug/deps/riq-c409efa372bdb583.d: src/lib.rs

/root/repo/target/debug/deps/libriq-c409efa372bdb583.rlib: src/lib.rs

/root/repo/target/debug/deps/libriq-c409efa372bdb583.rmeta: src/lib.rs

src/lib.rs:
