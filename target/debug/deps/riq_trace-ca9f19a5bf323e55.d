/root/repo/target/debug/deps/riq_trace-ca9f19a5bf323e55.d: crates/trace/src/lib.rs crates/trace/src/events.rs crates/trace/src/json.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libriq_trace-ca9f19a5bf323e55.rlib: crates/trace/src/lib.rs crates/trace/src/events.rs crates/trace/src/json.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libriq_trace-ca9f19a5bf323e55.rmeta: crates/trace/src/lib.rs crates/trace/src/events.rs crates/trace/src/json.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/events.rs:
crates/trace/src/json.rs:
crates/trace/src/sink.rs:
