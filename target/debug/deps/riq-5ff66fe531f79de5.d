/root/repo/target/debug/deps/riq-5ff66fe531f79de5.d: src/lib.rs

/root/repo/target/debug/deps/libriq-5ff66fe531f79de5.rlib: src/lib.rs

/root/repo/target/debug/deps/libriq-5ff66fe531f79de5.rmeta: src/lib.rs

src/lib.rs:
