/root/repo/target/debug/deps/riq_kernels-a8d5941ab7530146.d: crates/kernels/src/lib.rs crates/kernels/src/codegen.rs crates/kernels/src/deps.rs crates/kernels/src/distribute.rs crates/kernels/src/generator.rs crates/kernels/src/ir.rs crates/kernels/src/suite.rs crates/kernels/src/transforms.rs Cargo.toml

/root/repo/target/debug/deps/libriq_kernels-a8d5941ab7530146.rmeta: crates/kernels/src/lib.rs crates/kernels/src/codegen.rs crates/kernels/src/deps.rs crates/kernels/src/distribute.rs crates/kernels/src/generator.rs crates/kernels/src/ir.rs crates/kernels/src/suite.rs crates/kernels/src/transforms.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/codegen.rs:
crates/kernels/src/deps.rs:
crates/kernels/src/distribute.rs:
crates/kernels/src/generator.rs:
crates/kernels/src/ir.rs:
crates/kernels/src/suite.rs:
crates/kernels/src/transforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
