/root/repo/target/debug/deps/proptest_controller-22bf5f326f0d0fa2.d: crates/core/tests/proptest_controller.rs

/root/repo/target/debug/deps/proptest_controller-22bf5f326f0d0fa2: crates/core/tests/proptest_controller.rs

crates/core/tests/proptest_controller.rs:
