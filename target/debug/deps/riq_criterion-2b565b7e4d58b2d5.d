/root/repo/target/debug/deps/riq_criterion-2b565b7e4d58b2d5.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libriq_criterion-2b565b7e4d58b2d5.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libriq_criterion-2b565b7e4d58b2d5.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
