/root/repo/target/debug/deps/fig7_overall-7b43e2a8b4d11387.d: crates/bench/benches/fig7_overall.rs crates/bench/benches/common.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_overall-7b43e2a8b4d11387.rmeta: crates/bench/benches/fig7_overall.rs crates/bench/benches/common.rs Cargo.toml

crates/bench/benches/fig7_overall.rs:
crates/bench/benches/common.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
