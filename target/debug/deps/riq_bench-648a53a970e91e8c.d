/root/repo/target/debug/deps/riq_bench-648a53a970e91e8c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/riq_bench-648a53a970e91e8c: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
