/root/repo/target/debug/deps/proptest_power-a2eacbde279bb172.d: crates/power/tests/proptest_power.rs

/root/repo/target/debug/deps/proptest_power-a2eacbde279bb172: crates/power/tests/proptest_power.rs

crates/power/tests/proptest_power.rs:
