/root/repo/target/debug/deps/riq_power-208f57c4d9a9c36a.d: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libriq_power-208f57c4d9a9c36a.rlib: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libriq_power-208f57c4d9a9c36a.rmeta: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:
