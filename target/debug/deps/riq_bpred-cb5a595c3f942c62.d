/root/repo/target/debug/deps/riq_bpred-cb5a595c3f942c62.d: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

/root/repo/target/debug/deps/riq_bpred-cb5a595c3f942c62: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

crates/bpred/src/lib.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/dir.rs:
crates/bpred/src/predictor.rs:
crates/bpred/src/ras.rs:
