/root/repo/target/debug/deps/riq_proptest-9793887576044d9f.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/riq_proptest-9793887576044d9f: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
