/root/repo/target/debug/deps/random_programs-6dca17fbaef03c85.d: tests/random_programs.rs

/root/repo/target/debug/deps/random_programs-6dca17fbaef03c85: tests/random_programs.rs

tests/random_programs.rs:
