/root/repo/target/debug/deps/differential-6bdd3d48d6e664b9.d: tests/differential.rs

/root/repo/target/debug/deps/differential-6bdd3d48d6e664b9: tests/differential.rs

tests/differential.rs:
