/root/repo/target/debug/deps/riq_power-781ec4da18e4fc3e.d: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libriq_power-781ec4da18e4fc3e.rmeta: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
