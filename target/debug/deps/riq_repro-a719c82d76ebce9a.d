/root/repo/target/debug/deps/riq_repro-a719c82d76ebce9a.d: crates/bench/src/bin/riq_repro.rs

/root/repo/target/debug/deps/riq_repro-a719c82d76ebce9a: crates/bench/src/bin/riq_repro.rs

crates/bench/src/bin/riq_repro.rs:
