/root/repo/target/debug/deps/differential-8e60fdd1ef0a0205.d: tests/differential.rs

/root/repo/target/debug/deps/differential-8e60fdd1ef0a0205: tests/differential.rs

tests/differential.rs:
