/root/repo/target/debug/deps/timing-8dcc1bdb80fa906e.d: crates/core/tests/timing.rs

/root/repo/target/debug/deps/timing-8dcc1bdb80fa906e: crates/core/tests/timing.rs

crates/core/tests/timing.rs:
