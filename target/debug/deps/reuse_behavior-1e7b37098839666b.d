/root/repo/target/debug/deps/reuse_behavior-1e7b37098839666b.d: tests/reuse_behavior.rs

/root/repo/target/debug/deps/reuse_behavior-1e7b37098839666b: tests/reuse_behavior.rs

tests/reuse_behavior.rs:
