/root/repo/target/debug/deps/riq_core-c1891ef5d22b2d6a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/riq_core-c1891ef5d22b2d6a: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/fu.rs:
crates/core/src/iq.rs:
crates/core/src/lsq.rs:
crates/core/src/pipeline.rs:
crates/core/src/rename.rs:
crates/core/src/reuse.rs:
crates/core/src/rob.rs:
crates/core/src/specstate.rs:
crates/core/src/stats.rs:
