/root/repo/target/debug/deps/riq_repro-8d8d66483e1e8212.d: crates/bench/src/bin/riq_repro.rs Cargo.toml

/root/repo/target/debug/deps/libriq_repro-8d8d66483e1e8212.rmeta: crates/bench/src/bin/riq_repro.rs Cargo.toml

crates/bench/src/bin/riq_repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
