/root/repo/target/debug/deps/proptest_power-0324c73ffd0406e5.d: crates/power/tests/proptest_power.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_power-0324c73ffd0406e5.rmeta: crates/power/tests/proptest_power.rs Cargo.toml

crates/power/tests/proptest_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
