/root/repo/target/debug/deps/riq_power-0a673cf79593e886.d: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libriq_power-0a673cf79593e886.rmeta: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
