/root/repo/target/release/deps/riq_bench-d9519c958e972dcf.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libriq_bench-d9519c958e972dcf.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libriq_bench-d9519c958e972dcf.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
