/root/repo/target/release/deps/riq_core-eaff51c85119e21d.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libriq_core-eaff51c85119e21d.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libriq_core-eaff51c85119e21d.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/fu.rs crates/core/src/iq.rs crates/core/src/lsq.rs crates/core/src/pipeline.rs crates/core/src/rename.rs crates/core/src/reuse.rs crates/core/src/rob.rs crates/core/src/specstate.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/fu.rs:
crates/core/src/iq.rs:
crates/core/src/lsq.rs:
crates/core/src/pipeline.rs:
crates/core/src/rename.rs:
crates/core/src/reuse.rs:
crates/core/src/rob.rs:
crates/core/src/specstate.rs:
crates/core/src/stats.rs:
