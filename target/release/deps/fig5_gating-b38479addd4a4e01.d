/root/repo/target/release/deps/fig5_gating-b38479addd4a4e01.d: crates/bench/benches/fig5_gating.rs crates/bench/benches/common.rs

/root/repo/target/release/deps/fig5_gating-b38479addd4a4e01: crates/bench/benches/fig5_gating.rs crates/bench/benches/common.rs

crates/bench/benches/fig5_gating.rs:
crates/bench/benches/common.rs:
