/root/repo/target/release/deps/riq_isa-0de85c2ff6634079.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libriq_isa-0de85c2ff6634079.rlib: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libriq_isa-0de85c2ff6634079.rmeta: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
