/root/repo/target/release/deps/riq_repro-7641601ad5850985.d: crates/bench/src/bin/riq_repro.rs

/root/repo/target/release/deps/riq_repro-7641601ad5850985: crates/bench/src/bin/riq_repro.rs

crates/bench/src/bin/riq_repro.rs:
