/root/repo/target/release/deps/riq_bench-bac6beb20f386b1e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/riq_bench-bac6beb20f386b1e: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
