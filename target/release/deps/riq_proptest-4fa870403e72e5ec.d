/root/repo/target/release/deps/riq_proptest-4fa870403e72e5ec.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/release/deps/libriq_proptest-4fa870403e72e5ec.rlib: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/release/deps/libriq_proptest-4fa870403e72e5ec.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
