/root/repo/target/release/deps/riq-a02473f802e5ee9b.d: src/lib.rs

/root/repo/target/release/deps/libriq-a02473f802e5ee9b.rlib: src/lib.rs

/root/repo/target/release/deps/libriq-a02473f802e5ee9b.rmeta: src/lib.rs

src/lib.rs:
