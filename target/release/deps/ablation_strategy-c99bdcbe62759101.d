/root/repo/target/release/deps/ablation_strategy-c99bdcbe62759101.d: crates/bench/benches/ablation_strategy.rs crates/bench/benches/common.rs

/root/repo/target/release/deps/ablation_strategy-c99bdcbe62759101: crates/bench/benches/ablation_strategy.rs crates/bench/benches/common.rs

crates/bench/benches/ablation_strategy.rs:
crates/bench/benches/common.rs:
