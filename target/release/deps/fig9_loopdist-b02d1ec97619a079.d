/root/repo/target/release/deps/fig9_loopdist-b02d1ec97619a079.d: crates/bench/benches/fig9_loopdist.rs crates/bench/benches/common.rs

/root/repo/target/release/deps/fig9_loopdist-b02d1ec97619a079: crates/bench/benches/fig9_loopdist.rs crates/bench/benches/common.rs

crates/bench/benches/fig9_loopdist.rs:
crates/bench/benches/common.rs:
