/root/repo/target/release/deps/riq_power-ce48dee87a2cba40.d: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/release/deps/libriq_power-ce48dee87a2cba40.rlib: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/release/deps/libriq_power-ce48dee87a2cba40.rmeta: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:
