/root/repo/target/release/deps/riq_emu-097145a0f513730b.d: crates/emu/src/lib.rs crates/emu/src/exec.rs crates/emu/src/machine.rs crates/emu/src/memory.rs

/root/repo/target/release/deps/libriq_emu-097145a0f513730b.rlib: crates/emu/src/lib.rs crates/emu/src/exec.rs crates/emu/src/machine.rs crates/emu/src/memory.rs

/root/repo/target/release/deps/libriq_emu-097145a0f513730b.rmeta: crates/emu/src/lib.rs crates/emu/src/exec.rs crates/emu/src/machine.rs crates/emu/src/memory.rs

crates/emu/src/lib.rs:
crates/emu/src/exec.rs:
crates/emu/src/machine.rs:
crates/emu/src/memory.rs:
