/root/repo/target/release/deps/riq_criterion-b05a965082bf1864.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libriq_criterion-b05a965082bf1864.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libriq_criterion-b05a965082bf1864.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
