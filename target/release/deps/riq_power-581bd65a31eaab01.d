/root/repo/target/release/deps/riq_power-581bd65a31eaab01.d: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/release/deps/libriq_power-581bd65a31eaab01.rlib: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

/root/repo/target/release/deps/libriq_power-581bd65a31eaab01.rmeta: crates/power/src/lib.rs crates/power/src/energy.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/energy.rs:
crates/power/src/model.rs:
