/root/repo/target/release/deps/sim_throughput-c5f245677a78cc68.d: crates/bench/benches/sim_throughput.rs crates/bench/benches/common.rs

/root/repo/target/release/deps/sim_throughput-c5f245677a78cc68: crates/bench/benches/sim_throughput.rs crates/bench/benches/common.rs

crates/bench/benches/sim_throughput.rs:
crates/bench/benches/common.rs:
