/root/repo/target/release/deps/fig8_ipc-4c9124acb1d48d73.d: crates/bench/benches/fig8_ipc.rs crates/bench/benches/common.rs

/root/repo/target/release/deps/fig8_ipc-4c9124acb1d48d73: crates/bench/benches/fig8_ipc.rs crates/bench/benches/common.rs

crates/bench/benches/fig8_ipc.rs:
crates/bench/benches/common.rs:
