/root/repo/target/release/deps/fig7_overall-9b15e32f95434615.d: crates/bench/benches/fig7_overall.rs crates/bench/benches/common.rs

/root/repo/target/release/deps/fig7_overall-9b15e32f95434615: crates/bench/benches/fig7_overall.rs crates/bench/benches/common.rs

crates/bench/benches/fig7_overall.rs:
crates/bench/benches/common.rs:
