/root/repo/target/release/deps/riq_mem-c6ecc1bc85f39535.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/libriq_mem-c6ecc1bc85f39535.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/libriq_mem-c6ecc1bc85f39535.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/tlb.rs:
