/root/repo/target/release/deps/riq_trace-30af6d27516c5557.d: crates/trace/src/lib.rs crates/trace/src/events.rs crates/trace/src/json.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/libriq_trace-30af6d27516c5557.rlib: crates/trace/src/lib.rs crates/trace/src/events.rs crates/trace/src/json.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/libriq_trace-30af6d27516c5557.rmeta: crates/trace/src/lib.rs crates/trace/src/events.rs crates/trace/src/json.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/events.rs:
crates/trace/src/json.rs:
crates/trace/src/sink.rs:
