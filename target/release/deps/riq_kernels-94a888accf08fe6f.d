/root/repo/target/release/deps/riq_kernels-94a888accf08fe6f.d: crates/kernels/src/lib.rs crates/kernels/src/codegen.rs crates/kernels/src/deps.rs crates/kernels/src/distribute.rs crates/kernels/src/generator.rs crates/kernels/src/ir.rs crates/kernels/src/suite.rs crates/kernels/src/transforms.rs

/root/repo/target/release/deps/libriq_kernels-94a888accf08fe6f.rlib: crates/kernels/src/lib.rs crates/kernels/src/codegen.rs crates/kernels/src/deps.rs crates/kernels/src/distribute.rs crates/kernels/src/generator.rs crates/kernels/src/ir.rs crates/kernels/src/suite.rs crates/kernels/src/transforms.rs

/root/repo/target/release/deps/libriq_kernels-94a888accf08fe6f.rmeta: crates/kernels/src/lib.rs crates/kernels/src/codegen.rs crates/kernels/src/deps.rs crates/kernels/src/distribute.rs crates/kernels/src/generator.rs crates/kernels/src/ir.rs crates/kernels/src/suite.rs crates/kernels/src/transforms.rs

crates/kernels/src/lib.rs:
crates/kernels/src/codegen.rs:
crates/kernels/src/deps.rs:
crates/kernels/src/distribute.rs:
crates/kernels/src/generator.rs:
crates/kernels/src/ir.rs:
crates/kernels/src/suite.rs:
crates/kernels/src/transforms.rs:
