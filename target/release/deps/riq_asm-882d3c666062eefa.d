/root/repo/target/release/deps/riq_asm-882d3c666062eefa.d: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/builder.rs crates/asm/src/parser.rs crates/asm/src/program.rs

/root/repo/target/release/deps/libriq_asm-882d3c666062eefa.rlib: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/builder.rs crates/asm/src/parser.rs crates/asm/src/program.rs

/root/repo/target/release/deps/libriq_asm-882d3c666062eefa.rmeta: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/builder.rs crates/asm/src/parser.rs crates/asm/src/program.rs

crates/asm/src/lib.rs:
crates/asm/src/assembler.rs:
crates/asm/src/builder.rs:
crates/asm/src/parser.rs:
crates/asm/src/program.rs:
