/root/repo/target/release/deps/riq_mem-dddbbae11be98be1.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/libriq_mem-dddbbae11be98be1.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/libriq_mem-dddbbae11be98be1.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/tlb.rs:
