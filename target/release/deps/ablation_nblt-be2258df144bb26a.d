/root/repo/target/release/deps/ablation_nblt-be2258df144bb26a.d: crates/bench/benches/ablation_nblt.rs crates/bench/benches/common.rs

/root/repo/target/release/deps/ablation_nblt-be2258df144bb26a: crates/bench/benches/ablation_nblt.rs crates/bench/benches/common.rs

crates/bench/benches/ablation_nblt.rs:
crates/bench/benches/common.rs:
