/root/repo/target/release/deps/fig6_components-11038bb9bf66b42e.d: crates/bench/benches/fig6_components.rs crates/bench/benches/common.rs

/root/repo/target/release/deps/fig6_components-11038bb9bf66b42e: crates/bench/benches/fig6_components.rs crates/bench/benches/common.rs

crates/bench/benches/fig6_components.rs:
crates/bench/benches/common.rs:
