/root/repo/target/release/deps/riq_repro-8befed3da5b771a0.d: crates/bench/src/bin/riq_repro.rs

/root/repo/target/release/deps/riq_repro-8befed3da5b771a0: crates/bench/src/bin/riq_repro.rs

crates/bench/src/bin/riq_repro.rs:
