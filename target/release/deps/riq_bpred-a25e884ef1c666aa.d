/root/repo/target/release/deps/riq_bpred-a25e884ef1c666aa.d: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

/root/repo/target/release/deps/libriq_bpred-a25e884ef1c666aa.rlib: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

/root/repo/target/release/deps/libriq_bpred-a25e884ef1c666aa.rmeta: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

crates/bpred/src/lib.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/dir.rs:
crates/bpred/src/predictor.rs:
crates/bpred/src/ras.rs:
