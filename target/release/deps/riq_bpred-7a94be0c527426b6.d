/root/repo/target/release/deps/riq_bpred-7a94be0c527426b6.d: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

/root/repo/target/release/deps/libriq_bpred-7a94be0c527426b6.rlib: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

/root/repo/target/release/deps/libriq_bpred-7a94be0c527426b6.rmeta: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/dir.rs crates/bpred/src/predictor.rs crates/bpred/src/ras.rs

crates/bpred/src/lib.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/dir.rs:
crates/bpred/src/predictor.rs:
crates/bpred/src/ras.rs:
