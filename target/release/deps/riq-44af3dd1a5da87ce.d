/root/repo/target/release/deps/riq-44af3dd1a5da87ce.d: src/lib.rs

/root/repo/target/release/deps/libriq-44af3dd1a5da87ce.rlib: src/lib.rs

/root/repo/target/release/deps/libriq-44af3dd1a5da87ce.rmeta: src/lib.rs

src/lib.rs:
