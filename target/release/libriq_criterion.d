/root/repo/target/release/libriq_criterion.rlib: /root/repo/crates/criterion/src/lib.rs
