/root/repo/target/release/libriq_trace.rlib: /root/repo/crates/trace/src/events.rs /root/repo/crates/trace/src/json.rs /root/repo/crates/trace/src/lib.rs /root/repo/crates/trace/src/sink.rs
