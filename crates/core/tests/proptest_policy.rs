//! Property tests for the [`IssuePolicy`] invariants:
//!
//! 1. A policy only reorders the ready set — no entry is ever offered to
//!    selection before its operands are ready (and `order` never loses,
//!    duplicates, or invents candidates).
//! 2. No starvation: with `issue_width` selections per cycle, every ready
//!    entry issues within `ceil(n / width)` cycles regardless of its
//!    load-delay tag.
//! 3. `Baseline` through the trait is identical to the pre-refactor
//!    oldest-first ready scan, reimplemented here as a naive reference, at
//!    every queue size the experiments sweep. (The pipeline-level half of
//!    this invariant — byte-identical sim counters for default-policy
//!    runs — is pinned by `tests/fixtures/bench_quick_sim.json` in CI.)
//! 4. Policies change timing only: the same program commits the same
//!    instruction stream under every {policy} × {reuse} combination.

use proptest::prelude::*;
use riq_asm::assemble;
use riq_core::{IqEntry, IssuePolicyKind, IssueQueue, Processor, SimConfig};
use riq_isa::Inst;

/// The queue sizes the policy experiments sweep.
const QUEUE_SIZES: [u32; 5] = [16, 32, 64, 128, 256];

fn entry(seq: u64, waiting: bool, pred_ready: u64) -> IqEntry {
    IqEntry {
        rob: seq as usize,
        seq,
        pc: 0x40_0000 + seq as u32 * 4,
        inst: Inst::Nop,
        // Producer 9999 never broadcasts in these tests, so `waiting`
        // entries stay un-ready for the whole scenario.
        waits: [if waiting { Some(9999) } else { None }, None],
        issued: false,
        classification: false,
        lrl: None,
        pred_ready,
    }
}

/// The pre-refactor select scan: walk the queue in position order, collect
/// ready un-issued entries, consider them oldest (smallest seq) first.
fn prerefactor_scan(iq: &IssueQueue) -> Vec<usize> {
    let mut ready: Vec<usize> = iq
        .entries()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.ready() && !e.issued)
        .map(|(i, _)| i)
        .collect();
    ready.sort_by_key(|&i| iq.entries()[i].seq);
    ready
}

proptest! {
    #[test]
    fn policies_only_offer_ready_unissued_entries(
        specs in prop::collection::vec((any::<bool>(), 0u64..60), 1..48),
    ) {
        for kind in [IssuePolicyKind::Oldest, IssuePolicyKind::LoadDelay] {
            let mut iq = IssueQueue::new(64);
            for (seq, &(waiting, tag)) in specs.iter().enumerate() {
                prop_assert!(iq.insert(entry(seq as u64, waiting, tag)));
            }
            let mut ready = iq.ready_positions();
            let mut before = ready.clone();
            kind.policy().order(&iq, 30, &mut ready);
            // A permutation of the ready set: nothing lost, duplicated,
            // or invented.
            let mut after = ready.clone();
            before.sort_unstable();
            after.sort_unstable();
            prop_assert_eq!(before, after, "{:?} must permute the ready set", kind);
            for &pos in &ready {
                let e = &iq.entries()[pos];
                prop_assert!(e.ready(), "{:?} offered a waiting entry", kind);
                prop_assert!(!e.issued, "{:?} offered an issued entry", kind);
            }
        }
    }

    #[test]
    fn ready_entries_issue_within_bounded_cycles(
        tags in prop::collection::vec(0u64..1000, 1..60),
        width in 1u64..5,
    ) {
        // All entries ready, arbitrary load-delay tags, `width` selections
        // per cycle: the queue must drain in exactly ceil(n / width)
        // cycles, so no entry waits longer than that bound — reordering
        // by slack never starves anyone.
        for kind in [IssuePolicyKind::Oldest, IssuePolicyKind::LoadDelay] {
            let mut iq = IssueQueue::new(64);
            for (seq, &tag) in tags.iter().enumerate() {
                prop_assert!(iq.insert(entry(seq as u64, false, tag)));
            }
            let bound = (tags.len() as u64).div_ceil(width);
            let mut cycles = 0u64;
            while !iq.is_empty() {
                cycles += 1;
                prop_assert!(cycles <= bound, "{:?} starved past {} cycles", kind, bound);
                let mut ready = iq.ready_positions();
                kind.policy().order(&iq, cycles, &mut ready);
                let mut chosen: Vec<usize> =
                    ready.into_iter().take(width as usize).collect();
                chosen.sort_unstable_by(|a, b| b.cmp(a));
                for pos in chosen {
                    iq.issue_at(pos);
                }
            }
            prop_assert_eq!(cycles, bound, "{:?} drains at full width", kind);
        }
    }

    #[test]
    fn baseline_trait_matches_prerefactor_scan_at_every_queue_size(
        specs in prop::collection::vec((any::<bool>(), 0u64..60), 1..64),
    ) {
        for capacity in QUEUE_SIZES {
            let mut iq = IssueQueue::new(capacity);
            for (seq, &(waiting, tag)) in specs.iter().enumerate() {
                if iq.is_full() {
                    break;
                }
                iq.insert(entry(seq as u64, waiting, tag));
            }
            let mut via_trait = iq.ready_positions();
            IssuePolicyKind::Oldest.policy().order(&iq, 99, &mut via_trait);
            prop_assert_eq!(
                via_trait,
                prerefactor_scan(&iq),
                "IQ {}: trait dispatch must reproduce the oldest-first scan",
                capacity
            );
        }
    }
}

/// A load-bearing loop: a dependent pointer-chase load next to independent
/// ALU work, the shape where load-delay scheduling changes issue order.
fn load_mix_program(trips: u32) -> String {
    format!(
        r#"
        lui  $r9, 0x1000
        li   $r8, 64
        li   $r2, {trips}
    loop:
        lw   $r4, 0($r9)
        add  $r9, $r9, $r8
        add  $r5, $r4, $r2
        mul  $r6, $r5, $r5
        sw   $r6, 4($r9)
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
    "#
    )
}

#[test]
fn policies_commit_the_same_work_at_every_queue_size() {
    let program = assemble(&load_mix_program(60)).expect("assembles");
    for iq in QUEUE_SIZES {
        let mut committed = Vec::new();
        for (kind, reuse) in [
            (IssuePolicyKind::Oldest, false),
            (IssuePolicyKind::Oldest, true),
            (IssuePolicyKind::LoadDelay, false),
            (IssuePolicyKind::LoadDelay, true),
        ] {
            let cfg = SimConfig::baseline().with_iq_size(iq).with_reuse(reuse).with_policy(kind);
            let r = Processor::new(cfg).run(&program).expect("runs to halt");
            assert!(r.stats.cycles > 0);
            committed.push(r.stats.committed);
        }
        assert!(
            committed.windows(2).all(|w| w[0] == w[1]),
            "IQ {iq}: scheduling policy must not change architectural work: {committed:?}"
        );
    }
}

#[test]
fn default_policy_runs_are_reproducible_with_identical_counters() {
    // Two runs of the default-policy pipeline must agree on stats AND the
    // self-profiling sim counters — the trait refactor left no
    // nondeterminism in the select path.
    let program = assemble(&load_mix_program(60)).expect("assembles");
    for iq in [16u32, 64, 256] {
        let run = || {
            let cfg = SimConfig::baseline().with_iq_size(iq);
            Processor::new(cfg)
                .run_profiled(
                    &program,
                    &mut riq_trace::NullSink,
                    None,
                    riq_core::ProfileConfig::default(),
                )
                .expect("runs to halt")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.stats, b.stats, "IQ {iq}");
        assert_eq!(
            a.metrics.expect("profiled").sim,
            b.metrics.expect("profiled").sim,
            "IQ {iq}: sim counters must be reproducible"
        );
    }
}
