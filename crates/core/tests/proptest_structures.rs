//! Model-based property tests for the core's window structures: the ROB
//! ring against a `VecDeque` reference, the issue queue's classification/
//! issue-state semantics under random operation sequences, and the LSQ's
//! disambiguation against a naive scan.

use proptest::prelude::*;
use riq_core::{IqEntry, IssueQueue, Lsq, RenameRef, Rob, RobEntry, StoreConflict};
use riq_emu::ControlFlow;
use riq_isa::Inst;
use std::collections::VecDeque;

fn entry(seq: u64) -> RobEntry {
    RobEntry {
        seq,
        pc: 0x40_0000 + seq as u32 * 4,
        inst: Inst::Nop,
        dest: None,
        old_map: RenameRef::Arch,
        completed: false,
        flow: ControlFlow::Next,
        mem: None,
        predicted_next: 0,
        actual_next: 0,
        mispredicted: false,
        undo: Vec::new(),
        reused: false,
        wrong_path: false,
    }
}

#[derive(Debug, Clone, Copy)]
enum RobOp {
    Alloc,
    Commit,
    Squash,
}

fn rob_ops() -> impl Strategy<Value = Vec<RobOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(RobOp::Alloc),
            2 => Just(RobOp::Commit),
            1 => Just(RobOp::Squash),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn rob_ring_matches_deque_model(capacity in 1u32..40, ops in rob_ops()) {
        let mut rob = Rob::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next_seq = 0u64;
        for op in ops {
            match op {
                RobOp::Alloc => {
                    let got = rob.alloc(entry(next_seq));
                    if model.len() < capacity as usize {
                        prop_assert!(got.is_some());
                        model.push_back(next_seq);
                        next_seq += 1;
                    } else {
                        prop_assert!(got.is_none(), "model full but ROB accepted");
                    }
                }
                RobOp::Commit => {
                    let got = rob.pop_oldest().map(|(_, e)| e.seq);
                    prop_assert_eq!(got, model.pop_front());
                }
                RobOp::Squash => {
                    let got = rob.pop_youngest().map(|(_, e)| e.seq);
                    prop_assert_eq!(got, model.pop_back());
                }
            }
            prop_assert_eq!(rob.len(), model.len());
            prop_assert_eq!(rob.is_empty(), model.is_empty());
            let seqs: Vec<u64> = rob.ids().map(|i| rob.get(i).expect("live").seq).collect();
            let model_seqs: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(seqs, model_seqs, "age order must match");
        }
    }

    #[test]
    fn issue_queue_never_loses_or_duplicates(
        capacity in 2u32..32,
        classified in prop::collection::vec(any::<bool>(), 1..60),
    ) {
        // Insert a stream with random classification bits, issue
        // everything oldest-first, and verify: conventional entries leave
        // exactly once; classified entries stay, issued.
        let mut iq = IssueQueue::new(capacity);
        let mut inserted = Vec::new();
        for (seq, class) in classified.iter().enumerate() {
            let e = IqEntry {
                rob: seq,
                seq: seq as u64,
                pc: 0x40_0000 + seq as u32 * 4,
                inst: Inst::Nop,
                waits: [None, None],
                issued: false,
                classification: *class,
                lrl: None,
                pred_ready: 0,
            };
            if iq.insert(e) {
                inserted.push((seq as u64, *class));
            }
        }
        loop {
            let ready = iq.ready_positions();
            let Some(&pos) = ready.first() else { break };
            iq.issue_at(pos);
        }
        // All remaining entries are classified and issued.
        for e in iq.entries() {
            prop_assert!(e.classification && e.issued);
        }
        let expected_left = inserted.iter().filter(|(_, c)| *c).count();
        prop_assert_eq!(iq.len(), expected_left);
        prop_assert!(iq.check_invariants());
        // Clearing classification returns the queue to empty (issued
        // classified entries are dropped).
        let dropped = iq.clear_classification();
        prop_assert_eq!(dropped, expected_left);
        prop_assert!(iq.is_empty());
    }

    #[test]
    fn issue_queue_wakeup_is_exact(
        producers in prop::collection::vec(0usize..16, 1..24),
        broadcast in prop::collection::vec(0usize..16, 0..24),
    ) {
        let mut iq = IssueQueue::new(64);
        for (seq, &p) in producers.iter().enumerate() {
            iq.insert(IqEntry {
                rob: 100 + seq,
                seq: seq as u64,
                pc: 0,
                inst: Inst::Nop,
                waits: [Some(p), None],
                issued: false,
                classification: false,
                lrl: None,
                pred_ready: 0,
            });
        }
        for &p in &broadcast {
            iq.wakeup(p);
        }
        for (i, e) in iq.entries().iter().enumerate() {
            let should_be_ready = broadcast.contains(&producers[i]);
            prop_assert_eq!(e.ready(), should_be_ready, "entry {}", i);
        }
    }

    #[test]
    fn lsq_conflict_matches_naive_scan(
        ops in prop::collection::vec(
            (any::<bool>(), 0u32..16, prop_oneof![Just(4u32), Just(8u32)], any::<bool>()),
            1..24
        )
    ) {
        // ops: (is_store, slot, width, completed)
        let mut lsq = Lsq::new(64);
        let mut model: Vec<(u64, bool, u32, u32, bool)> = Vec::new();
        for (seq, &(is_store, slot, width, completed)) in ops.iter().enumerate() {
            let addr = 0x1000 + slot * 4;
            lsq.push(seq, seq as u64, is_store, addr, width);
            if completed {
                lsq.mark_completed(seq, seq as u64);
            }
            model.push((seq as u64, is_store, addr, width, completed));
        }
        for &(seq, is_store, addr, width, _) in &model {
            if is_store {
                continue;
            }
            // Naive: youngest older store overlapping [addr, addr+width).
            let naive = model
                .iter()
                .filter(|&&(s, st, a, w, _)| {
                    st && s < seq && (a < addr + width) && (addr < a + w)
                })
                .max_by_key(|&&(s, ..)| s);
            let expect = match naive {
                None => StoreConflict::None,
                Some(&(_, _, _, _, true)) => StoreConflict::ForwardReady,
                Some(&(_, _, _, _, false)) => StoreConflict::Wait,
            };
            prop_assert_eq!(lsq.check_load(seq as usize, seq), expect, "load seq {}", seq);
        }
    }
}
