//! Fuzz the reuse controller's state machine with arbitrary in-order
//! dispatch streams: it must never panic, its statistics must stay
//! internally consistent, and a disabled controller must stay inert.

use proptest::prelude::*;
use riq_core::{BufferingStrategy, IqState, ReuseConfig, ReuseController};
use riq_isa::{AluImmOp, Inst, IntReg};

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Dispatch a plain instruction at a pc delta from the previous.
    Plain(i8),
    /// Dispatch a backward branch with the given word span; the bool is
    /// whether the branch is taken (back to its target).
    BackBranch(u8, bool),
    /// Dispatch a forward branch.
    FwdBranch(u8),
    /// Dispatch a call / return.
    Call,
    Ret,
    /// Report the queue full.
    QueueFull,
    /// Report a misprediction recovery.
    Recovery,
}

fn ev() -> impl Strategy<Value = Ev> {
    prop_oneof![
        4 => any::<i8>().prop_map(Ev::Plain),
        2 => ((1u8..80), any::<bool>()).prop_map(|(s, t)| Ev::BackBranch(s, t)),
        1 => (1u8..20).prop_map(Ev::FwdBranch),
        1 => Just(Ev::Call),
        1 => Just(Ev::Ret),
        1 => Just(Ev::QueueFull),
        1 => Just(Ev::Recovery),
    ]
}

fn addi() -> Inst {
    Inst::AluImm { op: AluImmOp::Addi, rt: IntReg::new(2), rs: IntReg::new(2), imm: 1 }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn controller_survives_arbitrary_streams(
        events in prop::collection::vec(ev(), 1..300),
        nblt in prop_oneof![Just(0u32), Just(8u32)],
        single in any::<bool>(),
    ) {
        let cfg = ReuseConfig {
            enabled: true,
            nblt_entries: nblt,
            strategy: if single {
                BufferingStrategy::SingleIteration
            } else {
                BufferingStrategy::MultiIteration
            },
        };
        let mut c = ReuseController::new(cfg, 64);
        let mut pc: u32 = 0x0040_1000;
        let mut free: u32 = 64;
        for e in events {
            // The pipeline never dispatches through the controller while the
            // queue is in Code Reuse (the front-end is gated).
            if c.state() == IqState::CodeReuse {
                c.on_recovery();
            }
            match e {
                Ev::Plain(d) => {
                    let dir = c.on_dispatch(pc, &addi(), free, pc.wrapping_add(4));
                    if dir.buffer {
                        free = free.saturating_sub(1);
                    }
                    pc = pc.wrapping_add(4).wrapping_add((i32::from(d) * 4) as u32);
                }
                Ev::BackBranch(span, taken) => {
                    let off = -i16::from(span);
                    let inst = Inst::Bne { rs: IntReg::new(2), rt: IntReg::ZERO, off };
                    let next = if taken {
                        inst.static_target(pc).unwrap_or_else(|| pc.wrapping_add(4))
                    } else {
                        pc.wrapping_add(4)
                    };
                    let _ = c.on_dispatch(pc, &inst, free, next);
                    pc = pc.wrapping_add(4);
                }
                Ev::FwdBranch(span) => {
                    let inst = Inst::Beq {
                        rs: IntReg::new(2),
                        rt: IntReg::ZERO,
                        off: i16::from(span),
                    };
                    let _ = c.on_dispatch(pc, &inst, free, pc.wrapping_add(4));
                    pc = pc.wrapping_add(4);
                }
                Ev::Call => {
                    let _ = c.on_dispatch(pc, &Inst::Jal { target: 0x0040_8000 }, free, 0x0040_8000);
                    pc = pc.wrapping_add(4);
                }
                Ev::Ret => {
                    let _ = c.on_dispatch(pc, &Inst::Jr { rs: IntReg::RA }, free, pc.wrapping_add(4));
                    pc = pc.wrapping_add(4);
                }
                Ev::QueueFull => {
                    free = 0;
                    let _ = c.on_queue_full();
                }
                Ev::Recovery => {
                    let _ = c.on_recovery();
                    free = 64;
                }
            }
            free = free.max(1);
            // Consistency invariants at every step.
            let s = c.stats;
            prop_assert!(s.nblt_hits <= s.loops_detected);
            prop_assert!(
                s.bufferings_revoked <= s.bufferings_started,
                "revoked {} > started {}", s.bufferings_revoked, s.bufferings_started
            );
            prop_assert!(
                s.code_reuse_entries + s.bufferings_revoked <= s.bufferings_started + 1,
                "every promotion or revoke consumes a started buffering"
            );
        }
    }

    #[test]
    fn disabled_controller_is_always_inert(
        events in prop::collection::vec(ev(), 1..100),
    ) {
        let mut c = ReuseController::new(ReuseConfig::default(), 64);
        let mut pc: u32 = 0x0040_1000;
        for e in events {
            let dir = match e {
                Ev::BackBranch(span, taken) => {
                    let off = -i16::from(span);
                    let inst = Inst::Bne { rs: IntReg::new(2), rt: IntReg::ZERO, off };
                    let next = if taken {
                        inst.static_target(pc).unwrap_or_else(|| pc.wrapping_add(4))
                    } else {
                        pc.wrapping_add(4)
                    };
                    c.on_dispatch(pc, &inst, 64, next)
                }
                Ev::Recovery => {
                    prop_assert!(!c.on_recovery());
                    Default::default()
                }
                _ => c.on_dispatch(pc, &addi(), 64, pc.wrapping_add(4)),
            };
            prop_assert_eq!(dir, Default::default());
            prop_assert_eq!(c.state(), IqState::Normal);
            pc = pc.wrapping_add(4);
        }
        prop_assert_eq!(c.stats.loops_detected, 0);
    }
}
