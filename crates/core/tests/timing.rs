//! Timing-behavior tests: relative cycle counts must reflect the modeled
//! microarchitecture (latencies, structural hazards, forwarding, branch
//! penalties). These tests compare *ratios*, not absolute cycles, so they
//! are robust to small model changes while still catching inverted or
//! missing timing effects.

use riq_asm::assemble;
use riq_core::{Processor, SimConfig, SimStats};

fn cycles(src: &str) -> u64 {
    stats(src).cycles
}

fn stats(src: &str) -> SimStats {
    let program = assemble(src).expect("assembles");
    Processor::new(SimConfig::baseline()).run(&program).expect("runs").stats
}

/// Builds a loop around `body`, repeated `n` times per iteration.
fn looped(body: &str, reps: usize, trips: u32) -> String {
    let mut s = format!("    li $r2, {trips}\nloop:\n");
    for _ in 0..reps {
        s.push_str(body);
        s.push('\n');
    }
    s.push_str("    addi $r2, $r2, -1\n    bne $r2, $r0, loop\n    halt\n");
    s
}

#[test]
fn dependent_chain_is_slower_than_independent_ops() {
    let dependent = cycles(&looped("    add $r3, $r3, $r3", 8, 300));
    let independent = cycles(&looped(
        "    add $r4, $r10, $r11\n    add $r5, $r10, $r11\n    add $r6, $r10, $r11\n    add $r7, $r10, $r11",
        2,
        300,
    ));
    assert!(
        dependent as f64 > independent as f64 * 1.5,
        "serial chain {dependent} vs parallel {independent}"
    );
}

#[test]
fn single_multiplier_serializes_muls() {
    // Four independent multiplies per iteration share 1 IMULT; four
    // independent adds share 4 IALUs.
    let muls = cycles(&looped(
        "    mul $r4, $r10, $r11\n    mul $r5, $r10, $r11\n    mul $r6, $r10, $r11\n    mul $r7, $r10, $r11",
        1,
        300,
    ));
    let adds = cycles(&looped(
        "    add $r4, $r10, $r11\n    add $r5, $r10, $r11\n    add $r6, $r10, $r11\n    add $r7, $r10, $r11",
        1,
        300,
    ));
    assert!(muls as f64 > adds as f64 * 1.5, "IMULT contention: muls {muls} vs adds {adds}");
}

#[test]
fn long_latency_divide_dominates() {
    let divs = cycles(&looped("    div $r3, $r3, $r10", 2, 200));
    let adds = cycles(&looped("    add $r3, $r3, $r10", 2, 200));
    assert!(divs as f64 > adds as f64 * 3.0, "20-cycle divides {divs} vs 1-cycle adds {adds}");
}

#[test]
fn cache_misses_cost_real_cycles() {
    // Stride-4096 walk (every access a fresh page+set) vs hammering one
    // line. Same instruction count.
    let thrash = cycles(
        r#"
        li   $r8, 0x1000
        lui  $r9, 0x1000
        li   $r2, 400
    loop:
        lw   $r4, 0($r9)
        add  $r9, $r9, $r8
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
    "#,
    );
    let friendly = cycles(
        r#"
        li   $r8, 0
        lui  $r9, 0x1000
        li   $r2, 400
    loop:
        lw   $r4, 0($r9)
        add  $r9, $r9, $r8
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
    "#,
    );
    assert!(thrash as f64 > friendly as f64 * 2.0, "miss-heavy {thrash} vs hit-heavy {friendly}");
}

#[test]
fn store_load_forwarding_beats_the_cache_miss() {
    // A load that always forwards from the immediately preceding store to
    // a *cold* line would otherwise pay the full miss.
    let forwarded = cycles(
        r#"
        lui  $r9, 0x2000
        li   $r2, 300
    loop:
        sw   $r2, 0($r9)
        lw   $r4, 0($r9)
        addi $r9, $r9, 4096
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
    "#,
    );
    // Same addresses, loads only: every load misses.
    let missing = cycles(
        r#"
        lui  $r9, 0x2000
        li   $r2, 300
    loop:
        lw   $r4, 0($r9)
        lw   $r5, 0($r9)
        addi $r9, $r9, 4096
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
    "#,
    );
    assert!(forwarded < missing, "forwarding {forwarded} must beat missing {missing}");
}

#[test]
fn unpredictable_branches_cost_recoveries() {
    // A branch alternating taken/not-taken defeats the 2-bit counters; a
    // heavily-biased branch trains perfectly. Same dynamic length.
    let alternating = stats(
        r#"
        li $r2, 600
    loop:
        andi $r6, $r2, 1
        beq  $r6, $r0, skip
        addi $r4, $r4, 1
    skip:
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
    "#,
    );
    let biased = stats(
        r#"
        li $r2, 600
    loop:
        slti $r6, $r2, 1
        beq  $r6, $r0, skip
        addi $r4, $r4, 1
    skip:
        addi $r2, $r2, -1
        bne  $r2, $r0, loop
        halt
    "#,
    );
    assert!(
        alternating.mispredictions > biased.mispredictions * 5,
        "alternating {} vs biased {} recoveries",
        alternating.mispredictions,
        biased.mispredictions
    );
    assert!(alternating.cycles > biased.cycles);
    assert!(alternating.squashed > biased.squashed, "recoveries squash wrong-path work");
}

#[test]
fn wider_window_helps_independent_fp_work() {
    // Long-latency FP multiplies with plenty of parallelism: a 256-entry
    // window must not be slower than a 32-entry one.
    let src = looped(
        "    mul.d $f2, $f8, $f9\n    mul.d $f3, $f8, $f9\n    add.d $f4, $f8, $f9\n    add.d $f5, $f8, $f9",
        2,
        300,
    );
    let program = assemble(&src).expect("assembles");
    let small = Processor::new(SimConfig::baseline().with_iq_size(32))
        .run(&program)
        .expect("runs")
        .stats
        .cycles;
    let large = Processor::new(SimConfig::baseline().with_iq_size(256))
        .run(&program)
        .expect("runs")
        .stats
        .cycles;
    assert!(large <= small, "window scaling inverted: 256 -> {large}, 32 -> {small}");
}

#[test]
fn cold_straightline_code_is_memory_bound_but_warm_loops_stream() {
    // Cold straight-line code touches a fresh icache line every 8
    // instructions and there is no prefetcher: IPC collapses toward the
    // memory latency. A warm loop re-executes resident lines and streams
    // near machine width. Both must respect the width ceiling.
    let mut src = String::new();
    for i in 0..400 {
        src.push_str(&format!("    addi $r{}, $r0, 1\n", 2 + (i % 10)));
    }
    src.push_str("    halt\n");
    let cold = stats(&src).ipc();
    assert!(cold <= 4.0 + 1e-9, "IPC {cold} exceeds machine width");
    assert!(cold < 1.0, "cold code without a prefetcher is memory-bound, got {cold}");

    let warm = stats(&looped(
        "    add $r4, $r10, $r11\n    add $r5, $r10, $r11\n    add $r6, $r10, $r11",
        2,
        2000,
    ))
    .ipc();
    assert!(warm <= 4.0 + 1e-9);
    assert!(warm > 2.0, "a warm loop should stream well, got {warm}");
}
