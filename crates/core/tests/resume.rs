//! Checkpoint-resume behavior of the detailed simulator: architectural
//! identity with from-zero runs, fingerprint validation, halted snapshots,
//! and the sampled-commit budget.

use riq_asm::assemble;
use riq_ckpt::Checkpoint;
use riq_core::{Processor, SimConfig, SimError};
use riq_trace::NullSink;

fn program_src(trips: u32) -> String {
    format!(
        r#"
            li   $r2, {trips}
            li   $r6, 0x3000
        loop:
            sw   $r2, 0($r6)
            lw   $r3, 0($r6)
            add  $r4, $r4, $r3
            mul  $r5, $r3, $r2
            addi $r2, $r2, -1
            bne  $r2, $r0, loop
            halt
        "#
    )
}

#[test]
fn resumed_run_matches_from_zero_architecturally() {
    let program = assemble(&program_src(200)).expect("assembles");
    let proc = Processor::new(SimConfig::baseline());
    let full = proc.run(&program).expect("full run");

    for warmup in [0u64, 64] {
        let ckpt = Checkpoint::fast_forward(&program, 500, warmup).expect("fast-forward");
        let resumed = proc.resume_from(&program, &ckpt, warmup).expect("resumed run");
        assert_eq!(resumed.arch_state, full.arch_state, "warmup {warmup}: register file");
        assert_eq!(resumed.mem_digest, full.mem_digest, "warmup {warmup}: memory digest");
        assert_eq!(
            ckpt.retired + resumed.stats.committed,
            full.stats.committed,
            "warmup {warmup}: skip + resumed commits cover the whole program"
        );
    }
}

#[test]
fn skip_zero_resume_is_exactly_a_full_run() {
    let program = assemble(&program_src(50)).expect("assembles");
    let proc = Processor::new(SimConfig::baseline());
    let full = proc.run(&program).expect("full run");

    let ckpt = Checkpoint::fast_forward(&program, 0, 0).expect("fast-forward");
    let resumed = proc.resume_from(&program, &ckpt, 0).expect("resumed run");
    assert_eq!(resumed.arch_state, full.arch_state);
    assert_eq!(resumed.mem_digest, full.mem_digest);
    assert_eq!(resumed.stats.cycles, full.stats.cycles, "identical boot state, identical timing");
    assert_eq!(resumed.stats.committed, full.stats.committed);
}

#[test]
fn mismatched_program_is_rejected() {
    let a = assemble(&program_src(50)).expect("assembles");
    let b = assemble(&program_src(51)).expect("assembles");
    let ckpt = Checkpoint::fast_forward(&a, 20, 0).expect("fast-forward");
    let err = Processor::new(SimConfig::baseline()).resume_from(&b, &ckpt, 0).unwrap_err();
    assert!(
        matches!(err, SimError::CheckpointMismatch { expected, got }
            if expected == b.fingerprint() && got == a.fingerprint()),
        "got {err:?}"
    );
}

#[test]
fn halted_checkpoint_short_circuits() {
    let program = assemble(&program_src(10)).expect("assembles");
    let ckpt = Checkpoint::fast_forward(&program, u64::MAX, 8).expect("fast-forward");
    assert!(ckpt.halted);
    let result =
        Processor::new(SimConfig::baseline()).resume_from(&program, &ckpt, 8).expect("resume");
    assert_eq!(result.stats.committed, 0, "nothing left to simulate");
    assert_eq!(result.arch_state, ckpt.regs);
}

#[test]
fn sample_budget_stops_after_k_commits() {
    let program = assemble(&program_src(500)).expect("assembles");
    let proc = Processor::new(SimConfig::baseline());
    let ckpt = Checkpoint::fast_forward(&program, 100, 32).expect("fast-forward");
    let sampled = proc
        .resume_observed(&program, &ckpt, 32, Some(400), &mut NullSink, None)
        .expect("sampled run");
    assert!(sampled.stats.committed >= 400, "budget reached");
    assert!(
        sampled.stats.committed < 500 + 400,
        "stopped near the budget, not at halt: {}",
        sampled.stats.committed
    );
}
