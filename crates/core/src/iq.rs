//! The unified collapsing issue queue, augmented for instruction reuse.
//!
//! Each entry carries the two bits the paper adds (§2.2, Figure 3):
//!
//! * a **classification bit** — the instruction belongs to a loop being
//!   buffered/reused and must *not* leave the queue when it issues;
//! * an **issue-state bit** — a buffered instruction has been issued and is
//!   therefore eligible to be *reused* (re-renamed and re-issued).
//!
//! Buffered entries additionally reference their Logical Register List
//! record ([`LrlRecord`]): the logical source/destination register numbers
//! plus the static branch prediction captured during Loop Buffering.
//!
//! The queue is *collapsing*: issued non-reusable entries leave their slot
//! and younger entries shift up, which both keeps select logic simple and
//! keeps the buffered loop body contiguous and in program order — exactly
//! what the unidirectional reuse pointer (§2.4) requires.

use crate::rob::RobId;
use riq_isa::{ArchReg, Inst};

/// A Logical Register List record for one buffered instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LrlRecord {
    /// Logical source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Logical destination register.
    pub dest: Option<ArchReg>,
    /// For control instructions: the statically predicted next PC,
    /// captured from the last dynamic outcome during Loop Buffering.
    pub static_next: Option<u32>,
}

/// One issue-queue entry.
#[derive(Debug, Clone)]
pub struct IqEntry {
    /// Producing ROB slot of the current instance of this instruction.
    pub rob: RobId,
    /// Age of the current instance.
    pub seq: u64,
    /// Instruction address.
    pub pc: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// Outstanding source producers (cleared by wakeup).
    pub waits: [Option<RobId>; 2],
    /// Issue-state bit.
    pub issued: bool,
    /// Classification bit.
    pub classification: bool,
    /// LRL record (present iff `classification`).
    pub lrl: Option<LrlRecord>,
    /// Load-delay tracker tag: the predicted cycle this entry's slowest
    /// producing load completes. Zero when no tracked load feeds the entry
    /// (or when the active policy does not track load delays).
    pub pred_ready: u64,
}

impl IqEntry {
    /// Whether all sources are available.
    #[must_use]
    pub fn ready(&self) -> bool {
        self.waits.iter().all(Option::is_none)
    }
}

/// Per-cycle activity the queue reports to the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IqActivity {
    /// Full entry writes (dispatch inserts).
    pub inserts: u32,
    /// Result-tag broadcasts into the wakeup CAM.
    pub wakeups: u32,
    /// Entries that left the queue (and the entries shifted by collapse).
    pub collapse_moves: u32,
    /// Entry reads at issue.
    pub issue_reads: u32,
    /// Partial updates (register info + ROB pointer) of reused entries.
    pub partial_updates: u32,
    /// LRL reads/writes.
    pub lrl_accesses: u32,
}

/// Sets or clears bit `idx` in a packed bitmap.
#[inline]
fn set_bit(words: &mut [u64], idx: usize, on: bool) {
    let (w, b) = (idx / 64, idx % 64);
    if on {
        words[w] |= 1u64 << b;
    } else {
        words[w] &= !(1u64 << b);
    }
}

/// Reads bit `idx` from a packed bitmap.
#[inline]
fn get_bit(words: &[u64], idx: usize) -> bool {
    words[idx / 64] >> (idx % 64) & 1 == 1
}

/// Deletes bit `idx` from a packed bitmap: every higher bit shifts down by
/// one, mirroring a `Vec::remove` of the entry at the same position.
fn remove_bit(words: &mut [u64], idx: usize) {
    let (w, b) = (idx / 64, idx % 64);
    let low = if b == 0 { 0 } else { words[w] & ((1u64 << b) - 1) };
    let high = if b == 63 { 0 } else { (words[w] >> (b + 1)) << b };
    words[w] = low | high;
    for i in w + 1..words.len() {
        words[i - 1] |= (words[i] & 1) << 63;
        words[i] >>= 1;
    }
}

/// The issue queue.
///
/// Readiness and classification are mirrored into packed bitmaps (one bit
/// per entry position, one `u64` per 64 entries), maintained incrementally
/// by every mutating operation. The per-cycle select scan therefore costs a
/// handful of word reads plus one visit per *matching* entry instead of a
/// visit per *live* entry — the fix for the issue-stage scan dominating
/// profiled time at large queue sizes.
///
/// # Examples
///
/// ```
/// use riq_core::{IqEntry, IssueQueue};
/// use riq_isa::Inst;
///
/// let mut iq = IssueQueue::new(4);
/// assert!(iq.insert(IqEntry {
///     rob: 0,
///     seq: 0,
///     pc: 0x400000,
///     inst: Inst::Nop,
///     waits: [None, None],
///     issued: false,
///     classification: false,
///     lrl: None,
///     pred_ready: 0,
/// }));
/// assert_eq!(iq.len(), 1);
/// assert_eq!(iq.free_entries(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IssueQueue {
    entries: Vec<IqEntry>,
    capacity: usize,
    activity: IqActivity,
    /// Bit `i` set ⇔ `entries[i]` is ready and not yet issued.
    ready_mask: Vec<u64>,
    /// Bit `i` set ⇔ `entries[i]` has its classification bit set.
    classified_mask: Vec<u64>,
}

impl IssueQueue {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u32) -> IssueQueue {
        assert!(capacity > 0, "issue queue capacity must be non-zero");
        let words = (capacity as usize).div_ceil(64);
        IssueQueue {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            activity: IqActivity::default(),
            ready_mask: vec![0; words],
            classified_mask: vec![0; words],
        }
    }

    /// Occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free entries.
    #[must_use]
    pub fn free_entries(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Whether the queue is full.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// All entries, oldest insert first.
    #[must_use]
    pub fn entries(&self) -> &[IqEntry] {
        &self.entries
    }

    /// Bitmap words covering the live entries — the per-pass word-read cost
    /// of one select or reuse scan. Exposed so the pipeline can charge
    /// `iq_scan_visits` with the work the bitmap scan actually performs.
    #[must_use]
    pub fn scan_words(&self) -> usize {
        self.entries.len().div_ceil(64)
    }

    /// Inserts at the tail (dispatch). Returns `false` when full.
    pub fn insert(&mut self, entry: IqEntry) -> bool {
        if self.is_full() {
            return false;
        }
        self.activity.inserts += 1;
        if entry.classification {
            self.activity.lrl_accesses += 1; // LRL write during buffering
        }
        let idx = self.entries.len();
        set_bit(&mut self.ready_mask, idx, !entry.issued && entry.ready());
        set_bit(&mut self.classified_mask, idx, entry.classification);
        self.entries.push(entry);
        true
    }

    /// Broadcasts a completed result tag: clears matching waits.
    pub fn wakeup(&mut self, producer: RobId) {
        self.activity.wakeups += 1;
        for (i, e) in self.entries.iter_mut().enumerate() {
            let mut hit = false;
            for w in &mut e.waits {
                if *w == Some(producer) {
                    *w = None;
                    hit = true;
                }
            }
            if hit && !e.issued && e.ready() {
                set_bit(&mut self.ready_mask, i, true);
            }
        }
    }

    /// Positions of ready, not-yet-issued entries, oldest (smallest seq)
    /// first. The caller applies function-unit constraints.
    #[must_use]
    pub fn ready_positions(&self) -> Vec<usize> {
        let mut ready = Vec::new();
        for wi in 0..self.scan_words() {
            let mut word = self.ready_mask[wi];
            while word != 0 {
                ready.push(wi * 64 + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
        ready.sort_by_key(|&i| self.entries[i].seq);
        ready
    }

    /// Marks a position issued; removes it unless its classification bit is
    /// set (reusable instructions keep occupying their entry, §2.4).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the entry already issued.
    pub fn issue_at(&mut self, idx: usize) {
        self.activity.issue_reads += 1;
        let e = &mut self.entries[idx];
        assert!(!e.issued, "double issue of IQ entry at {idx}");
        e.issued = true;
        if e.classification {
            set_bit(&mut self.ready_mask, idx, false);
        } else {
            // Collapse: every younger entry shifts up one slot.
            self.activity.collapse_moves += (self.entries.len() - idx - 1) as u32;
            self.entries.remove(idx);
            remove_bit(&mut self.ready_mask, idx);
            remove_bit(&mut self.classified_mask, idx);
        }
    }

    /// Removes the entry whose current instance is `rob` (squash).
    /// Returns whether an entry was removed.
    pub fn remove_by_rob(&mut self, rob: RobId, seq: u64) -> bool {
        if let Some(idx) = self.entries.iter().position(|e| e.rob == rob && e.seq == seq) {
            self.activity.collapse_moves += (self.entries.len() - idx - 1) as u32;
            self.entries.remove(idx);
            remove_bit(&mut self.ready_mask, idx);
            remove_bit(&mut self.classified_mask, idx);
            true
        } else {
            false
        }
    }

    /// Positions of classified (buffered) entries in queue order — the
    /// domain of the reuse pointer.
    #[must_use]
    pub fn classified_positions(&self) -> Vec<usize> {
        let mut classified = Vec::new();
        for wi in 0..self.scan_words() {
            let mut word = self.classified_mask[wi];
            while word != 0 {
                classified.push(wi * 64 + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
        classified
    }

    /// Re-renames the buffered entry at `idx` for its next reuse instance:
    /// resets the issue-state bit and rewrites only the register/ROB
    /// information (the paper's partial update). Counts an LRL read.
    ///
    /// # Panics
    ///
    /// Panics if the entry is not a buffered (classified) entry or has not
    /// been issued yet.
    pub fn reuse_at(
        &mut self,
        idx: usize,
        new_rob: RobId,
        new_seq: u64,
        waits: [Option<RobId>; 2],
        pred_ready: u64,
    ) {
        let e = &mut self.entries[idx];
        assert!(e.classification, "reusing a non-buffered entry");
        assert!(e.issued, "reusing an entry that has not issued");
        e.rob = new_rob;
        e.seq = new_seq;
        e.waits = waits;
        e.issued = false;
        e.pred_ready = pred_ready;
        set_bit(&mut self.ready_mask, idx, self.entries[idx].ready());
        self.activity.partial_updates += 1;
        self.activity.lrl_accesses += 1;
    }

    /// Broadcasts a producing load's predicted completion cycle into every
    /// entry still waiting on it — the load-delay tracker's tag write.
    /// Tags only grow (`max`), so an entry fed by two loads carries its
    /// slowest producer's prediction. Returns how many entries were tagged.
    pub fn tag_pred_ready(&mut self, producer: RobId, completes_at: u64) -> usize {
        let mut tagged = 0;
        for e in &mut self.entries {
            if e.waits.contains(&Some(producer)) && e.pred_ready < completes_at {
                e.pred_ready = completes_at;
                tagged += 1;
            }
        }
        tagged
    }

    /// Clears all classification bits and removes already-issued buffered
    /// entries — the §2.5 recovery to Normal state. Returns how many
    /// entries were dropped.
    pub fn clear_classification(&mut self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !(e.classification && e.issued));
        for e in &mut self.entries {
            e.classification = false;
            e.lrl = None;
        }
        self.rebuild_masks();
        before - self.entries.len()
    }

    /// Recomputes both bitmaps from the entry vector (used after bulk
    /// mutations where incremental maintenance would cost more than a
    /// rebuild).
    fn rebuild_masks(&mut self) {
        self.ready_mask.fill(0);
        self.classified_mask.fill(0);
        for (i, e) in self.entries.iter().enumerate() {
            set_bit(&mut self.ready_mask, i, !e.issued && e.ready());
            set_bit(&mut self.classified_mask, i, e.classification);
        }
    }

    /// Takes and resets the per-cycle activity counters.
    pub fn take_activity(&mut self) -> IqActivity {
        std::mem::take(&mut self.activity)
    }

    /// Debug invariant: entry seqs of non-issued entries are unique and the
    /// packed bitmaps agree with the entry vector.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let mut seqs: Vec<u64> = self.entries.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        let seqs_ok = seqs.windows(2).all(|w| w[0] != w[1]);
        let masks_ok = self.entries.iter().enumerate().all(|(i, e)| {
            get_bit(&self.ready_mask, i) == (!e.issued && e.ready())
                && get_bit(&self.classified_mask, i) == e.classification
        });
        let tail_ok = (self.entries.len()..self.capacity)
            .all(|i| !get_bit(&self.ready_mask, i) && !get_bit(&self.classified_mask, i));
        seqs_ok && masks_ok && tail_ok && self.entries.len() <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(seq: u64, classification: bool) -> IqEntry {
        IqEntry {
            rob: seq as usize,
            seq,
            pc: 0x400000 + seq as u32 * 4,
            inst: Inst::Nop,
            waits: [None, None],
            issued: false,
            classification,
            pred_ready: 0,
            lrl: classification.then_some(LrlRecord {
                srcs: [None, None],
                dest: None,
                static_next: None,
            }),
        }
    }

    #[test]
    fn insert_until_full() {
        let mut iq = IssueQueue::new(2);
        assert!(iq.insert(mk(0, false)));
        assert!(iq.insert(mk(1, false)));
        assert!(!iq.insert(mk(2, false)));
        assert!(iq.is_full());
    }

    #[test]
    fn wakeup_clears_matching_sources() {
        let mut iq = IssueQueue::new(4);
        let mut e = mk(0, false);
        e.waits = [Some(7), Some(9)];
        iq.insert(e);
        assert!(iq.ready_positions().is_empty());
        iq.wakeup(7);
        assert!(iq.ready_positions().is_empty());
        iq.wakeup(9);
        assert_eq!(iq.ready_positions(), vec![0]);
    }

    #[test]
    fn ready_positions_oldest_first() {
        let mut iq = IssueQueue::new(4);
        iq.insert(mk(5, false));
        iq.insert(mk(2, false));
        iq.insert(mk(9, false));
        assert_eq!(iq.ready_positions(), vec![1, 0, 2], "sorted by seq 2,5,9");
    }

    #[test]
    fn issue_removes_conventional_entries() {
        let mut iq = IssueQueue::new(4);
        iq.insert(mk(0, false));
        iq.insert(mk(1, false));
        iq.issue_at(0);
        assert_eq!(iq.len(), 1);
        assert_eq!(iq.entries()[0].seq, 1);
        let act = iq.take_activity();
        assert_eq!(act.issue_reads, 1);
        assert_eq!(act.collapse_moves, 1);
    }

    #[test]
    fn issue_keeps_classified_entries() {
        let mut iq = IssueQueue::new(4);
        iq.insert(mk(0, true));
        iq.issue_at(0);
        assert_eq!(iq.len(), 1, "classification bit pins the entry");
        assert!(iq.entries()[0].issued);
        assert!(iq.ready_positions().is_empty(), "issued entries are not re-selected");
    }

    #[test]
    fn reuse_resets_issue_state_partially() {
        let mut iq = IssueQueue::new(4);
        iq.insert(mk(0, true));
        iq.issue_at(0);
        iq.reuse_at(0, 42, 100, [Some(41), None], 0);
        let e = &iq.entries()[0];
        assert!(!e.issued);
        assert_eq!(e.rob, 42);
        assert_eq!(e.seq, 100);
        assert_eq!(e.waits, [Some(41), None]);
        assert!(e.classification, "classification persists across reuse");
        let act = iq.take_activity();
        assert_eq!(act.partial_updates, 1);
        assert!(act.lrl_accesses >= 2, "LRL write at buffer + read at reuse");
    }

    #[test]
    #[should_panic(expected = "reusing a non-buffered entry")]
    fn reuse_of_unclassified_panics() {
        let mut iq = IssueQueue::new(4);
        iq.insert(mk(0, false));
        iq.reuse_at(0, 1, 1, [None, None], 0);
    }

    #[test]
    fn clear_classification_restores_normal() {
        let mut iq = IssueQueue::new(8);
        iq.insert(mk(0, true));
        iq.insert(mk(1, true));
        iq.insert(mk(2, false));
        iq.issue_at(0); // classified+issued: dropped on clear
        let dropped = iq.clear_classification();
        assert_eq!(dropped, 1);
        assert_eq!(iq.len(), 2);
        assert!(iq.entries().iter().all(|e| !e.classification && e.lrl.is_none()));
    }

    #[test]
    fn remove_by_rob_validates_seq() {
        let mut iq = IssueQueue::new(4);
        iq.insert(mk(3, false));
        assert!(!iq.remove_by_rob(3, 99), "stale seq does not match");
        assert!(iq.remove_by_rob(3, 3));
        assert!(iq.is_empty());
    }

    #[test]
    fn classified_positions_in_queue_order() {
        let mut iq = IssueQueue::new(8);
        iq.insert(mk(0, false));
        iq.insert(mk(1, true));
        iq.insert(mk(2, false));
        iq.insert(mk(3, true));
        assert_eq!(iq.classified_positions(), vec![1, 3]);
    }

    #[test]
    fn invariants_hold() {
        let mut iq = IssueQueue::new(4);
        iq.insert(mk(0, false));
        iq.insert(mk(1, true));
        assert!(iq.check_invariants());
    }

    /// Every position vector from the bitmaps must equal what a naive scan
    /// of the entry vector would return.
    fn assert_masks_match_naive(iq: &IssueQueue) {
        let naive_ready: Vec<usize> = {
            let mut v: Vec<usize> = iq
                .entries()
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.issued && e.ready())
                .map(|(i, _)| i)
                .collect();
            v.sort_by_key(|&i| iq.entries()[i].seq);
            v
        };
        let naive_classified: Vec<usize> = iq
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.classification)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(iq.ready_positions(), naive_ready);
        assert_eq!(iq.classified_positions(), naive_classified);
        assert!(iq.check_invariants());
    }

    #[test]
    fn bitmaps_track_collapse_across_word_boundaries() {
        let mut iq = IssueQueue::new(200);
        for s in 0..150 {
            let mut e = mk(s, s % 3 == 0);
            if s % 5 == 0 {
                e.waits = [Some(9999), None]; // never woken: stays not-ready
            }
            assert!(iq.insert(e));
        }
        assert_masks_match_naive(&iq);
        // Remove entries straddling the 64- and 128-bit word boundaries.
        for &(rob, seq) in &[(63u64, 63u64), (64, 64), (127, 127), (128, 128), (1, 1)] {
            if iq.entries().iter().any(|e| e.classification && e.seq == seq) {
                continue; // classified entries leave via clear, not squash
            }
            assert!(iq.remove_by_rob(rob as usize, seq));
            assert_masks_match_naive(&iq);
        }
        // Issue a few ready entries (collapses unclassified ones).
        while let Some(&pos) = iq.ready_positions().first() {
            iq.issue_at(pos);
            assert_masks_match_naive(&iq);
            if iq.ready_positions().len() < 40 {
                break;
            }
        }
        // Wakeups flip blocked entries ready.
        iq.wakeup(9999);
        assert_masks_match_naive(&iq);
        // Recovery rebuilds from scratch.
        iq.clear_classification();
        assert_masks_match_naive(&iq);
    }

    #[test]
    fn scan_words_covers_live_entries() {
        let mut iq = IssueQueue::new(200);
        assert_eq!(iq.scan_words(), 0);
        iq.insert(mk(0, false));
        assert_eq!(iq.scan_words(), 1);
        for s in 1..65 {
            iq.insert(mk(s, false));
        }
        assert_eq!(iq.scan_words(), 2);
    }

    #[test]
    fn reuse_with_pending_waits_is_not_ready() {
        let mut iq = IssueQueue::new(4);
        iq.insert(mk(0, true));
        iq.issue_at(0);
        iq.reuse_at(0, 42, 100, [Some(41), None], 0);
        assert!(iq.ready_positions().is_empty(), "reused entry still waits on a producer");
        iq.wakeup(41);
        assert_eq!(iq.ready_positions(), vec![0]);
        assert!(iq.check_invariants());
    }
}
