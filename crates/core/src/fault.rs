//! Test-only fault injection for validating the differential fuzzer.
//!
//! The riq-fuzz harness needs a way to prove it can catch a real core bug:
//! a process-wide switch here makes [`Core::restore_from`] "forget" to
//! restore one integer register (`$r9`) when installing a checkpoint. With
//! the switch on, every checkpoint-resume leg of the fuzz matrix diverges
//! from the oracle the moment the program reads `$r9`, and the shrinker
//! must reduce the failure to a minimal repro.
//!
//! The switch defaults to off and nothing in the simulator enables it; it
//! exists solely for harness self-tests. It is process-global, so tests
//! that flip it must not run concurrently with differential tests that
//! expect a correct core (the riq-fuzz self-test lives in its own test
//! binary for exactly this reason).
//!
//! [`Core::restore_from`]: crate::Processor::resume
use std::sync::atomic::{AtomicBool, Ordering};

static SKIP_RESTORE_R9: AtomicBool = AtomicBool::new(false);

/// Enables or disables the injected restore bug. Off by default.
pub fn set_skip_restore_r9(enabled: bool) {
    SKIP_RESTORE_R9.store(enabled, Ordering::SeqCst);
}

/// True while the injected restore bug is armed.
pub fn skip_restore_r9() -> bool {
    SKIP_RESTORE_R9.load(Ordering::SeqCst)
}
