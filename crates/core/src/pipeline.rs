//! The cycle-level out-of-order pipeline.
//!
//! Seven stages, modeled in reverse order each cycle so same-cycle flow is
//! correct: commit ← writeback ← issue ← rename/dispatch ← decode ← fetch.
//! Instructions execute *functionally* at dispatch (sim-outorder style)
//! against the speculative state; branch outcomes are acted on only at
//! writeback, via conventional walk-back recovery. The reuse issue queue
//! plugs into dispatch: in **Loop Buffering** state dispatched loop
//! instructions are pinned into the queue, and in **Code Reuse** state the
//! dispatch stage is fed by the queue's reuse pointer instead of the
//! (gated) front-end.

use crate::config::SimConfig;
use crate::fu::{exec_latency, fu_class, FuClass, FuPool};
use crate::iq::{IqEntry, IssueQueue, LrlRecord};
use crate::lsq::{Lsq, StoreConflict};
use crate::policy::IssuePolicy;
use crate::rename::RenameMap;
use crate::reuse::{IqState, ReuseController};
use crate::rob::{RenameRef, Rob, RobEntry, RobId};
use crate::specstate::SpecState;
use crate::stats::{EpochSample, RunResult, SimStats};
use riq_asm::{Program, STACK_TOP};
use riq_bpred::BranchPredictor;
use riq_ckpt::Checkpoint;
use riq_emu::{ControlFlow, Executed, MemFault};
use riq_isa::{CtrlKind, Inst, InstClass, IntReg};
use riq_mem::{HierarchyStats, MemoryHierarchy};
use riq_metrics::{MetricsSnapshot, ProfileConfig, Registry, SimCounter, Stage};
use riq_power::{Activity, Component, PowerModel};
use riq_trace::{CacheLevel, EventKind, GateEndReason, NullSink, TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Error terminating a simulation abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid configuration.
    Config(crate::config::ConfigError),
    /// A correct-path instruction faulted on a data access.
    Mem {
        /// PC of the faulting instruction.
        pc: u32,
        /// The fault.
        fault: MemFault,
    },
    /// A correct-path fetch produced an undecodable word.
    Decode {
        /// The faulting PC.
        pc: u32,
    },
    /// The cycle budget elapsed before `halt` committed.
    CycleLimit {
        /// Cycles simulated.
        cycles: u64,
        /// Instructions committed so far.
        committed: u64,
    },
    /// No instruction committed for a long stretch: a pipeline deadlock
    /// (this is a simulator bug, never a program property; the message
    /// carries a dump of the stuck window head).
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Human-readable dump of the stuck state.
        detail: String,
    },
    /// A checkpoint was captured from a different program than the one
    /// being resumed.
    CheckpointMismatch {
        /// Fingerprint of the program handed to the resume.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        got: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::Mem { pc, fault } => write!(f, "at {pc:#010x}: {fault}"),
            SimError::Decode { pc } => write!(f, "undecodable instruction at {pc:#010x}"),
            SimError::CycleLimit { cycles, committed } => {
                write!(f, "cycle limit reached after {cycles} cycles ({committed} committed)")
            }
            SimError::Deadlock { cycle, detail } => {
                write!(f, "pipeline deadlock at cycle {cycle}: {detail}")
            }
            SimError::CheckpointMismatch { expected, got } => {
                write!(
                    f,
                    "checkpoint belongs to a different program \
                     (program fingerprint {expected:#018x}, checkpoint records {got:#018x})"
                )
            }
        }
    }
}

impl Error for SimError {}

impl From<crate::config::ConfigError> for SimError {
    fn from(e: crate::config::ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// Cycles without a commit after which the deadlock watchdog fires. Far
/// above any legitimate stall (the longest memory round trip is ~200
/// cycles).
const DEADLOCK_WINDOW: u64 = 50_000;

/// A fetched, pre-decoded instruction flowing toward dispatch.
#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: u32,
    inst: Inst,
    predicted_next: u32,
}

/// The user-facing simulator.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_asm::assemble;
/// use riq_core::{Processor, SimConfig};
/// use riq_isa::IntReg;
///
/// let program = assemble("  li $r2, 5\n  li $r3, 8\n  add $r4, $r2, $r3\n  halt\n")?;
/// let result = Processor::new(SimConfig::baseline()).run(&program)?;
/// assert_eq!(result.arch_state.int_reg(IntReg::new(4)), 13);
/// assert!(result.stats.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Processor {
    cfg: SimConfig,
}

impl Processor {
    /// Creates a processor with the given configuration.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Processor {
        Processor { cfg }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs `program` to completion (until `halt` commits).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for invalid configurations, correct-path
    /// faults, or exceeding the cycle budget.
    pub fn run(&self, program: &Program) -> Result<RunResult, SimError> {
        self.run_observed(program, &mut NullSink, None)
    }

    /// Runs `program` with observability attached: every trace event is
    /// handed to `sink`, and when `epoch` is `Some(n)` the statistics
    /// counters are snapshotted every `n` cycles into
    /// [`RunResult::epochs`] (plus an `epoch` trace event per boundary).
    ///
    /// With the default [`NullSink`] and no epoch period this is exactly
    /// [`run`](Processor::run): instrumentation sites check
    /// [`TraceSink::enabled`] once and skip event construction entirely.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Processor::run).
    pub fn run_observed(
        &self,
        program: &Program,
        sink: &mut dyn TraceSink,
        epoch: Option<u64>,
    ) -> Result<RunResult, SimError> {
        self.cfg.validate()?;
        let core = Core::new(&self.cfg, program, sink, epoch)?;
        self.drive(core, None)
    }

    /// [`run_observed`](Processor::run_observed) with self-profiling: the
    /// core runs with an enabled metrics registry, so
    /// [`RunResult::metrics`] carries a [`MetricsSnapshot`] — visit
    /// counters every cycle, stage timers on cycles selected by
    /// `profile.sample_period`. When tracing is also attached, each
    /// sampled cycle additionally emits a `stage_nanos` trace event.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Processor::run).
    pub fn run_profiled(
        &self,
        program: &Program,
        sink: &mut dyn TraceSink,
        epoch: Option<u64>,
        profile: ProfileConfig,
    ) -> Result<RunResult, SimError> {
        self.cfg.validate()?;
        let mut core = Core::new(&self.cfg, program, sink, epoch)?;
        core.metrics = Registry::profiling(profile);
        self.drive(core, None)
    }

    /// [`resume_observed`](Processor::resume_observed) with self-profiling
    /// (see [`run_profiled`](Processor::run_profiled)).
    ///
    /// # Errors
    ///
    /// Same as [`resume_from`](Processor::resume_from).
    #[allow(clippy::too_many_arguments)]
    pub fn resume_profiled(
        &self,
        program: &Program,
        ckpt: &Checkpoint,
        warmup: u64,
        sample: Option<u64>,
        sink: &mut dyn TraceSink,
        epoch: Option<u64>,
        profile: ProfileConfig,
    ) -> Result<RunResult, SimError> {
        self.cfg.validate()?;
        let expected = program.fingerprint();
        if ckpt.program_fingerprint != expected {
            return Err(SimError::CheckpointMismatch { expected, got: ckpt.program_fingerprint });
        }
        let mut core = Core::new(&self.cfg, program, sink, epoch)?;
        core.metrics = Registry::profiling(profile);
        core.restore_from(ckpt, warmup);
        self.drive(core, sample)
    }

    /// Resumes detailed simulation from a [`Checkpoint`] captured by
    /// fast-forwarding `program` on the functional emulator. The
    /// architectural state (register file, memory image, PC) is installed
    /// before the first cycle, and the last `warmup` events of the
    /// checkpoint's warm window are replayed into the caches, TLBs, and
    /// branch predictor — without perturbing their statistics — so the
    /// measured region does not start against cold structures.
    ///
    /// Running the remainder to completion is architecturally identical to
    /// a from-zero [`run`](Processor::run): the final register file and
    /// memory digest match exactly. The returned statistics cover only the
    /// resumed region.
    ///
    /// # Errors
    ///
    /// [`SimError::CheckpointMismatch`] when the checkpoint's program
    /// fingerprint does not match `program`; otherwise the same errors as
    /// [`run`](Processor::run).
    pub fn resume_from(
        &self,
        program: &Program,
        ckpt: &Checkpoint,
        warmup: u64,
    ) -> Result<RunResult, SimError> {
        self.resume_observed(program, ckpt, warmup, None, &mut NullSink, None)
    }

    /// [`resume_from`](Processor::resume_from) with observability and an
    /// optional sample budget: when `sample` is `Some(k)`, simulation stops
    /// once `k` instructions have committed in the resumed region (the
    /// SMARTS-style detailed sample) instead of running to `halt`. A
    /// sampled run reports partial statistics and an arch state mid-flight;
    /// only unsampled runs preserve final-state identity with
    /// [`run`](Processor::run).
    ///
    /// # Errors
    ///
    /// Same as [`resume_from`](Processor::resume_from).
    pub fn resume_observed(
        &self,
        program: &Program,
        ckpt: &Checkpoint,
        warmup: u64,
        sample: Option<u64>,
        sink: &mut dyn TraceSink,
        epoch: Option<u64>,
    ) -> Result<RunResult, SimError> {
        self.cfg.validate()?;
        let expected = program.fingerprint();
        if ckpt.program_fingerprint != expected {
            return Err(SimError::CheckpointMismatch { expected, got: ckpt.program_fingerprint });
        }
        let mut core = Core::new(&self.cfg, program, sink, epoch)?;
        core.restore_from(ckpt, warmup);
        self.drive(core, sample)
    }

    /// The shared run loop: cycle limit, deadlock watchdog, and an
    /// optional committed-instruction budget for sampled simulation.
    fn drive(&self, mut core: Core<'_>, sample: Option<u64>) -> Result<RunResult, SimError> {
        let mut last_progress = (core.now, core.stats.committed); // (cycle, committed)
        while !core.done {
            if sample.is_some_and(|budget| core.stats.committed >= budget) {
                break;
            }
            if core.now >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    cycles: core.now,
                    committed: core.stats.committed,
                });
            }
            if core.stats.committed != last_progress.1 {
                last_progress = (core.now, core.stats.committed);
            } else if core.now - last_progress.0 > DEADLOCK_WINDOW {
                return Err(SimError::Deadlock { cycle: core.now, detail: core.deadlock_dump() });
            }
            core.cycle()?;
        }
        Ok(core.into_result())
    }
}

struct Core<'a> {
    cfg: &'a SimConfig,
    program: &'a Program,
    sink: &'a mut dyn TraceSink,
    tracing: bool,
    epoch_len: Option<u64>,
    epochs: Vec<EpochSample>,
    epoch_start: u64,
    epoch_prev: SimStats,
    gate_on_cycle: u64,
    prev_sample: [u64; 4],
    now: u64,
    seq: u64,
    done: bool,
    spec: SpecState,
    rob: Rob,
    map: RenameMap,
    iq: IssueQueue,
    lsq: Lsq,
    pool: FuPool,
    policy: &'static dyn IssuePolicy,
    /// Load-delay tracker: in-flight loads' predicted completion cycles,
    /// keyed by ROB slot. Populated only when the policy tracks load
    /// delays; always empty under the default policy.
    load_ready_at: HashMap<RobId, u64>,
    hier: MemoryHierarchy,
    bp: BranchPredictor,
    ctl: ReuseController,
    power: PowerModel,
    act: Activity,
    stats: SimStats,
    events: BinaryHeap<Reverse<(u64, u64, RobId)>>,
    fetch_pc: u32,
    fetch_ready_at: u64,
    fetch_halted: bool,
    fetch_queue: VecDeque<Fetched>,
    decode_buf: VecDeque<Fetched>,
    halt_dispatched: bool,
    gated: bool,
    reuse_ptr: usize,
    unresolved_mispredicts: u32,
    prev_hier: HierarchyStats,
    last_commit_pc: Option<u32>,
    metrics: Registry,
    prof_this_cycle: bool,
}

impl<'a> Core<'a> {
    fn new(
        cfg: &'a SimConfig,
        program: &'a Program,
        sink: &'a mut dyn TraceSink,
        epoch_len: Option<u64>,
    ) -> Result<Core<'a>, SimError> {
        let mut spec = SpecState::new();
        for (i, &word) in program.text().iter().enumerate() {
            let addr = program.text_base() + 4 * i as u32;
            spec.mem_mut().store_u32(addr, word).expect("program text base is aligned");
        }
        spec.mem_mut().store_bytes(program.data_base(), program.data());
        spec.regs_mut().set_int_reg(IntReg::SP, STACK_TOP);
        let hier = MemoryHierarchy::new(cfg.mem).map_err(|_| {
            SimError::Config(crate::config::ConfigError::Zero("memory hierarchy geometry"))
        })?;
        let tracing = sink.enabled();
        let mut ctl = ReuseController::new(cfg.reuse, cfg.iq_entries);
        ctl.set_tracing(tracing);
        Ok(Core {
            cfg,
            program,
            sink,
            tracing,
            epoch_len: epoch_len.filter(|&n| n > 0),
            epochs: Vec::new(),
            epoch_start: 0,
            epoch_prev: SimStats::default(),
            gate_on_cycle: 0,
            prev_sample: [0; 4],
            now: 0,
            seq: 0,
            done: false,
            spec,
            rob: Rob::new(cfg.rob_entries),
            map: RenameMap::new(),
            iq: IssueQueue::new(cfg.iq_entries),
            lsq: Lsq::new(cfg.lsq_entries),
            pool: FuPool::new(&cfg.fu),
            policy: cfg.policy.policy(),
            load_ready_at: HashMap::new(),
            prev_hier: HierarchyStats::default(),
            hier,
            bp: BranchPredictor::new(cfg.bpred),
            ctl,
            power: PowerModel::new(&cfg.power_config()),
            act: Activity::new(),
            stats: SimStats::default(),
            events: BinaryHeap::new(),
            fetch_pc: program.entry(),
            fetch_ready_at: 0,
            fetch_halted: false,
            fetch_queue: VecDeque::new(),
            decode_buf: VecDeque::new(),
            halt_dispatched: false,
            gated: false,
            reuse_ptr: 0,
            unresolved_mispredicts: 0,
            last_commit_pc: None,
            metrics: Registry::disabled(),
            prof_this_cycle: false,
        })
    }

    /// Installs a checkpoint's architectural state in place of the boot
    /// state and replays up to `warmup` trailing warm-window events into
    /// the caches, TLBs, and branch predictor (stats-neutral, so power
    /// accounting still starts from zero). A checkpoint that captured a
    /// halted machine short-circuits the run: there is nothing left to
    /// simulate.
    fn restore_from(&mut self, ckpt: &Checkpoint, warmup: u64) {
        *self.spec.regs_mut() = ckpt.regs.clone();
        if crate::fault::skip_restore_r9() {
            // Injected bug for fuzz-harness self-tests: drop one register
            // restore so resumed runs diverge from the oracle.
            self.spec.regs_mut().set_int_reg(IntReg::new(9), 0);
        }
        *self.spec.mem_mut() = ckpt.mem.clone();
        self.fetch_pc = ckpt.pc;
        let start = ckpt.warm.len().saturating_sub(warmup as usize);
        let window = &ckpt.warm[start..];
        for event in window {
            self.hier.warm_fetch(event.pc);
            if let Some(access) = event.mem {
                self.hier.warm_data(access.addr, access.is_store);
            }
            if let Some(branch) = event.branch {
                self.bp.warm(event.pc, branch.kind, branch.taken, branch.next);
            }
        }
        if ckpt.halted {
            self.done = true;
        }
        if self.tracing {
            self.sink.record(TraceEvent::new(
                0,
                EventKind::Resumed { retired: ckpt.retired, warmed: window.len() as u64 },
            ));
        }
    }

    fn into_result(mut self) -> RunResult {
        // Close the gating window and epoch left open by a program that
        // finished mid-reuse.
        if self.gated && self.tracing {
            self.sink.record(TraceEvent::new(
                self.stats.cycles,
                EventKind::GateOff {
                    span: self.stats.cycles - self.gate_on_cycle,
                    reason: GateEndReason::RunEnd,
                },
            ));
        }
        if self.epoch_len.is_some() && self.stats.cycles > self.epoch_start {
            self.close_epoch();
        }
        let mut stats = self.stats;
        stats.reuse = self.ctl.stats;
        let metrics = self.metrics.is_enabled().then(|| self.metrics_snapshot());
        RunResult {
            stats,
            power: self.power.report(),
            mem: self.hier.stats(),
            bpred: self.bp.stats(),
            epochs: self.epochs,
            arch_state: self.spec.regs().clone(),
            mem_digest: self.spec.mem().content_digest(),
            metrics,
        }
    }

    /// Freezes the registry with the mirror counters — the numbers the
    /// simulator already maintains elsewhere (stats, hierarchy) — filled
    /// in, so one snapshot answers both "what did the run do" and "what
    /// did the cycle loop touch doing it".
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut reg = self.metrics.clone();
        let stats = self.current_stats();
        reg.set(SimCounter::Cycles, stats.cycles);
        reg.set(SimCounter::Committed, stats.committed);
        reg.set(SimCounter::Fetched, stats.fetched);
        reg.set(SimCounter::Dispatched, stats.dispatched);
        reg.set(SimCounter::Issued, stats.issued);
        reg.set(SimCounter::GatedCycles, stats.gated_cycles);
        reg.set(SimCounter::ReusedInsts, stats.reuse.reused_insts);
        let h = self.hier.stats();
        let accesses = h.il1.accesses() + h.dl1.accesses() + h.l2.accesses();
        let misses = h.il1.misses + h.dl1.misses + h.l2.misses;
        reg.set(SimCounter::CacheMisses, misses);
        reg.set(SimCounter::CacheHits, accesses.saturating_sub(misses));
        reg.snapshot()
    }

    /// The live counters including the controller-held reuse numbers (the
    /// merge [`into_result`](Core::into_result) performs at the end).
    fn current_stats(&self) -> SimStats {
        let mut s = self.stats;
        s.reuse = self.ctl.stats;
        s
    }

    fn close_epoch(&mut self) {
        let current = self.current_stats();
        let delta = current - self.epoch_prev;
        let index = self.epochs.len() as u64;
        let sample =
            EpochSample { index, start_cycle: self.epoch_start, end_cycle: current.cycles, delta };
        if self.tracing {
            self.sink.record(TraceEvent::new(
                current.cycles,
                EventKind::Epoch {
                    index,
                    start_cycle: sample.start_cycle,
                    cycles: delta.cycles,
                    committed: delta.committed,
                    gated: delta.gated_cycles,
                    reused: delta.reuse.reused_insts,
                },
            ));
        }
        self.epochs.push(sample);
        self.epoch_prev = current;
        self.epoch_start = current.cycles;
    }

    /// Moves staged reuse-FSM events into the sink, stamped with the
    /// current cycle.
    fn drain_ctl_events(&mut self) {
        for kind in self.ctl.events.drain(..) {
            self.sink.record(TraceEvent::new(self.now, kind));
        }
    }

    fn cycle(&mut self) -> Result<(), SimError> {
        self.prof_this_cycle = self.metrics.stage_timers_sampled(self.now);
        self.pool.new_cycle();
        if self.prof_this_cycle {
            self.timed_cycle()?;
        } else {
            self.commit();
            if !self.done {
                self.writeback();
                self.issue();
                self.dispatch()?;
                self.decode();
                self.fetch()?;
            }
            self.end_cycle_accounting();
        }
        self.now += 1;
        Ok(())
    }

    /// The sampled-cycle path: the identical stage sequence as
    /// [`cycle`](Core::cycle), with each stage bracketed by host-clock
    /// reads. `Execute` time is recorded inside
    /// [`execute_speculative`](Core::execute_speculative) (it runs nested
    /// within dispatch), so its delta is read back from the registry.
    fn timed_cycle(&mut self) -> Result<(), SimError> {
        fn lap(mark: &mut Instant) -> u64 {
            let now = Instant::now();
            let d = now.duration_since(*mark).as_nanos() as u64;
            *mark = now;
            d
        }
        let mut nanos = [0u64; Stage::COUNT];
        let exec_before = self.metrics.stage_nanos(Stage::Execute);
        let mut mark = Instant::now();
        self.commit();
        nanos[Stage::Commit as usize] = lap(&mut mark);
        if !self.done {
            self.writeback();
            nanos[Stage::Writeback as usize] = lap(&mut mark);
            self.issue();
            nanos[Stage::Issue as usize] = lap(&mut mark);
            self.dispatch()?;
            nanos[Stage::Dispatch as usize] = lap(&mut mark);
            self.decode();
            nanos[Stage::Decode as usize] = lap(&mut mark);
            self.fetch()?;
            nanos[Stage::Fetch as usize] = lap(&mut mark);
        }
        self.end_cycle_accounting();
        nanos[Stage::Accounting as usize] = lap(&mut mark);
        nanos[Stage::Execute as usize] = self.metrics.stage_nanos(Stage::Execute) - exec_before;
        for &stage in Stage::ALL.iter() {
            if stage != Stage::Execute {
                self.metrics.record_stage(stage, nanos[stage as usize]);
            }
        }
        self.metrics.count_stage_sample();
        if self.tracing {
            self.sink.record(TraceEvent::new(
                self.now,
                EventKind::StageNanos {
                    fetch: nanos[Stage::Fetch as usize],
                    decode: nanos[Stage::Decode as usize],
                    dispatch: nanos[Stage::Dispatch as usize],
                    execute: nanos[Stage::Execute as usize],
                    issue: nanos[Stage::Issue as usize],
                    writeback: nanos[Stage::Writeback as usize],
                    commit: nanos[Stage::Commit as usize],
                    accounting: nanos[Stage::Accounting as usize],
                },
            ));
        }
        Ok(())
    }

    // ---- commit ----

    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(id) = self.rob.oldest() else { break };
            if !self.rob.get(id).expect("oldest live").completed {
                break;
            }
            let (id, e) = self.rob.pop_oldest().expect("oldest live");
            debug_assert!(!e.mispredicted, "mispredicted entry must resolve before commit");
            self.act.add(Component::Rob, 1);
            if let Some(d) = e.dest {
                self.map.commit(d, id, e.seq);
                self.act.add(Component::Regfile, 1);
            }
            if let Some(m) = e.mem {
                if m.is_store {
                    // Stores update the data cache at commit (write buffer
                    // drains without stalling the pipeline).
                    let _ = self.hier.data_latency(m.addr, true);
                }
                self.lsq.pop_if_front(id, e.seq);
            }
            if let Some(kind) = e.inst.ctrl_kind() {
                if kind == CtrlKind::CondBranch {
                    self.stats.branches += 1;
                }
                // Reused instructions bypass the (gated) dynamic predictor
                // entirely — no training, no activity (§2.4).
                if !e.reused {
                    let taken = matches!(e.flow, ControlFlow::Taken(_));
                    self.bp.update(e.pc, kind, taken, e.actual_next);
                    if kind == CtrlKind::CondBranch {
                        self.act.add(Component::BpredDir, 1);
                        self.act.add(Component::Btb, 1);
                    }
                }
            }
            self.stats.committed += 1;
            self.last_commit_pc = Some(e.pc);
            if e.inst == Inst::Halt {
                self.done = true;
                return;
            }
        }
    }

    // ---- writeback & recovery ----

    fn writeback(&mut self) {
        let mut completions: Vec<(u64, RobId)> = Vec::new();
        while let Some(&Reverse((t, seq, id))) = self.events.peek() {
            if t > self.now {
                break;
            }
            self.events.pop();
            completions.push((seq, id));
        }
        completions.sort_unstable();
        if !completions.is_empty() {
            self.metrics.add(SimCounter::AllocEvents, 1);
        }
        for (seq, id) in completions {
            let Some(e) = self.rob.get_mut(id) else { continue };
            if e.seq != seq || e.completed {
                continue; // stale event (entry squashed and slot reused)
            }
            e.completed = true;
            let has_dest = e.dest.is_some();
            let is_mem = e.mem.is_some();
            let mispredicted = e.mispredicted;
            if self.policy.tracks_load_delay() {
                // A completed load's value is in flight on the result bus;
                // its consumers no longer wait on a predicted cycle.
                self.load_ready_at.remove(&id);
            }
            self.act.add(Component::ResultBus, 1);
            self.act.add(Component::Rob, 1);
            if is_mem {
                self.lsq.mark_completed(id, seq);
            }
            if has_dest {
                // A wakeup broadcast compares the completing tag against
                // every live queue entry — the CAM cost ROADMAP item 1
                // wants quantified.
                self.metrics.add(SimCounter::IqWakeupVisits, self.iq.len() as u64);
                self.iq.wakeup(id);
                self.act.add(Component::IqWakeup, 1);
            }
            if mispredicted {
                self.recover(id, seq);
            }
        }
    }

    fn recover(&mut self, branch_id: RobId, branch_seq: u64) {
        self.stats.mispredictions += 1;
        // Walk the window back, youngest first, to the mispredicted branch.
        while let Some(young) = self.rob.youngest() {
            self.metrics.add(SimCounter::RobWalkVisits, 1);
            if self.rob.get(young).expect("youngest live").seq <= branch_seq {
                break;
            }
            let (yid, ye) = self.rob.pop_youngest().expect("youngest live");
            self.spec.undo(&ye.undo);
            if let Some(d) = ye.dest {
                // Validate the captured mapping: if the old producer has
                // committed since (its slot freed or reused), the value is
                // architectural now.
                let old = match ye.old_map {
                    RenameRef::Rob(p, pseq) if self.rob.get(p).is_none_or(|e| e.seq != pseq) => {
                        RenameRef::Arch
                    }
                    other => other,
                };
                self.map.restore(d, old);
            }
            self.iq.remove_by_rob(yid, ye.seq);
            if self.policy.tracks_load_delay() {
                self.load_ready_at.remove(&yid);
            }
            if ye.mem.is_some() {
                self.lsq.remove(yid, ye.seq);
            }
            if ye.inst == Inst::Halt {
                self.halt_dispatched = false;
            }
            if ye.mispredicted {
                self.unresolved_mispredicts -= 1;
            }
            self.stats.squashed += 1;
        }
        let branch = self.rob.get_mut(branch_id).expect("branch still live");
        branch.mispredicted = false;
        let redirect = branch.actual_next;
        let branch_pc = branch.pc;
        self.unresolved_mispredicts -= 1;
        if self.tracing {
            self.sink.record(TraceEvent::new(
                self.now,
                EventKind::BranchMispredict {
                    pc: u64::from(branch_pc),
                    actual_next: u64::from(redirect),
                },
            ));
        }
        // Redirect the front-end.
        self.fetch_pc = redirect;
        self.fetch_queue.clear();
        self.decode_buf.clear();
        self.fetch_halted = false;
        self.fetch_ready_at = self.now + 1;
        // Any reuse activity (buffering or reusing) ends here (§2.5).
        if self.ctl.on_recovery() {
            self.iq.clear_classification();
            if self.tracing {
                self.drain_ctl_events();
                if self.gated {
                    self.sink.record(TraceEvent::new(
                        self.now,
                        EventKind::GateOff {
                            span: self.now - self.gate_on_cycle,
                            reason: GateEndReason::Recovery,
                        },
                    ));
                }
            }
            self.gated = false;
            self.reuse_ptr = 0;
        }
    }

    // ---- issue ----

    fn issue(&mut self) {
        if self.iq.is_empty() {
            return;
        }
        self.act.add(Component::IqSelect, 1);
        // The ready scan walks the packed ready bitmap: a word read per 64
        // live entries plus one entry visit per ready hit, rather than a
        // visit per live entry.
        let mut ready = self.iq.ready_positions();
        self.metrics.add(SimCounter::IqScanVisits, (self.iq.scan_words() + ready.len()) as u64);
        self.metrics.add(SimCounter::AllocEvents, 1);
        // The policy decides the order selection considers the ready set;
        // `Baseline` keeps the oldest-first order `ready_positions`
        // produced, byte-identical to the pre-policy scan.
        self.policy.order(&self.iq, self.now, &mut ready);
        let mut selected: Vec<usize> = Vec::new();
        for pos in ready {
            if selected.len() as u32 >= self.cfg.issue_width {
                break;
            }
            let e = &self.iq.entries()[pos];
            let class = fu_class(&e.inst);
            if e.inst.class() == InstClass::Load {
                self.metrics.add(SimCounter::LsqSearchVisits, self.lsq.len() as u64);
                if self.lsq.check_load(e.rob, e.seq) == StoreConflict::Wait {
                    continue; // blocked behind an incomplete older store
                }
            }
            if !self.pool.try_acquire(class) {
                continue;
            }
            if self.tracing && self.policy.tracks_load_delay() {
                self.sink.record(TraceEvent::new(
                    self.now,
                    EventKind::PolicySelected {
                        policy: self.policy.kind().as_str().to_string(),
                        seq: e.seq,
                        slack: e.pred_ready.saturating_sub(self.now),
                    },
                ));
            }
            selected.push(pos);
        }
        // Apply removals from the highest position down so earlier indices
        // stay valid while collapsing.
        selected.sort_unstable_by(|a, b| b.cmp(a));
        for pos in selected {
            let (rob_id, seq, inst) = {
                let e = &self.iq.entries()[pos];
                (e.rob, e.seq, e.inst)
            };
            self.iq.issue_at(pos);
            self.schedule_completion(rob_id, seq, &inst);
            self.stats.issued += 1;
            match fu_class(&inst) {
                FuClass::IntAlu => self.act.add(Component::IntAlu, 1),
                FuClass::IntMult => self.act.add(Component::IntMult, 1),
                FuClass::FpAlu => self.act.add(Component::FpAlu, 1),
                FuClass::FpMult => self.act.add(Component::FpMult, 1),
                FuClass::MemPort => self.act.add(Component::Lsq, 1),
                FuClass::None => {}
            }
        }
    }

    fn schedule_completion(&mut self, rob_id: RobId, seq: u64, inst: &Inst) {
        let mut lat = exec_latency(&self.cfg.latency, inst);
        if inst.class() == InstClass::Load {
            let mem = self.rob.get(rob_id).and_then(|e| e.mem);
            // A wrong-path load that faulted (`mem` is `None`) executes
            // as a bubble.
            if let Some(m) = mem {
                self.metrics.add(SimCounter::LsqSearchVisits, self.lsq.len() as u64);
                match self.lsq.check_load(rob_id, seq) {
                    StoreConflict::ForwardReady => {
                        self.lsq.count_forward();
                        lat += 1;
                    }
                    StoreConflict::Wait => {
                        // Selection filtered these out; if a store slipped
                        // in this cycle, a one-cycle replay is charged.
                        lat += 1;
                    }
                    StoreConflict::None => {
                        let l2_misses_before =
                            if self.tracing { self.hier.stats().l2.misses } else { 0 };
                        let dlat = self.hier.data_latency(m.addr, false);
                        if self.tracing && dlat > self.cfg.mem.dl1.hit_latency {
                            self.record_cache_miss(CacheLevel::L1D, m.addr, dlat, l2_misses_before);
                        }
                        lat += dlat;
                    }
                }
            }
        }
        if self.policy.tracks_load_delay() && inst.class() == InstClass::Load {
            // Load-delay tracker: the hierarchy's actual hit/miss latency
            // fixes the cycle this load's value arrives. Record it for
            // entries dispatched later and broadcast it into consumers
            // already waiting in the queue.
            let completes_at = self.now + lat;
            self.load_ready_at.insert(rob_id, completes_at);
            self.iq.tag_pred_ready(rob_id, completes_at);
            if self.tracing {
                self.sink.record(TraceEvent::new(
                    self.now,
                    EventKind::SlackComputed { seq, pred_ready: completes_at, slack: lat },
                ));
            }
        }
        self.events.push(Reverse((self.now + lat, seq, rob_id)));
    }

    // ---- dispatch ----

    fn dispatch(&mut self) -> Result<(), SimError> {
        if self.ctl.state() == IqState::CodeReuse {
            return self.reuse_supply();
        }
        for _ in 0..self.cfg.issue_width {
            if self.halt_dispatched || self.rob.is_full() {
                break;
            }
            let Some(&f) = self.decode_buf.front() else { break };
            let needs_iq = !matches!(f.inst.class(), InstClass::Nop | InstClass::Halt);
            if needs_iq && self.iq.is_full() {
                // Full queue during buffering: the loop does not fit (§2.2.2).
                let d = self.ctl.on_queue_full();
                if d.revoke {
                    self.iq.clear_classification();
                }
                if self.iq.is_full() {
                    break;
                }
            }
            if f.inst.is_mem() && self.lsq.is_full() {
                break;
            }
            self.decode_buf.pop_front();
            let promoted = self.dispatch_one(f)?;
            if promoted {
                break;
            }
        }
        Ok(())
    }

    /// Functionally executes at dispatch, handling wrong-path faults.
    /// On sampled profiling cycles the host time spent here is recorded
    /// against [`Stage::Execute`] (nested inside dispatch's bracket).
    fn execute_speculative(
        &mut self,
        inst: &Inst,
        pc: u32,
    ) -> Result<(Executed, Vec<crate::specstate::UndoRecord>), SimError> {
        if self.prof_this_cycle {
            let start = Instant::now();
            let out = self.execute_speculative_inner(inst, pc);
            self.metrics.record_stage(Stage::Execute, start.elapsed().as_nanos() as u64);
            out
        } else {
            self.execute_speculative_inner(inst, pc)
        }
    }

    fn execute_speculative_inner(
        &mut self,
        inst: &Inst,
        pc: u32,
    ) -> Result<(Executed, Vec<crate::specstate::UndoRecord>), SimError> {
        match self.spec.execute(inst, pc) {
            Ok(x) => Ok(x),
            Err(fault) => {
                if self.unresolved_mispredicts > 0 {
                    // Wrong-path instruction touching a garbage address:
                    // executes as a bubble and will be squashed.
                    Ok((Executed { flow: ControlFlow::Next, mem: None }, Vec::new()))
                } else {
                    Err(SimError::Mem { pc, fault })
                }
            }
        }
    }

    fn dispatch_one(&mut self, f: Fetched) -> Result<bool, SimError> {
        let seq = self.seq;
        self.seq += 1;
        let free_after = self.iq.free_entries().saturating_sub(1) as u32;
        let (done, undo) = self.execute_speculative(&f.inst, f.pc)?;
        let actual_next = done.flow.next_pc(f.pc);
        let directive = self.ctl.on_dispatch(f.pc, &f.inst, free_after, actual_next);
        if directive.revoke {
            self.iq.clear_classification();
        }
        let mispredicted =
            !matches!(done.flow, ControlFlow::Halt) && actual_next != f.predicted_next;
        let immediate = matches!(f.inst.class(), InstClass::Nop | InstClass::Halt);
        let dest = f.inst.dest();
        let entry = RobEntry {
            seq,
            pc: f.pc,
            inst: f.inst,
            dest,
            old_map: RenameRef::Arch,
            completed: immediate,
            flow: done.flow,
            mem: done.mem,
            predicted_next: f.predicted_next,
            actual_next,
            mispredicted,
            undo,
            reused: false,
            wrong_path: self.unresolved_mispredicts > 0,
        };
        let id = self.rob.alloc(entry).expect("dispatch checked ROB space");
        let waits = self.rename(&f.inst, dest, id, seq);
        if mispredicted {
            self.unresolved_mispredicts += 1;
        }
        self.act.add(Component::RenameTable, 1);
        self.act.add(Component::Rob, 1);
        self.stats.dispatched += 1;
        if f.inst == Inst::Halt {
            self.halt_dispatched = true;
        }
        if !immediate {
            if let Some(m) = done.mem {
                self.lsq.push(id, seq, m.is_store, m.addr, m.width);
                self.act.add(Component::Lsq, 1);
            }
            let lrl = directive.buffer.then(|| LrlRecord {
                srcs: f.inst.sources(),
                dest,
                static_next: f.inst.is_control().then_some(actual_next),
            });
            let inserted = self.iq.insert(IqEntry {
                rob: id,
                seq,
                pc: f.pc,
                inst: f.inst,
                waits,
                issued: false,
                classification: directive.buffer,
                lrl,
                pred_ready: self.pred_ready_for(&waits),
            });
            debug_assert!(inserted, "dispatch checked IQ space");
        }
        if directive.promote {
            self.enter_code_reuse();
        }
        Ok(directive.promote)
    }

    /// Load-delay tag for a queue entry entering with `waits`: the latest
    /// predicted completion cycle over its in-flight producing loads, or 0
    /// for untracked producers (and always 0 under non-tracking policies).
    fn pred_ready_for(&self, waits: &[Option<RobId>; 2]) -> u64 {
        if !self.policy.tracks_load_delay() {
            return 0;
        }
        waits.iter().flatten().filter_map(|w| self.load_ready_at.get(w).copied()).max().unwrap_or(0)
    }

    fn rename(
        &mut self,
        inst: &Inst,
        dest: Option<riq_isa::ArchReg>,
        id: RobId,
        seq: u64,
    ) -> [Option<RobId>; 2] {
        let mut waits = [None, None];
        for (slot, src) in inst.sources().into_iter().enumerate() {
            if let Some(s) = src {
                if let RenameRef::Rob(p, pseq) = self.map.lookup(s) {
                    // A stale reference (slot reused) means the producer
                    // committed: the value is architectural and ready.
                    if self.rob.get(p).is_some_and(|e| e.seq == pseq && !e.completed) {
                        waits[slot] = Some(p);
                    }
                }
            }
        }
        if let Some(d) = dest {
            let old = self.map.define(d, id, seq);
            self.rob.get_mut(id).expect("just allocated").old_map = old;
        }
        waits
    }

    fn enter_code_reuse(&mut self) {
        self.gated = true;
        self.gate_on_cycle = self.now;
        if self.tracing {
            self.drain_ctl_events();
            self.sink.record(TraceEvent::new(self.now, EventKind::GateOn));
        }
        // Instructions already fetched past the loop-end branch duplicate
        // what the queue will supply: flush them.
        self.fetch_queue.clear();
        self.decode_buf.clear();
        self.fetch_halted = false;
        self.reuse_ptr = 0;
    }

    // ---- Code Reuse supply (§2.4) ----

    fn reuse_supply(&mut self) -> Result<(), SimError> {
        for _ in 0..self.cfg.issue_width {
            if self.halt_dispatched || self.rob.is_full() {
                break;
            }
            // Called once per supplied instruction: each call re-walks the
            // classified bitmap and allocates a fresh position vector (a
            // known redundancy this counter exists to expose).
            let classified = self.iq.classified_positions();
            self.metrics
                .add(SimCounter::IqScanVisits, (self.iq.scan_words() + classified.len()) as u64);
            self.metrics.add(SimCounter::AllocEvents, 1);
            if classified.is_empty() {
                // Defensive: nothing left to reuse (should not happen —
                // recovery is the architected exit).
                self.exit_code_reuse();
                break;
            }
            if self.reuse_ptr >= classified.len() {
                self.reuse_ptr = 0;
            }
            let pos = classified[self.reuse_ptr];
            let (pc, inst, issued, lrl) = {
                let e = &self.iq.entries()[pos];
                (e.pc, e.inst, e.issued, e.lrl)
            };
            if !issued {
                break; // the previous instance has not issued yet
            }
            if inst.is_mem() && self.lsq.is_full() {
                break;
            }
            let seq = self.seq;
            self.seq += 1;
            let (done, undo) = self.execute_speculative(&inst, pc)?;
            let actual_next = done.flow.next_pc(pc);
            let predicted_next =
                lrl.and_then(|l| l.static_next).unwrap_or_else(|| pc.wrapping_add(4));
            let mispredicted =
                !matches!(done.flow, ControlFlow::Halt) && actual_next != predicted_next;
            let dest = inst.dest();
            let entry = RobEntry {
                seq,
                pc,
                inst,
                dest,
                old_map: RenameRef::Arch,
                completed: false,
                flow: done.flow,
                mem: done.mem,
                predicted_next,
                actual_next,
                mispredicted,
                undo,
                reused: true,
                wrong_path: self.unresolved_mispredicts > 0,
            };
            let id = self.rob.alloc(entry).expect("checked ROB space");
            let waits = self.rename(&inst, dest, id, seq);
            if mispredicted {
                self.unresolved_mispredicts += 1;
            }
            if let Some(m) = done.mem {
                self.lsq.push(id, seq, m.is_store, m.addr, m.width);
                self.act.add(Component::Lsq, 1);
            }
            if inst == Inst::Halt {
                self.halt_dispatched = true;
            }
            // Only register identifiers and the ROB pointer are rewritten
            // in the queue entry — the paper's partial update.
            let pred_ready = self.pred_ready_for(&waits);
            self.iq.reuse_at(pos, id, seq, waits, pred_ready);
            self.act.add(Component::RenameTable, 1);
            self.act.add(Component::Rob, 1);
            self.act.add(Component::ReuseCtl, 1);
            self.stats.dispatched += 1;
            self.ctl.stats.reused_insts += 1;
            self.reuse_ptr += 1;
            if self.reuse_ptr >= classified.len() {
                // The unidirectional scan hit the end of the buffered
                // region; the pointer resets and the next supply group
                // starts next cycle (a wrapped window cannot be read in
                // one scan — this is why the paper prefers buffering many
                // iterations, §2.2.1: fewer wraps per loop trip).
                self.reuse_ptr = 0;
                break;
            }
        }
        Ok(())
    }

    fn exit_code_reuse(&mut self) {
        if self.ctl.on_recovery() {
            self.iq.clear_classification();
        }
        if self.tracing {
            self.drain_ctl_events();
            if self.gated {
                self.sink.record(TraceEvent::new(
                    self.now,
                    EventKind::GateOff {
                        span: self.now - self.gate_on_cycle,
                        reason: GateEndReason::Drained,
                    },
                ));
            }
        }
        self.gated = false;
        self.reuse_ptr = 0;
        // Resume fetching at the next architectural PC: the youngest
        // in-flight instruction's successor.
        if let Some(y) = self.rob.youngest() {
            self.fetch_pc = self.rob.get(y).expect("youngest live").actual_next;
        }
        self.fetch_ready_at = self.now + 1;
    }

    // ---- decode ----

    fn decode(&mut self) {
        if self.gated {
            return;
        }
        let cap = (2 * self.cfg.decode_width) as usize;
        for _ in 0..self.cfg.decode_width {
            if self.decode_buf.len() >= cap {
                break;
            }
            let Some(f) = self.fetch_queue.pop_front() else { break };
            self.act.add(Component::Decode, 1);
            self.decode_buf.push_back(f);
        }
    }

    // ---- fetch ----

    fn fetch(&mut self) -> Result<(), SimError> {
        if self.gated || self.fetch_halted || self.now < self.fetch_ready_at {
            return Ok(());
        }
        if self.fetch_queue.len() >= self.cfg.fetch_queue as usize {
            return Ok(());
        }
        if !self.program.contains_pc(self.fetch_pc) {
            // Off the text segment: only reachable on a wrong path; stall
            // until the mispredicted branch redirects us.
            return Ok(());
        }
        let l2_misses_before = if self.tracing { self.hier.stats().l2.misses } else { 0 };
        let lat = self.hier.fetch_latency(self.fetch_pc);
        if lat > self.cfg.mem.il1.hit_latency {
            if self.tracing {
                self.record_cache_miss(CacheLevel::L1I, self.fetch_pc, lat, l2_misses_before);
            }
            self.fetch_ready_at = self.now + lat;
            return Ok(());
        }
        let mut pc = self.fetch_pc;
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_queue.len() >= self.cfg.fetch_queue as usize {
                break;
            }
            let Some(word) = self.program.word_at(pc) else { break };
            let Ok(inst) = Inst::decode(word) else {
                if self.unresolved_mispredicts == 0 {
                    return Err(SimError::Decode { pc });
                }
                break; // wrong path into garbage: stall until recovery
            };
            self.stats.fetched += 1;
            let mut predicted_next = pc.wrapping_add(4);
            if let Some(kind) = inst.ctrl_kind() {
                let pred = self.bp.predict(pc, kind, inst.static_target(pc));
                if kind == CtrlKind::CondBranch {
                    self.act.add(Component::BpredDir, 1);
                }
                self.act.add(Component::Btb, 1);
                if matches!(kind, CtrlKind::Call | CtrlKind::IndirectCall | CtrlKind::Return) {
                    self.act.add(Component::Ras, 1);
                }
                if pred.taken {
                    if let Some(t) = pred.target {
                        predicted_next = t;
                    }
                }
            }
            self.act.add(Component::FetchQueue, 1);
            self.fetch_queue.push_back(Fetched { pc, inst, predicted_next });
            if inst == Inst::Halt {
                self.fetch_halted = true;
                pc = predicted_next;
                break;
            }
            let redirected = predicted_next != pc.wrapping_add(4);
            pc = predicted_next;
            if redirected {
                break; // taken transfer ends this cycle's fetch group
            }
        }
        self.fetch_pc = pc;
        Ok(())
    }

    /// Formats the stuck state for [`SimError::Deadlock`].
    ///
    /// The dump leads with the last-committed pc and the reuse-FSM state so
    /// a fuzz failure is diagnosable from the report alone: the pc localizes
    /// the stall in the program, the FSM state tells whether the front-end
    /// was gated when progress stopped.
    fn deadlock_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        match self.last_commit_pc {
            Some(pc) => {
                let _ = write!(s, "last_commit_pc={pc:#x} ");
            }
            None => s.push_str("last_commit_pc=none "),
        }
        let _ = write!(
            s,
            "reuse_fsm={:?} gated={} rob={}/{} iq={}/{} lsq={} fetchq={} decbuf={} events={} \
             unresolved_mispredicts={} halt_dispatched={}",
            self.ctl.state(),
            self.gated,
            self.rob.len(),
            self.rob.capacity(),
            self.iq.len(),
            self.cfg.iq_entries,
            self.lsq.len(),
            self.fetch_queue.len(),
            self.decode_buf.len(),
            self.events.len(),
            self.unresolved_mispredicts,
            self.halt_dispatched,
        );
        if let Some(id) = self.rob.oldest() {
            let e = self.rob.get(id).expect("oldest live");
            let _ = write!(
                s,
                "; rob head: seq={} pc={:#x} {} completed={} reused={}",
                e.seq,
                e.pc,
                riq_isa::disassemble(&e.inst, e.pc),
                e.completed,
                e.reused
            );
        }
        for (i, e) in self.iq.entries().iter().enumerate().take(6) {
            let _ = write!(
                s,
                "; iq[{i}]: seq={} pc={:#x} {} waits={:?} issued={} class={}",
                e.seq,
                e.pc,
                riq_isa::disassemble(&e.inst, e.pc),
                e.waits,
                e.issued,
                e.classification
            );
        }
        // Profiled runs get the full registry snapshot in the same
        // artifact, so a hang is diagnosable without a re-run.
        if self.metrics.is_enabled() {
            let _ = write!(s, "; {}", self.metrics_snapshot().render_sim());
        } else {
            s.push_str("; metrics: disabled");
        }
        s
    }

    /// Emits an L1 miss event, plus an L2 miss event when the hierarchy's
    /// L2 miss counter moved during the same access.
    fn record_cache_miss(
        &mut self,
        level: CacheLevel,
        addr: u32,
        latency: u64,
        l2_misses_before: u64,
    ) {
        let addr = u64::from(addr);
        self.sink.record(TraceEvent::new(self.now, EventKind::CacheMiss { level, addr, latency }));
        if self.hier.stats().l2.misses > l2_misses_before {
            self.sink.record(TraceEvent::new(
                self.now,
                EventKind::CacheMiss { level: CacheLevel::L2, addr, latency },
            ));
        }
    }

    // ---- per-cycle accounting ----

    fn end_cycle_accounting(&mut self) {
        // Memory-structure activity comes from hierarchy counter deltas so
        // every access path (fills, write-backs) is captured in one place.
        let h = self.hier.stats();
        let d = |a: u64, b: u64| (a - b) as u32;
        self.act.add(Component::Icache, d(h.il1.accesses(), self.prev_hier.il1.accesses()));
        self.act.add(Component::Itlb, d(h.itlb.accesses(), self.prev_hier.itlb.accesses()));
        self.act.add(Component::Dcache, d(h.dl1.accesses(), self.prev_hier.dl1.accesses()));
        self.act.add(Component::Dtlb, d(h.dtlb.accesses(), self.prev_hier.dtlb.accesses()));
        self.act.add(Component::L2, d(h.l2.accesses(), self.prev_hier.l2.accesses()));
        self.prev_hier = h;

        let iq_act = self.iq.take_activity();
        self.act.add(Component::IqInsert, iq_act.inserts);
        self.act.add(Component::IqWakeup, 0); // counted at broadcast
        self.act.add(Component::IqIssueRead, iq_act.issue_reads);
        self.act.add(Component::IqPartialUpdate, iq_act.partial_updates);
        self.act.add(Component::IqCollapse, iq_act.collapse_moves);
        self.act.add(Component::Lrl, iq_act.lrl_accesses);

        let (searches, inserts) = self.ctl.nblt_activity();
        self.act.add(Component::Nblt, (searches + inserts) as u32);
        if self.ctl.state() != IqState::Normal {
            self.act.add(Component::ReuseCtl, 1);
        }

        self.power.end_cycle(&self.act, self.gated);
        self.act.clear();
        self.stats.cycles += 1;
        self.metrics.observe_iq_occupancy(self.iq.len() as u64);
        self.stats.iq_occupancy_sum += self.iq.len() as u64;
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        if self.gated {
            self.stats.gated_cycles += 1;
        }
        if self.tracing {
            self.drain_ctl_events();
            let now_counts = [
                self.stats.fetched,
                self.stats.dispatched,
                self.stats.issued,
                self.stats.committed,
            ];
            self.sink.record(TraceEvent::new(
                self.now,
                EventKind::PipelineSample {
                    fetched: now_counts[0] - self.prev_sample[0],
                    dispatched: now_counts[1] - self.prev_sample[1],
                    issued: now_counts[2] - self.prev_sample[2],
                    committed: now_counts[3] - self.prev_sample[3],
                    iq_occupancy: self.iq.len() as u64,
                    rob_occupancy: self.rob.len() as u64,
                },
            ));
            self.prev_sample = now_counts;
        }
        if let Some(len) = self.epoch_len {
            if self.stats.cycles - self.epoch_start >= len {
                self.close_epoch();
            }
        }

        debug_assert!(self.iq.check_invariants(), "issue-queue invariant violated");
        debug_assert!(
            !self.gated || self.ctl.state() == IqState::CodeReuse,
            "gating implies Code Reuse state"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    fn tight_loop() -> Program {
        assemble(
            "  li $r2, 50\nloop:\n  add $r3, $r3, $r2\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        )
        .unwrap()
    }

    /// The watchdog dump must stay diagnosable from the report alone:
    /// last-committed pc first, then the reuse-FSM state, then occupancy.
    #[test]
    fn deadlock_dump_reports_pc_and_fsm_state() {
        let cfg = SimConfig::baseline().with_reuse(true);
        let program = tight_loop();
        let mut sink = NullSink;
        let mut core = Core::new(&cfg, &program, &mut sink, None).unwrap();

        // Before anything commits the dump must say so explicitly.
        let dump = core.deadlock_dump();
        assert!(dump.starts_with("last_commit_pc=none "), "{dump}");

        // Drive until at least one instruction commits, then re-dump.
        while core.stats.committed == 0 && !core.done {
            core.cycle().unwrap();
        }
        let dump = core.deadlock_dump();
        assert!(dump.starts_with("last_commit_pc=0x"), "{dump}");
        assert!(dump.contains(" reuse_fsm="), "{dump}");
        assert!(dump.contains(" gated="), "{dump}");
        assert!(dump.contains(" rob="), "{dump}");
        // The reported pc is a real text address of the program.
        let pc = dump
            .strip_prefix("last_commit_pc=")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|hex| u32::from_str_radix(hex.trim_start_matches("0x"), 16).ok())
            .unwrap();
        assert!(
            pc >= program.text_base() && pc < program.text_base() + 4 * program.text_len() as u32,
            "pc {pc:#x} inside text"
        );
    }

    /// The FSM state string in the dump reflects the live controller, so a
    /// report taken mid-reuse names the `CodeReuse` state.
    #[test]
    fn deadlock_dump_names_reuse_state_mid_reuse() {
        let cfg = SimConfig::baseline().with_reuse(true);
        let program = tight_loop();
        let mut sink = NullSink;
        let mut core = Core::new(&cfg, &program, &mut sink, None).unwrap();
        let mut saw_reuse_dump = false;
        while !core.done {
            core.cycle().unwrap();
            if core.ctl.state() == IqState::CodeReuse {
                let dump = core.deadlock_dump();
                assert!(dump.contains("reuse_fsm=CodeReuse"), "{dump}");
                saw_reuse_dump = true;
                break;
            }
        }
        assert!(saw_reuse_dump, "tight loop must enter CodeReuse under reuse config");
    }

    /// The injected restore fault is off by default and visible when armed.
    #[test]
    fn fault_switch_defaults_off() {
        assert!(!crate::fault::skip_restore_r9());
    }

    /// An unprofiled run carries no metrics; a profiled run of the same
    /// program carries a snapshot whose mirrors agree with the stats and
    /// whose visit counters actually moved.
    #[test]
    fn profiled_run_attaches_a_consistent_snapshot() {
        let cfg = SimConfig::baseline().with_reuse(true);
        let program = tight_loop();
        let proc = Processor::new(cfg);
        let plain = proc.run(&program).unwrap();
        assert!(plain.metrics.is_none());
        let profiled =
            proc.run_profiled(&program, &mut NullSink, None, ProfileConfig::default()).unwrap();
        let m = profiled.metrics.expect("profiled run attaches metrics");
        assert_eq!(m.get(SimCounter::Cycles), profiled.stats.cycles);
        assert_eq!(m.get(SimCounter::Committed), profiled.stats.committed);
        assert_eq!(m.get(SimCounter::ReusedInsts), profiled.stats.reuse.reused_insts);
        assert!(m.get(SimCounter::IqScanVisits) > 0, "issue scans every cycle");
        assert!(m.get(SimCounter::IqWakeupVisits) > 0);
        assert!(m.get(SimCounter::AllocEvents) > 0);
        assert!(m.iq_occupancy.total() == profiled.stats.cycles);
        assert!(m.stage_samples > 0, "default sampling must time some cycles");
        // Timing counters are host noise, but architecture must not move:
        // the profiled run is the same simulation.
        assert_eq!(profiled.stats.cycles, plain.stats.cycles);
        assert_eq!(profiled.mem_digest, plain.mem_digest);
    }

    /// Satellite: the watchdog dump includes the registry snapshot for
    /// profiled runs and says so explicitly when metrics are off.
    #[test]
    fn deadlock_dump_includes_metrics_snapshot_when_profiling() {
        let cfg = SimConfig::baseline().with_reuse(true);
        let program = tight_loop();
        let mut sink = NullSink;
        let mut core = Core::new(&cfg, &program, &mut sink, None).unwrap();
        assert!(core.deadlock_dump().ends_with("metrics: disabled"));
        core.metrics = Registry::profiling(ProfileConfig::default());
        for _ in 0..20 {
            core.cycle().unwrap();
        }
        let dump = core.deadlock_dump();
        assert!(dump.contains("; metrics: cycles=20"), "{dump}");
        assert!(dump.contains("iq_scan_visits="), "{dump}");
    }
}
