//! The load/store queue.
//!
//! Holds memory operations in program order. Addresses are known when an
//! operation enters (computed at dispatch-time functional execution, as in
//! `sim-outorder`), so disambiguation is exact: a load that overlaps an
//! older incomplete store waits for it and then forwards in one cycle; a
//! load with no conflict accesses the data cache.

use crate::rob::RobId;
use std::collections::VecDeque;

/// One queued memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsqEntry {
    /// Owning ROB slot.
    pub rob: RobId,
    /// Age.
    pub seq: u64,
    /// Store (true) or load.
    pub is_store: bool,
    /// Effective byte address.
    pub addr: u32,
    /// Width in bytes.
    pub width: u32,
    /// Whether the owning instruction has completed (result written back).
    pub completed: bool,
}

impl LsqEntry {
    /// Whether two accesses overlap in memory.
    #[must_use]
    pub fn overlaps(&self, addr: u32, width: u32) -> bool {
        let a0 = u64::from(self.addr);
        let a1 = a0 + u64::from(self.width);
        let b0 = u64::from(addr);
        let b1 = b0 + u64::from(width);
        a0 < b1 && b0 < a1
    }
}

/// What a load sees when it checks for older-store conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreConflict {
    /// No older store overlaps: access the cache.
    None,
    /// The youngest overlapping older store has completed: forward from it.
    ForwardReady,
    /// The youngest overlapping older store is still incomplete: retry.
    Wait,
}

/// The load/store queue.
///
/// # Examples
///
/// ```
/// use riq_core::{Lsq, StoreConflict};
/// let mut lsq = Lsq::new(4);
/// lsq.push(0, 0, true, 0x1000, 4);
/// lsq.push(1, 1, false, 0x1000, 4);
/// assert_eq!(lsq.check_load(1, 1), StoreConflict::Wait);
/// lsq.mark_completed(0, 0);
/// assert_eq!(lsq.check_load(1, 1), StoreConflict::ForwardReady);
/// ```
#[derive(Debug, Clone)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    capacity: usize,
    /// Store-to-load forwards performed (activity/stat).
    pub forwards: u64,
}

impl Lsq {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u32) -> Lsq {
        assert!(capacity > 0, "LSQ capacity must be non-zero");
        Lsq { entries: VecDeque::new(), capacity: capacity as usize, forwards: 0 }
    }

    /// Occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Appends a memory operation in program order.
    ///
    /// # Panics
    ///
    /// Panics when full (the dispatcher checks [`Lsq::is_full`] first).
    pub fn push(&mut self, rob: RobId, seq: u64, is_store: bool, addr: u32, width: u32) {
        assert!(!self.is_full(), "LSQ overflow");
        debug_assert!(
            self.entries.back().is_none_or(|e| e.seq < seq),
            "LSQ must be pushed in program order"
        );
        self.entries.push_back(LsqEntry { rob, seq, is_store, addr, width, completed: false });
    }

    /// Marks the operation owned by `(rob, seq)` completed.
    pub fn mark_completed(&mut self, rob: RobId, seq: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.rob == rob && e.seq == seq) {
            e.completed = true;
        }
    }

    /// Checks the load `(rob, seq)` against older stores.
    #[must_use]
    pub fn check_load(&self, rob: RobId, seq: u64) -> StoreConflict {
        let Some(load) = self.entries.iter().find(|e| e.rob == rob && e.seq == seq) else {
            return StoreConflict::None;
        };
        // Scan older stores youngest-first; the first overlap decides.
        for e in self.entries.iter().rev() {
            if e.seq >= seq || !e.is_store {
                continue;
            }
            if e.overlaps(load.addr, load.width) {
                return if e.completed { StoreConflict::ForwardReady } else { StoreConflict::Wait };
            }
        }
        StoreConflict::None
    }

    /// Records a performed forward (activity counter).
    pub fn count_forward(&mut self) {
        self.forwards += 1;
    }

    /// Removes the oldest entry if it belongs to `(rob, seq)` (commit).
    pub fn pop_if_front(&mut self, rob: RobId, seq: u64) {
        if self.entries.front().is_some_and(|e| e.rob == rob && e.seq == seq) {
            self.entries.pop_front();
        }
    }

    /// Removes the entry owned by `(rob, seq)` wherever it is (squash).
    pub fn remove(&mut self, rob: RobId, seq: u64) -> bool {
        if let Some(idx) = self.entries.iter().position(|e| e.rob == rob && e.seq == seq) {
            self.entries.remove(idx);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_geometry() {
        let e =
            LsqEntry { rob: 0, seq: 0, is_store: true, addr: 0x1000, width: 4, completed: false };
        assert!(e.overlaps(0x1000, 4));
        assert!(e.overlaps(0x0ffc, 8), "wide double overlapping the word");
        assert!(!e.overlaps(0x1004, 4));
        assert!(!e.overlaps(0x0ffc, 4));
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut lsq = Lsq::new(8);
        lsq.push(0, 0, true, 0x100, 4); // older store, completed
        lsq.push(1, 1, true, 0x100, 4); // younger store, incomplete
        lsq.push(2, 2, false, 0x100, 4); // the load
        lsq.mark_completed(0, 0);
        assert_eq!(lsq.check_load(2, 2), StoreConflict::Wait, "youngest conflicting store rules");
        lsq.mark_completed(1, 1);
        assert_eq!(lsq.check_load(2, 2), StoreConflict::ForwardReady);
    }

    #[test]
    fn younger_stores_do_not_block() {
        let mut lsq = Lsq::new(8);
        lsq.push(0, 0, false, 0x100, 4); // the load (oldest)
        lsq.push(1, 1, true, 0x100, 4); // younger store
        assert_eq!(lsq.check_load(0, 0), StoreConflict::None);
    }

    #[test]
    fn disjoint_addresses_do_not_conflict() {
        let mut lsq = Lsq::new(8);
        lsq.push(0, 0, true, 0x200, 4);
        lsq.push(1, 1, false, 0x100, 4);
        assert_eq!(lsq.check_load(1, 1), StoreConflict::None);
    }

    #[test]
    fn commit_and_squash_removal() {
        let mut lsq = Lsq::new(4);
        lsq.push(0, 0, true, 0x100, 4);
        lsq.push(1, 1, false, 0x104, 4);
        lsq.pop_if_front(1, 1); // not the front: no-op
        assert_eq!(lsq.len(), 2);
        lsq.pop_if_front(0, 0);
        assert_eq!(lsq.len(), 1);
        assert!(lsq.remove(1, 1));
        assert!(lsq.is_empty());
        assert!(!lsq.remove(1, 1));
    }

    #[test]
    #[should_panic(expected = "LSQ overflow")]
    fn overflow_panics() {
        let mut lsq = Lsq::new(1);
        lsq.push(0, 0, false, 0, 4);
        lsq.push(1, 1, false, 4, 4);
    }
}
