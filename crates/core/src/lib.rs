//! # riq-core — the out-of-order core with the reuse-capable issue queue
//!
//! The paper's contribution and the pipeline that hosts it, in one crate:
//! a cycle-level 4-wide out-of-order superscalar (fetch → decode → rename →
//! issue → execute → writeback → commit, MIPS-R10000-style with a unified
//! issue queue and a separate ROB) whose issue queue can **detect tight
//! loops, buffer them, and then re-supply the buffered instructions
//! itself** while the whole pipeline front-end is clock-gated.
//!
//! The reuse machinery (all of §2 of the paper):
//!
//! * loop detection on backward branches/jumps whose span fits the queue,
//!   with the `R_loophead`/`R_looptail` registers;
//! * the 2-bit state machine Normal → Loop Buffering → Code Reuse;
//! * per-entry *classification* and *issue-state* bits; a collapsing queue
//!   where buffered instructions stay put after issue;
//! * the Logical Register List and the unidirectional *reuse pointer* that
//!   re-renames issued buffered instructions in program order with only a
//!   partial entry update;
//! * multi-iteration buffering (automatic unrolling) with the
//!   iteration-size counter, procedure-call handling, and the 8-entry
//!   Non-Bufferable Loop Table;
//! * static in-loop branch prediction with post-execution verification and
//!   conventional misprediction recovery back to Normal state.
//!
//! Set [`SimConfig::with_reuse`]`(false)` (the default) and the very same
//! pipeline is the conventional baseline the paper compares against.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_asm::assemble;
//! use riq_core::{Processor, SimConfig};
//!
//! let program = assemble(
//!     r#"
//!         li $r2, 2000
//!     loop:
//!         add  $r3, $r3, $r2
//!         addi $r2, $r2, -1
//!         bne  $r2, $r0, loop
//!         halt
//!     "#,
//! )?;
//! let baseline = Processor::new(SimConfig::baseline()).run(&program)?;
//! let reuse = Processor::new(SimConfig::baseline().with_reuse(true)).run(&program)?;
//! // Architecturally invisible...
//! assert_eq!(baseline.arch_state, reuse.arch_state);
//! // ...but the front-end was gated for most of the run.
//! assert!(reuse.stats.gated_rate() > 0.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
#[doc(hidden)]
pub mod fault;
mod fu;
mod iq;
mod lsq;
mod pipeline;
mod policy;
mod rename;
mod reuse;
mod rob;
mod specstate;
mod stats;

pub use config::{BufferingStrategy, ConfigError, FuConfig, LatencyConfig, ReuseConfig, SimConfig};
pub use fu::{exec_latency, fu_class, FuClass, FuPool};
pub use iq::{IqActivity, IqEntry, IssueQueue, LrlRecord};
pub use lsq::{Lsq, LsqEntry, StoreConflict};
pub use pipeline::{Processor, SimError};
pub use policy::{Baseline, IssuePolicy, IssuePolicyKind, LoadDelay};
pub use rename::RenameMap;
pub use reuse::{Directive, IqState, Nblt, ReuseController};
pub use riq_metrics::{MetricsSnapshot, ProfileConfig};
pub use rob::{RenameRef, Rob, RobEntry, RobId};
pub use specstate::{SpecState, UndoRecord};
pub use stats::{EpochSample, ReuseStats, RunResult, SimStats};
