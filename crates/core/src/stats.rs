//! Run statistics and the result bundle returned by a simulation.

use riq_emu::ArchState;
use riq_power::PowerReport;

/// Reuse-mechanism counters (§2 and §3 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Capturable loops detected at decode.
    pub loops_detected: u64,
    /// Loop detections suppressed by an NBLT hit.
    pub nblt_hits: u64,
    /// Loops registered as non-bufferable.
    pub nblt_inserts: u64,
    /// Times the queue entered Loop Buffering.
    pub bufferings_started: u64,
    /// Bufferings revoked before reaching Code Reuse.
    pub bufferings_revoked: u64,
    /// Promotions from Loop Buffering to Code Reuse.
    pub code_reuse_entries: u64,
    /// Whole iterations buffered across all bufferings.
    pub iterations_buffered: u64,
    /// Instructions supplied by the issue queue in Code Reuse state.
    pub reused_insts: u64,
}

impl ReuseStats {
    /// Fraction of started bufferings that were revoked.
    #[must_use]
    pub fn revoke_rate(&self) -> f64 {
        if self.bufferings_started == 0 {
            0.0
        } else {
            self.bufferings_revoked as f64 / self.bufferings_started as f64
        }
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulated cycles until `halt` committed.
    pub cycles: u64,
    /// Committed (architecturally retired) instructions.
    pub committed: u64,
    /// Instructions fetched (including wrong path).
    pub fetched: u64,
    /// Instructions dispatched into the window (including wrong path and
    /// reuse-supplied instructions).
    pub dispatched: u64,
    /// Instructions issued to function units.
    pub issued: u64,
    /// Instructions squashed by misprediction recovery.
    pub squashed: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Control transfers that caused a misprediction recovery.
    pub mispredictions: u64,
    /// Cycles with the pipeline front-end gated (Figure 5's numerator).
    pub gated_cycles: u64,
    /// Sum over cycles of occupied issue-queue entries (for
    /// [`SimStats::avg_iq_occupancy`]).
    pub iq_occupancy_sum: u64,
    /// Sum over cycles of occupied ROB entries.
    pub rob_occupancy_sum: u64,
    /// Reuse-mechanism counters.
    pub reuse: ReuseStats,
}

impl SimStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of total cycles with the front-end gated (Figure 5).
    #[must_use]
    pub fn gated_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.gated_cycles as f64 / self.cycles as f64
        }
    }

    /// Average issue-queue occupancy in entries (the paper's §3
    /// "non-fully utilized issue queue" discussion for btrix).
    #[must_use]
    pub fn avg_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Average reorder-buffer occupancy in entries.
    #[must_use]
    pub fn avg_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Misprediction-recovery rate per resolved conditional branch.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }
}

/// Everything a simulation returns.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Timing and event counters.
    pub stats: SimStats,
    /// Per-component energy report.
    pub power: PowerReport,
    /// Final architectural register file (for differential testing).
    pub arch_state: ArchState,
    /// Digest of the final memory content (for differential testing).
    pub mem_digest: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 200,
            committed: 300,
            gated_cycles: 50,
            branches: 10,
            mispredictions: 2,
            ..SimStats::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.gated_rate() - 0.25).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_run_is_not_a_division_error() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.gated_rate(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.reuse.revoke_rate(), 0.0);
    }

    #[test]
    fn revoke_rate() {
        let r = ReuseStats { bufferings_started: 10, bufferings_revoked: 4, ..Default::default() };
        assert!((r.revoke_rate() - 0.4).abs() < 1e-12);
    }
}
