//! Run statistics and the result bundle returned by a simulation.

use riq_bpred::BpredStats;
use riq_emu::ArchState;
use riq_mem::HierarchyStats;
use riq_power::PowerReport;
use riq_trace::{JsonValue, ToJson};
use std::ops::Sub;

/// Reuse-mechanism counters (§2 and §3 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Capturable loops detected at decode.
    pub loops_detected: u64,
    /// Loop detections suppressed by an NBLT hit.
    pub nblt_hits: u64,
    /// Loops registered as non-bufferable.
    pub nblt_inserts: u64,
    /// Times the queue entered Loop Buffering.
    pub bufferings_started: u64,
    /// Bufferings revoked before reaching Code Reuse.
    pub bufferings_revoked: u64,
    /// Promotions from Loop Buffering to Code Reuse.
    pub code_reuse_entries: u64,
    /// Whole iterations buffered across all bufferings.
    pub iterations_buffered: u64,
    /// Instructions supplied by the issue queue in Code Reuse state.
    pub reused_insts: u64,
}

impl ReuseStats {
    /// Fraction of started bufferings that were revoked.
    #[must_use]
    pub fn revoke_rate(&self) -> f64 {
        if self.bufferings_started == 0 {
            0.0
        } else {
            self.bufferings_revoked as f64 / self.bufferings_started as f64
        }
    }
}

impl Sub for ReuseStats {
    type Output = ReuseStats;

    /// Counter-wise saturating difference (for epoch deltas).
    fn sub(self, rhs: ReuseStats) -> ReuseStats {
        ReuseStats {
            loops_detected: self.loops_detected.saturating_sub(rhs.loops_detected),
            nblt_hits: self.nblt_hits.saturating_sub(rhs.nblt_hits),
            nblt_inserts: self.nblt_inserts.saturating_sub(rhs.nblt_inserts),
            bufferings_started: self.bufferings_started.saturating_sub(rhs.bufferings_started),
            bufferings_revoked: self.bufferings_revoked.saturating_sub(rhs.bufferings_revoked),
            code_reuse_entries: self.code_reuse_entries.saturating_sub(rhs.code_reuse_entries),
            iterations_buffered: self.iterations_buffered.saturating_sub(rhs.iterations_buffered),
            reused_insts: self.reused_insts.saturating_sub(rhs.reused_insts),
        }
    }
}

impl ToJson for ReuseStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("loops_detected", self.loops_detected.to_json()),
            ("nblt_hits", self.nblt_hits.to_json()),
            ("nblt_inserts", self.nblt_inserts.to_json()),
            ("bufferings_started", self.bufferings_started.to_json()),
            ("bufferings_revoked", self.bufferings_revoked.to_json()),
            ("code_reuse_entries", self.code_reuse_entries.to_json()),
            ("iterations_buffered", self.iterations_buffered.to_json()),
            ("reused_insts", self.reused_insts.to_json()),
            ("revoke_rate", self.revoke_rate().to_json()),
        ])
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulated cycles until `halt` committed.
    pub cycles: u64,
    /// Committed (architecturally retired) instructions.
    pub committed: u64,
    /// Instructions fetched (including wrong path).
    pub fetched: u64,
    /// Instructions dispatched into the window (including wrong path and
    /// reuse-supplied instructions).
    pub dispatched: u64,
    /// Instructions issued to function units.
    pub issued: u64,
    /// Instructions squashed by misprediction recovery.
    pub squashed: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Control transfers that caused a misprediction recovery.
    pub mispredictions: u64,
    /// Cycles with the pipeline front-end gated (Figure 5's numerator).
    pub gated_cycles: u64,
    /// Sum over cycles of occupied issue-queue entries (for
    /// [`SimStats::avg_iq_occupancy`]).
    pub iq_occupancy_sum: u64,
    /// Sum over cycles of occupied ROB entries.
    pub rob_occupancy_sum: u64,
    /// Reuse-mechanism counters.
    pub reuse: ReuseStats,
}

impl SimStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of total cycles with the front-end gated (Figure 5).
    #[must_use]
    pub fn gated_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.gated_cycles as f64 / self.cycles as f64
        }
    }

    /// Average issue-queue occupancy in entries (the paper's §3
    /// "non-fully utilized issue queue" discussion for btrix).
    #[must_use]
    pub fn avg_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Average reorder-buffer occupancy in entries.
    #[must_use]
    pub fn avg_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Misprediction-recovery rate per resolved conditional branch.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }
}

impl Sub for SimStats {
    type Output = SimStats;

    /// Counter-wise saturating difference: `epoch_end - epoch_start` yields
    /// the activity within the epoch.
    fn sub(self, rhs: SimStats) -> SimStats {
        SimStats {
            cycles: self.cycles.saturating_sub(rhs.cycles),
            committed: self.committed.saturating_sub(rhs.committed),
            fetched: self.fetched.saturating_sub(rhs.fetched),
            dispatched: self.dispatched.saturating_sub(rhs.dispatched),
            issued: self.issued.saturating_sub(rhs.issued),
            squashed: self.squashed.saturating_sub(rhs.squashed),
            branches: self.branches.saturating_sub(rhs.branches),
            mispredictions: self.mispredictions.saturating_sub(rhs.mispredictions),
            gated_cycles: self.gated_cycles.saturating_sub(rhs.gated_cycles),
            iq_occupancy_sum: self.iq_occupancy_sum.saturating_sub(rhs.iq_occupancy_sum),
            rob_occupancy_sum: self.rob_occupancy_sum.saturating_sub(rhs.rob_occupancy_sum),
            reuse: self.reuse - rhs.reuse,
        }
    }
}

impl ToJson for SimStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("cycles", self.cycles.to_json()),
            ("committed", self.committed.to_json()),
            ("fetched", self.fetched.to_json()),
            ("dispatched", self.dispatched.to_json()),
            ("issued", self.issued.to_json()),
            ("squashed", self.squashed.to_json()),
            ("branches", self.branches.to_json()),
            ("mispredictions", self.mispredictions.to_json()),
            ("gated_cycles", self.gated_cycles.to_json()),
            ("ipc", self.ipc().to_json()),
            ("gated_rate", self.gated_rate().to_json()),
            ("mispredict_rate", self.mispredict_rate().to_json()),
            ("avg_iq_occupancy", self.avg_iq_occupancy().to_json()),
            ("avg_rob_occupancy", self.avg_rob_occupancy().to_json()),
            ("reuse", self.reuse.to_json()),
        ])
    }
}

/// One epoch's worth of activity: the counter deltas between two cycle
/// boundaries (the final epoch of a run may be shorter than the period).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSample {
    /// Zero-based epoch index.
    pub index: u64,
    /// First cycle of the epoch (inclusive).
    pub start_cycle: u64,
    /// End of the epoch (exclusive; equals the next epoch's start).
    pub end_cycle: u64,
    /// Counter deltas over `[start_cycle, end_cycle)`.
    pub delta: SimStats,
}

impl ToJson for EpochSample {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("index", self.index.to_json()),
            ("start_cycle", self.start_cycle.to_json()),
            ("end_cycle", self.end_cycle.to_json()),
            ("delta", self.delta.to_json()),
        ])
    }
}

/// Everything a simulation returns.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Timing and event counters.
    pub stats: SimStats,
    /// Per-component energy report.
    pub power: PowerReport,
    /// Memory-hierarchy counters.
    pub mem: HierarchyStats,
    /// Branch-predictor counters.
    pub bpred: BpredStats,
    /// Epoch-delta samples (empty unless an epoch period was requested via
    /// [`Processor::run_observed`](crate::Processor::run_observed)).
    pub epochs: Vec<EpochSample>,
    /// Final architectural register file (for differential testing).
    pub arch_state: ArchState,
    /// Digest of the final memory content (for differential testing).
    pub mem_digest: u64,
    /// Self-profiling snapshot; `Some` only for runs driven with an
    /// enabled metrics registry
    /// ([`Processor::run_profiled`](crate::Processor::run_profiled)).
    pub metrics: Option<riq_metrics::MetricsSnapshot>,
}

impl ToJson for RunResult {
    fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("stats", self.stats.to_json()),
            ("mem", self.mem.to_json()),
            ("bpred", self.bpred.to_json()),
            ("power", self.power.to_json()),
            ("epochs", self.epochs.to_json()),
            ("mem_digest", self.mem_digest.to_json()),
        ];
        if let Some(m) = &self.metrics {
            pairs.push(("metrics", m.to_json()));
        }
        JsonValue::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 200,
            committed: 300,
            gated_cycles: 50,
            branches: 10,
            mispredictions: 2,
            ..SimStats::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.gated_rate() - 0.25).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_run_is_not_a_division_error() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.gated_rate(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.reuse.revoke_rate(), 0.0);
    }

    #[test]
    fn revoke_rate() {
        let r = ReuseStats { bufferings_started: 10, bufferings_revoked: 4, ..Default::default() };
        assert!((r.revoke_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn epoch_delta_subtraction() {
        let start = SimStats {
            cycles: 100,
            committed: 80,
            gated_cycles: 10,
            reuse: ReuseStats { reused_insts: 5, ..Default::default() },
            ..SimStats::default()
        };
        let end = SimStats {
            cycles: 250,
            committed: 300,
            gated_cycles: 60,
            reuse: ReuseStats { reused_insts: 45, ..Default::default() },
            ..SimStats::default()
        };
        let delta = end - start;
        assert_eq!(delta.cycles, 150);
        assert_eq!(delta.committed, 220);
        assert_eq!(delta.gated_cycles, 50);
        assert_eq!(delta.reuse.reused_insts, 40);
    }

    #[test]
    fn subtraction_saturates_instead_of_wrapping() {
        let small = SimStats { cycles: 1, ..SimStats::default() };
        let large = SimStats { cycles: 5, ..SimStats::default() };
        let delta = small - large;
        assert_eq!(delta.cycles, 0, "underflow clamps to zero");
        let r = ReuseStats { nblt_hits: 1, ..Default::default() };
        let r2 = ReuseStats { nblt_hits: 3, ..Default::default() };
        assert_eq!((r - r2).nblt_hits, 0);
    }

    #[test]
    fn consecutive_epoch_deltas_sum_to_the_total() {
        let mid = SimStats { cycles: 100, committed: 70, ..SimStats::default() };
        let end = SimStats { cycles: 240, committed: 200, ..SimStats::default() };
        let first = mid - SimStats::default();
        let second = end - mid;
        assert_eq!(first.cycles + second.cycles, end.cycles);
        assert_eq!(first.committed + second.committed, end.committed);
    }

    #[test]
    fn stats_json_includes_counters_and_rates() {
        let s = SimStats { cycles: 4, committed: 8, ..SimStats::default() };
        let j = s.to_json();
        assert_eq!(j.get("cycles").and_then(riq_trace::JsonValue::as_u64), Some(4));
        assert_eq!(j.get("ipc").and_then(riq_trace::JsonValue::as_f64), Some(2.0));
        assert!(j.get("reuse").is_some());
    }

    #[test]
    fn epoch_sample_json_shape() {
        let e = EpochSample {
            index: 2,
            start_cycle: 20_000,
            end_cycle: 30_000,
            delta: SimStats { cycles: 10_000, ..SimStats::default() },
        };
        let j = e.to_json();
        assert_eq!(j.get("index").and_then(riq_trace::JsonValue::as_u64), Some(2));
        let delta = j.get("delta").expect("delta object");
        assert_eq!(delta.get("cycles").and_then(riq_trace::JsonValue::as_u64), Some(10_000));
    }
}
