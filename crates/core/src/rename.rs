//! The register rename map.
//!
//! Maps each of the 64 logical registers (unified int+fp namespace) to its
//! current producer: either the committed architectural file or an
//! in-flight ROB slot. This is the structure the reuse issue queue drives
//! with logical register numbers read back from the Logical Register List
//! when it re-renames buffered instructions in program order (§2.4).

use crate::rob::{RenameRef, RobId};
use riq_isa::{ArchReg, NUM_ARCH_REGS};

/// The speculative rename map.
///
/// # Examples
///
/// ```
/// use riq_core::{RenameMap, RenameRef};
/// use riq_isa::{ArchReg, IntReg};
///
/// let mut map = RenameMap::new();
/// let r5 = ArchReg::Int(IntReg::new(5));
/// assert_eq!(map.lookup(r5), RenameRef::Arch);
/// let old = map.define(r5, 3, 42);
/// assert_eq!(old, RenameRef::Arch);
/// assert_eq!(map.lookup(r5), RenameRef::Rob(3, 42));
/// ```
#[derive(Debug, Clone)]
pub struct RenameMap {
    map: [RenameRef; NUM_ARCH_REGS],
}

impl Default for RenameMap {
    fn default() -> Self {
        RenameMap { map: [RenameRef::Arch; NUM_ARCH_REGS] }
    }
}

impl RenameMap {
    /// Creates a map with every register architectural.
    #[must_use]
    pub fn new() -> RenameMap {
        RenameMap::default()
    }

    /// Current producer of a logical register.
    #[must_use]
    pub fn lookup(&self, reg: ArchReg) -> RenameRef {
        self.map[reg.index()]
    }

    /// Points `reg` at a new producing ROB slot, returning the previous
    /// mapping (stored in the ROB entry for walk-back).
    pub fn define(&mut self, reg: ArchReg, producer: RobId, seq: u64) -> RenameRef {
        let old = self.map[reg.index()];
        self.map[reg.index()] = RenameRef::Rob(producer, seq);
        old
    }

    /// Restores a previous mapping during squash walk-back. The caller
    /// must have validated that a `Rob` reference still names a live
    /// producer (see [`RenameRef`]); a committed producer restores as
    /// [`RenameRef::Arch`].
    pub fn restore(&mut self, reg: ArchReg, old: RenameRef) {
        self.map[reg.index()] = old;
    }

    /// Called at commit: if `reg` still points at the committing instance,
    /// the value is now architectural.
    pub fn commit(&mut self, reg: ArchReg, committing: RobId, seq: u64) {
        if self.map[reg.index()] == RenameRef::Rob(committing, seq) {
            self.map[reg.index()] = RenameRef::Arch;
        }
    }

    /// Whether any register still references an in-flight producer.
    #[must_use]
    pub fn has_inflight(&self) -> bool {
        self.map.iter().any(|r| matches!(r, RenameRef::Rob(..)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_isa::{FpReg, IntReg};

    fn ir(n: u8) -> ArchReg {
        ArchReg::Int(IntReg::new(n))
    }
    fn fr(n: u8) -> ArchReg {
        ArchReg::Fp(FpReg::new(n))
    }

    #[test]
    fn define_chain_and_walk_back() {
        let mut map = RenameMap::new();
        let r = ir(7);
        let o1 = map.define(r, 10, 100);
        let o2 = map.define(r, 11, 101);
        assert_eq!(o1, RenameRef::Arch);
        assert_eq!(o2, RenameRef::Rob(10, 100));
        assert_eq!(map.lookup(r), RenameRef::Rob(11, 101));
        // Squash youngest-first: restore o2 then o1.
        map.restore(r, o2);
        assert_eq!(map.lookup(r), RenameRef::Rob(10, 100));
        map.restore(r, o1);
        assert_eq!(map.lookup(r), RenameRef::Arch);
    }

    #[test]
    fn commit_clears_only_matching_producer() {
        let mut map = RenameMap::new();
        let r = ir(3);
        map.define(r, 5, 50);
        map.define(r, 6, 60);
        map.commit(r, 5, 50); // stale producer commits; a newer one exists
        assert_eq!(map.lookup(r), RenameRef::Rob(6, 60));
        // Same slot, wrong seq: no effect.
        map.commit(r, 6, 99);
        assert_eq!(map.lookup(r), RenameRef::Rob(6, 60));
        map.commit(r, 6, 60);
        assert_eq!(map.lookup(r), RenameRef::Arch);
    }

    #[test]
    fn int_and_fp_banks_independent() {
        let mut map = RenameMap::new();
        map.define(ir(2), 1, 10);
        assert_eq!(map.lookup(fr(2)), RenameRef::Arch);
        map.define(fr(2), 2, 11);
        assert_eq!(map.lookup(ir(2)), RenameRef::Rob(1, 10));
        assert!(map.has_inflight());
    }
}
