//! The reuse-control machinery: loop detector, Non-Bufferable Loop Table,
//! and the issue-queue state machine (Figure 2 of the paper).
//!
//! States: **Normal** → (capturable loop detected, NBLT miss) → **Loop
//! Buffering** → (enough iterations buffered) → **Code Reuse** → (static
//! prediction fails / any misprediction recovery) → **Normal**.
//!
//! Deviations from the paper, documented in DESIGN.md: detection and
//! buffering bookkeeping run at the rename/dispatch stage rather than the
//! decode stage (our discrete pipeline sees the same in-order instruction
//! stream there, a couple of cycles later — gating onset is delayed by
//! that amount and nothing else changes).

use crate::config::{BufferingStrategy, ReuseConfig};
use crate::stats::ReuseStats;
use riq_isa::{CtrlKind, Inst};
use riq_trace::{EventKind, RevokeReason};
use std::collections::VecDeque;

/// The non-bufferable loop table: a small FIFO CAM keyed by the address of
/// the loop-ending instruction (§2.2.3).
///
/// # Examples
///
/// ```
/// use riq_core::Nblt;
/// let mut nblt = Nblt::new(2);
/// nblt.insert(0x100);
/// nblt.insert(0x200);
/// assert!(nblt.contains(0x100));
/// nblt.insert(0x300); // FIFO evicts 0x100
/// assert!(!nblt.contains(0x100));
/// ```
#[derive(Debug, Clone)]
pub struct Nblt {
    entries: VecDeque<u32>,
    capacity: usize,
    /// CAM searches performed (power accounting).
    pub searches: u64,
    /// Entries inserted (power accounting).
    pub inserts: u64,
}

impl Nblt {
    /// Creates an empty table; `capacity` 0 disables it.
    #[must_use]
    pub fn new(capacity: u32) -> Nblt {
        Nblt { entries: VecDeque::new(), capacity: capacity as usize, searches: 0, inserts: 0 }
    }

    /// Whether the loop ending at `tail_addr` is registered non-bufferable.
    pub fn contains(&mut self, tail_addr: u32) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.searches += 1;
        self.entries.contains(&tail_addr)
    }

    /// Registers a loop as non-bufferable (FIFO replacement).
    pub fn insert(&mut self, tail_addr: u32) {
        if self.capacity == 0 || self.entries.contains(&tail_addr) {
            return;
        }
        self.inserts += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(tail_addr);
    }
}

/// The two-bit issue-queue state register (`R_iqstate`, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IqState {
    /// Conventional operation.
    Normal,
    /// A detected loop is being buffered into the queue.
    LoopBuffering,
    /// The queue supplies instructions itself; front-end gated.
    CodeReuse,
}

/// What the dispatcher must do with the instruction it just presented.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Directive {
    /// Set the classification bit and record an LRL entry.
    pub buffer: bool,
    /// After inserting this instruction, promote to Code Reuse: gate the
    /// front-end, flush fetched-but-undispatched instructions.
    pub promote: bool,
    /// Before handling this instruction, revoke the ongoing buffering
    /// (clear classification bits in the queue).
    pub revoke: bool,
}

/// The reuse controller.
///
/// Drives the state machine from the in-order dispatch stream; the core
/// calls [`on_dispatch`](ReuseController::on_dispatch) for every
/// instruction entering the window, [`on_queue_full`] when dispatch stalls
/// on a full queue during buffering, and [`on_recovery`] on every
/// misprediction recovery.
///
/// [`on_queue_full`]: ReuseController::on_queue_full
/// [`on_recovery`]: ReuseController::on_recovery
#[derive(Debug, Clone)]
pub struct ReuseController {
    cfg: ReuseConfig,
    iq_capacity: u32,
    state: IqState,
    loophead: u32,
    looptail: u32,
    started: bool,
    iter_size: u32,
    call_depth: u32,
    nblt: Nblt,
    /// Counters exported into the run statistics.
    pub stats: ReuseStats,
    trace: bool,
    /// FSM events staged for the pipeline to drain into its trace sink
    /// (empty unless tracing was enabled via
    /// [`set_tracing`](ReuseController::set_tracing)).
    pub(crate) events: Vec<EventKind>,
    reused_at_entry: u64,
}

impl ReuseController {
    /// Creates the controller for a queue of `iq_capacity` entries.
    #[must_use]
    pub fn new(cfg: ReuseConfig, iq_capacity: u32) -> ReuseController {
        ReuseController {
            nblt: Nblt::new(if cfg.enabled { cfg.nblt_entries } else { 0 }),
            cfg,
            iq_capacity,
            state: IqState::Normal,
            loophead: 0,
            looptail: 0,
            started: false,
            iter_size: 0,
            call_depth: 0,
            stats: ReuseStats::default(),
            trace: false,
            events: Vec::new(),
            reused_at_entry: 0,
        }
    }

    /// Current queue state.
    #[must_use]
    pub fn state(&self) -> IqState {
        self.state
    }

    /// Turns FSM event staging on or off. Off (the default) costs nothing:
    /// no events are constructed.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = on;
    }

    fn emit(&mut self, kind: EventKind) {
        if self.trace {
            self.events.push(kind);
        }
    }

    /// The `R_loophead` register (valid while buffering/reusing).
    #[must_use]
    pub fn loophead(&self) -> u32 {
        self.loophead
    }

    /// The `R_looptail` register.
    #[must_use]
    pub fn looptail(&self) -> u32 {
        self.looptail
    }

    /// NBLT activity drained by the power accounting.
    pub fn nblt_activity(&mut self) -> (u64, u64) {
        let out = (self.nblt.searches, self.nblt.inserts);
        self.nblt.searches = 0;
        self.nblt.inserts = 0;
        out
    }

    /// A capturable loop-ending instruction: a *backward* conditional
    /// branch or direct jump whose static span fits in the issue queue
    /// (§2.1).
    #[must_use]
    pub fn capturable_loop_end(&self, pc: u32, inst: &Inst) -> Option<(u32, u32)> {
        let kind = inst.ctrl_kind()?;
        if !matches!(kind, CtrlKind::CondBranch | CtrlKind::Jump) {
            return None;
        }
        let target = inst.static_target(pc)?;
        if target >= pc {
            return None; // forward transfer: not a loop end
        }
        let size = (pc - target) / 4 + 1;
        (size <= self.iq_capacity).then_some((target, size))
    }

    fn detect(&mut self, pc: u32, target: u32) {
        self.stats.loops_detected += 1;
        self.emit(EventKind::LoopDetected {
            head: u64::from(target),
            tail: u64::from(pc),
            size: u64::from((pc - target) / 4 + 1),
        });
        if self.nblt.contains(pc) {
            self.stats.nblt_hits += 1;
            self.emit(EventKind::NbltHit { tail: u64::from(pc) });
            return;
        }
        self.loophead = target;
        self.looptail = pc;
        self.started = false;
        self.iter_size = 0;
        self.call_depth = 0;
        self.state = IqState::LoopBuffering;
    }

    fn revoke(&mut self, register: bool, reason: RevokeReason) -> Directive {
        if self.started {
            self.stats.bufferings_revoked += 1;
            self.emit(EventKind::BufferingRevoked { reason, registered: register });
        }
        if register {
            self.nblt.insert(self.looptail);
            self.stats.nblt_inserts += 1;
            self.emit(EventKind::NbltInsert { tail: u64::from(self.looptail) });
        }
        self.state = IqState::Normal;
        self.started = false;
        Directive { revoke: true, ..Directive::default() }
    }

    /// Presents the next in-order dispatched instruction. `iq_free_after`
    /// is the number of free queue entries *after* this instruction is
    /// inserted (the §2.2.1 promotion comparison); `next_pc` is the
    /// resolved successor address (taken target or fall-through), which
    /// the buffering tail check uses to recognise the loop exiting on its
    /// own end branch.
    pub fn on_dispatch(
        &mut self,
        pc: u32,
        inst: &Inst,
        iq_free_after: u32,
        next_pc: u32,
    ) -> Directive {
        if !self.cfg.enabled {
            return Directive::default();
        }
        match self.state {
            IqState::Normal => {
                if let Some((target, _size)) = self.capturable_loop_end(pc, inst) {
                    self.detect(pc, target);
                }
                Directive::default()
            }
            IqState::LoopBuffering => self.on_dispatch_buffering(pc, inst, iq_free_after, next_pc),
            IqState::CodeReuse => {
                debug_assert!(false, "front-end dispatch while Code Reuse is gated");
                Directive::default()
            }
        }
    }

    fn on_dispatch_buffering(
        &mut self,
        pc: u32,
        inst: &Inst,
        iq_free_after: u32,
        next_pc: u32,
    ) -> Directive {
        if !self.started {
            if pc == self.loophead {
                self.started = true;
                self.stats.bufferings_started += 1;
                self.emit(EventKind::BufferingStarted {
                    head: u64::from(self.loophead),
                    tail: u64::from(self.looptail),
                });
                self.iter_size = 0;
                // fall through into the buffering path below
            } else {
                // The detected branch fell out of the loop: silently return
                // to Normal (no buffering ever began, nothing to revoke).
                self.state = IqState::Normal;
                return Directive::default();
            }
        }

        // Inner-loop check first: a *different* capturable loop end while
        // buffering marks the current loop non-bufferable (§2.2.3) and
        // immediately arms detection for the inner loop.
        if pc != self.looptail {
            if let Some((target, _)) = self.capturable_loop_end(pc, inst) {
                let mut d = self.revoke(true, RevokeReason::InnerLoop);
                self.detect(pc, target);
                d.revoke = true;
                return d;
            }
        }

        // Track procedure nesting (§2.2.2). The depth *before* this
        // instruction decides whether it sits inside a called procedure
        // (the `jr` that returns is itself still procedure code).
        let depth_before = self.call_depth;
        match inst.ctrl_kind() {
            Some(CtrlKind::Call | CtrlKind::IndirectCall) => {
                self.call_depth += 1;
            }
            Some(CtrlKind::Return) => {
                if self.call_depth == 0 {
                    // A return not paired with an in-loop call: control is
                    // leaving through an indirect jump we cannot capture.
                    return self.revoke(true, RevokeReason::UnpairedReturn);
                }
                self.call_depth -= 1;
            }
            _ => {}
        }

        let in_range = pc >= self.loophead && pc <= self.looptail;
        if !in_range && depth_before == 0 {
            // Execution exited the loop during buffering.
            return self.revoke(true, RevokeReason::LoopExit);
        }

        self.iter_size += 1;
        let mut d = Directive { buffer: true, ..Directive::default() };
        if pc == self.looptail && self.call_depth == 0 {
            if next_pc != self.loophead {
                // The loop-end branch itself fell through: the loop is over.
                // Promoting here would capture the fall-through as the tail's
                // static prediction, and every reused instance of the branch
                // would then *confirm* it — Code Reuse would supply dead
                // iterations forever with no misprediction to exit on.
                return self.revoke(true, RevokeReason::LoopExit);
            }
            // One whole iteration is now buffered.
            self.stats.iterations_buffered += 1;
            let promote = match self.cfg.strategy {
                BufferingStrategy::SingleIteration => true,
                BufferingStrategy::MultiIteration => iq_free_after < self.iter_size,
            };
            if promote {
                self.state = IqState::CodeReuse;
                self.stats.code_reuse_entries += 1;
                self.reused_at_entry = self.stats.reused_insts;
                self.emit(EventKind::CodeReuseEntered {
                    head: u64::from(self.loophead),
                    tail: u64::from(self.looptail),
                });
                d.promote = true;
            } else {
                self.iter_size = 0;
            }
        }
        d
    }

    /// Called when dispatch stalls on a full issue queue while buffering:
    /// the loop (plus any procedure bodies) does not fit (§2.2.2).
    pub fn on_queue_full(&mut self) -> Directive {
        if self.cfg.enabled && self.state == IqState::LoopBuffering && self.started {
            self.revoke(true, RevokeReason::QueueFull)
        } else {
            Directive::default()
        }
    }

    /// Called on every misprediction recovery (§2.5). Returns `true` when
    /// the issue queue must clear its classification bits.
    pub fn on_recovery(&mut self) -> bool {
        match self.state {
            IqState::Normal => false,
            IqState::LoopBuffering => {
                if self.started {
                    self.stats.bufferings_revoked += 1;
                    self.emit(EventKind::BufferingRevoked {
                        reason: RevokeReason::Recovery,
                        registered: false,
                    });
                }
                self.state = IqState::Normal;
                self.started = false;
                true
            }
            IqState::CodeReuse => {
                let reused = self.stats.reused_insts - self.reused_at_entry;
                self.emit(EventKind::CodeReuseExited { reused_insts: reused });
                self.state = IqState::Normal;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_isa::{AluImmOp, IntReg};

    fn bne(off: i16) -> Inst {
        Inst::Bne { rs: IntReg::new(2), rt: IntReg::ZERO, off }
    }
    fn addi() -> Inst {
        Inst::AluImm { op: AluImmOp::Addi, rt: IntReg::new(2), rs: IntReg::new(2), imm: -1 }
    }
    fn ctl(iq: u32) -> ReuseController {
        ReuseController::new(
            ReuseConfig {
                enabled: true,
                nblt_entries: 8,
                strategy: BufferingStrategy::MultiIteration,
            },
            iq,
        )
    }

    const HEAD: u32 = 0x0040_0100;

    /// Drives a 3-instruction loop body (2 addi + bne) through one
    /// iteration of dispatches starting at the loop head; the tail branch
    /// is taken (back to the head).
    fn dispatch_iteration(c: &mut ReuseController, free: u32) -> Vec<Directive> {
        vec![
            c.on_dispatch(HEAD, &addi(), free, HEAD + 4),
            c.on_dispatch(HEAD + 4, &addi(), free, HEAD + 8),
            c.on_dispatch(HEAD + 8, &bne(-3), free, HEAD),
        ]
    }

    #[test]
    fn capturable_detection_rules() {
        let c = ctl(64);
        // Backward branch spanning 3 instructions: capturable.
        assert_eq!(c.capturable_loop_end(HEAD + 8, &bne(-3)), Some((HEAD, 3)));
        // Forward branch: not a loop.
        assert_eq!(c.capturable_loop_end(HEAD, &bne(5)), None);
        // Span larger than the queue: not capturable.
        let c = ctl(2);
        assert_eq!(c.capturable_loop_end(HEAD + 8, &bne(-3)), None);
        // Calls never end loops.
        assert_eq!(c.capturable_loop_end(HEAD, &Inst::Jal { target: 0x40_0000 }), None);
    }

    #[test]
    fn detect_then_buffer_then_promote() {
        let mut c = ctl(8);
        // First sight of the loop branch: detection only.
        let d = c.on_dispatch(HEAD + 8, &bne(-3), 8, HEAD);
        assert_eq!(d, Directive::default());
        assert_eq!(c.state(), IqState::LoopBuffering);
        // Second iteration: buffered. 8-entry queue, 3-inst body: after
        // iteration 1 (free=5) another fits; after iteration 2 (free=2) it
        // does not -> promote.
        let d1 = dispatch_iteration(&mut c, 5);
        assert!(d1.iter().all(|d| d.buffer));
        assert!(!d1[2].promote);
        let d2 = dispatch_iteration(&mut c, 2);
        assert!(d2[2].promote, "free (2) < iteration size (3)");
        assert_eq!(c.state(), IqState::CodeReuse);
        assert_eq!(c.stats.iterations_buffered, 2);
        assert_eq!(c.stats.code_reuse_entries, 1);
    }

    #[test]
    fn tail_exit_at_promotion_point_revokes() {
        // Regression: a 2-trip loop reaches the promotion decision exactly
        // on its *final* tail branch, which falls through. Promoting there
        // would make the fall-through the tail's static prediction and
        // Code Reuse would supply dead iterations forever (found by
        // riq-fuzz, seed 0x5a9b0174a40fc870).
        let mut c = ctl(8);
        c.on_dispatch(HEAD + 8, &bne(-3), 8, HEAD);
        assert_eq!(c.state(), IqState::LoopBuffering);
        // Buffer the final iteration; its tail is NOT taken, even though
        // occupancy would promote (free 2 < iteration size 3).
        c.on_dispatch(HEAD, &addi(), 2, HEAD + 4);
        c.on_dispatch(HEAD + 4, &addi(), 2, HEAD + 8);
        let d = c.on_dispatch(HEAD + 8, &bne(-3), 2, HEAD + 12);
        assert!(d.revoke, "exit on the tail revokes instead of promoting");
        assert!(!d.promote);
        assert!(!d.buffer);
        assert_eq!(c.state(), IqState::Normal);
        assert_eq!(c.stats.code_reuse_entries, 0);
        assert_eq!(c.stats.nblt_inserts, 1, "the loop is registered non-bufferable");
    }

    #[test]
    fn single_iteration_strategy_promotes_immediately() {
        let mut c = ReuseController::new(
            ReuseConfig {
                enabled: true,
                nblt_entries: 8,
                strategy: BufferingStrategy::SingleIteration,
            },
            64,
        );
        c.on_dispatch(HEAD + 8, &bne(-3), 64, HEAD);
        let d = dispatch_iteration(&mut c, 61);
        assert!(d[2].promote);
    }

    #[test]
    fn fall_through_detection_cancels_silently() {
        let mut c = ctl(64);
        c.on_dispatch(HEAD + 8, &bne(-3), 64, HEAD + 12);
        assert_eq!(c.state(), IqState::LoopBuffering);
        // Next dispatched instruction is NOT the loop head: the branch
        // exited; no buffering was started and nothing is revoked.
        let d = c.on_dispatch(HEAD + 12, &addi(), 64, HEAD + 16);
        assert_eq!(d, Directive::default());
        assert_eq!(c.state(), IqState::Normal);
        assert_eq!(c.stats.bufferings_started, 0);
        assert_eq!(c.stats.bufferings_revoked, 0);
    }

    #[test]
    fn loop_exit_during_buffering_registers_nblt() {
        let mut c = ctl(64);
        c.on_dispatch(HEAD + 8, &bne(-3), 64, HEAD);
        c.on_dispatch(HEAD, &addi(), 64, HEAD + 4); // buffering starts
                                                    // Dispatch jumps outside the loop with no call outstanding.
        let d = c.on_dispatch(HEAD + 100, &addi(), 64, HEAD + 104);
        assert!(d.revoke);
        assert_eq!(c.state(), IqState::Normal);
        assert_eq!(c.stats.bufferings_revoked, 1);
        assert_eq!(c.stats.nblt_inserts, 1);
        // Re-detection of the same loop now hits the NBLT.
        c.on_dispatch(HEAD + 8, &bne(-3), 64, HEAD);
        assert_eq!(c.state(), IqState::Normal, "NBLT suppressed buffering");
        assert_eq!(c.stats.nblt_hits, 1);
    }

    #[test]
    fn inner_loop_marks_outer_non_bufferable() {
        let mut c = ctl(64);
        let outer_tail = HEAD + 40;
        let outer_span = -((40 / 4) as i16) - 1; // back to HEAD
        c.on_dispatch(outer_tail, &bne(outer_span), 64, HEAD);
        assert_eq!(c.state(), IqState::LoopBuffering);
        c.on_dispatch(HEAD, &addi(), 64, HEAD + 4);
        // An inner loop's backward branch inside the outer body.
        let inner_tail = HEAD + 12;
        let d = c.on_dispatch(inner_tail, &bne(-2), 64, HEAD + 8);
        assert!(d.revoke, "outer buffering revoked");
        assert_eq!(c.state(), IqState::LoopBuffering, "inner loop armed");
        assert_eq!(c.looptail(), inner_tail);
        assert_eq!(c.stats.nblt_inserts, 1);
        // The outer loop is now in the NBLT.
        let mut probe = c;
        assert!(probe.nblt.contains(outer_tail));
    }

    #[test]
    fn procedure_calls_buffer_through() {
        let mut c = ctl(64);
        let tail = HEAD + 16;
        c.on_dispatch(tail, &bne(-5), 64, HEAD);
        c.on_dispatch(HEAD, &addi(), 60, HEAD + 4);
        let proc = 0x0040_0800;
        let d = c.on_dispatch(HEAD + 4, &Inst::Jal { target: proc }, 59, proc);
        assert!(d.buffer);
        // Procedure body is far outside the loop range but buffered.
        let d = c.on_dispatch(proc, &addi(), 58, proc + 4);
        assert!(d.buffer);
        let d = c.on_dispatch(proc + 4, &Inst::Jr { rs: IntReg::RA }, 57, HEAD + 8);
        assert!(d.buffer);
        // Back in the loop.
        let d = c.on_dispatch(HEAD + 8, &addi(), 56, HEAD + 12);
        assert!(d.buffer);
        assert_eq!(c.state(), IqState::LoopBuffering);
    }

    #[test]
    fn unpaired_return_revokes() {
        let mut c = ctl(64);
        c.on_dispatch(HEAD + 8, &bne(-3), 64, HEAD);
        c.on_dispatch(HEAD, &addi(), 64, HEAD + 4);
        let d = c.on_dispatch(HEAD + 4, &Inst::Jr { rs: IntReg::RA }, 64, 0x0040_0000);
        assert!(d.revoke);
        assert_eq!(c.stats.nblt_inserts, 1);
    }

    #[test]
    fn queue_full_during_buffering_revokes() {
        let mut c = ctl(8);
        c.on_dispatch(HEAD + 8, &bne(-3), 8, HEAD);
        c.on_dispatch(HEAD, &addi(), 2, HEAD + 4);
        let d = c.on_queue_full();
        assert!(d.revoke);
        assert_eq!(c.state(), IqState::Normal);
        assert_eq!(c.stats.nblt_inserts, 1);
    }

    #[test]
    fn recovery_exits_any_reuse_state() {
        let mut c = ctl(8);
        c.on_dispatch(HEAD + 8, &bne(-3), 8, HEAD);
        c.on_dispatch(HEAD, &addi(), 5, HEAD + 4);
        assert!(c.on_recovery(), "buffering revoked by recovery");
        assert_eq!(c.state(), IqState::Normal);
        assert_eq!(c.stats.bufferings_revoked, 1);
        assert_eq!(c.stats.nblt_inserts, 0, "recovery revoke does not register NBLT");
        assert!(!c.on_recovery(), "normal state has nothing to clear");
    }

    #[test]
    fn disabled_controller_is_inert() {
        let mut c = ReuseController::new(ReuseConfig::default(), 64);
        let d = c.on_dispatch(HEAD + 8, &bne(-3), 64, HEAD);
        assert_eq!(d, Directive::default());
        assert_eq!(c.state(), IqState::Normal);
        assert_eq!(c.stats.loops_detected, 0);
    }

    #[test]
    fn nblt_fifo_and_dedup() {
        let mut n = Nblt::new(2);
        n.insert(1);
        n.insert(1);
        assert_eq!(n.inserts, 1, "duplicate insert ignored");
        n.insert(2);
        n.insert(3);
        assert!(!n.contains(1));
        assert!(n.contains(2));
        assert!(n.contains(3));
        let mut off = Nblt::new(0);
        off.insert(9);
        assert!(!off.contains(9));
        assert_eq!(off.searches, 0, "disabled table never searches");
    }
}
