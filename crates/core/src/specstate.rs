//! Speculative architectural state with an undo log.
//!
//! Like SimpleScalar's `sim-outorder`, instructions execute *functionally*
//! when they are renamed/dispatched, against this speculative register
//! file and memory. Every write captures the value it overwrote; when a
//! branch misprediction squashes younger instructions, their undo records
//! are applied in reverse order, restoring the state to the instant right
//! after the branch executed. Wrong-path instructions therefore really
//! execute (and really get undone), which is what lets wrongly *reused*
//! instructions in Code Reuse state behave exactly like any other
//! wrong-path instruction.

use riq_emu::{execute, ArchState, ExecContext, Executed, MemFault, SparseMemory};
use riq_isa::{FpReg, Inst, IntReg};

/// One captured overwrite, applied in reverse on squash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UndoRecord {
    /// Previous value of an integer register.
    Int(IntReg, u32),
    /// Previous raw bits of an FP register.
    Fp(FpReg, u64),
    /// Previous 32-bit memory word.
    Mem32(u32, u32),
    /// Previous 64-bit memory word.
    Mem64(u32, u64),
}

/// Speculative registers + memory, with per-instruction undo capture.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_core::SpecState;
/// use riq_isa::{AluImmOp, Inst, IntReg};
///
/// let mut spec = SpecState::new();
/// let inst = Inst::AluImm { op: AluImmOp::Addi, rt: IntReg::new(2), rs: IntReg::ZERO, imm: 7 };
/// let (_, undo) = spec.execute(&inst, 0x400000)?;
/// assert_eq!(spec.regs().int_reg(IntReg::new(2)), 7);
/// spec.undo(&undo);
/// assert_eq!(spec.regs().int_reg(IntReg::new(2)), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpecState {
    regs: ArchState,
    mem: SparseMemory,
}

struct Recorder<'a> {
    state: &'a mut SpecState,
    undo: Vec<UndoRecord>,
}

impl ExecContext for Recorder<'_> {
    fn int(&self, r: IntReg) -> u32 {
        self.state.regs.int_reg(r)
    }
    fn set_int(&mut self, r: IntReg, v: u32) {
        if !r.is_zero() {
            self.undo.push(UndoRecord::Int(r, self.state.regs.int_reg(r)));
            self.state.regs.set_int_reg(r, v);
        }
    }
    fn fp_bits(&self, r: FpReg) -> u64 {
        self.state.regs.fp_reg_bits(r)
    }
    fn set_fp_bits(&mut self, r: FpReg, v: u64) {
        self.undo.push(UndoRecord::Fp(r, self.state.regs.fp_reg_bits(r)));
        self.state.regs.set_fp_reg_bits(r, v);
    }
    fn load_u32(&mut self, addr: u32) -> Result<u32, MemFault> {
        self.state.mem.load_u32(addr)
    }
    fn load_u64(&mut self, addr: u32) -> Result<u64, MemFault> {
        self.state.mem.load_u64(addr)
    }
    fn store_u32(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        let old = self.state.mem.load_u32(addr)?;
        self.undo.push(UndoRecord::Mem32(addr, old));
        self.state.mem.store_u32(addr, v)
    }
    fn store_u64(&mut self, addr: u32, v: u64) -> Result<(), MemFault> {
        let old = self.state.mem.load_u64(addr)?;
        self.undo.push(UndoRecord::Mem64(addr, old));
        self.state.mem.store_u64(addr, v)
    }
}

impl SpecState {
    /// Creates a zeroed state.
    #[must_use]
    pub fn new() -> SpecState {
        SpecState::default()
    }

    /// The speculative register file.
    #[must_use]
    pub fn regs(&self) -> &ArchState {
        &self.regs
    }

    /// Mutable register file (used at reset to set `$sp`).
    pub fn regs_mut(&mut self) -> &mut ArchState {
        &mut self.regs
    }

    /// The speculative memory.
    #[must_use]
    pub fn mem(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable memory (used at load time to install the program image).
    pub fn mem_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// Functionally executes `inst` at `pc`, capturing undo records for
    /// every register and memory overwrite.
    ///
    /// # Errors
    ///
    /// Returns the [`MemFault`] of a misaligned access; no state is
    /// partially modified in that case for loads, and stores fault before
    /// writing.
    pub fn execute(
        &mut self,
        inst: &Inst,
        pc: u32,
    ) -> Result<(Executed, Vec<UndoRecord>), MemFault> {
        let (result, undo) = {
            let mut rec = Recorder { state: self, undo: Vec::new() };
            let result = execute(inst, pc, &mut rec);
            (result, rec.undo)
        };
        match result {
            Ok(done) => Ok((done, undo)),
            Err(fault) => {
                // A faulting instruction may have captured writes before the
                // fault; roll them back so the state is unchanged.
                self.undo(&undo);
                Err(fault)
            }
        }
    }

    /// Applies undo records in reverse order.
    pub fn undo(&mut self, records: &[UndoRecord]) {
        for rec in records.iter().rev() {
            match *rec {
                UndoRecord::Int(r, v) => self.regs.set_int_reg(r, v),
                UndoRecord::Fp(r, v) => self.regs.set_fp_reg_bits(r, v),
                UndoRecord::Mem32(addr, v) => {
                    self.mem.store_u32(addr, v).expect("undo address was valid");
                }
                UndoRecord::Mem64(addr, v) => {
                    self.mem.store_u64(addr, v).expect("undo address was valid");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_isa::{AluImmOp, AluOp, FpAluOp};

    fn r(n: u8) -> IntReg {
        IntReg::new(n)
    }
    fn f(n: u8) -> FpReg {
        FpReg::new(n)
    }

    #[test]
    fn undo_restores_registers_in_reverse() {
        let mut s = SpecState::new();
        let i1 = Inst::AluImm { op: AluImmOp::Addi, rt: r(2), rs: IntReg::ZERO, imm: 5 };
        let i2 = Inst::AluImm { op: AluImmOp::Addi, rt: r(2), rs: r(2), imm: 1 };
        let (_, u1) = s.execute(&i1, 0).unwrap();
        let (_, u2) = s.execute(&i2, 4).unwrap();
        assert_eq!(s.regs().int_reg(r(2)), 6);
        s.undo(&u2);
        assert_eq!(s.regs().int_reg(r(2)), 5);
        s.undo(&u1);
        assert_eq!(s.regs().int_reg(r(2)), 0);
    }

    #[test]
    fn undo_restores_memory() {
        let mut s = SpecState::new();
        s.mem_mut().store_u32(0x1000, 11).unwrap();
        s.regs_mut().set_int_reg(r(3), 0x1000);
        s.regs_mut().set_int_reg(r(4), 99);
        let sw = Inst::Sw { rt: r(4), base: r(3), off: 0 };
        let (done, undo) = s.execute(&sw, 0).unwrap();
        assert!(done.mem.unwrap().is_store);
        assert_eq!(s.mem().load_u32(0x1000).unwrap(), 99);
        s.undo(&undo);
        assert_eq!(s.mem().load_u32(0x1000).unwrap(), 11);
    }

    #[test]
    fn zero_register_writes_capture_nothing() {
        let mut s = SpecState::new();
        let nopish =
            Inst::AluImm { op: AluImmOp::Addi, rt: IntReg::ZERO, rs: IntReg::ZERO, imm: 7 };
        let (_, undo) = s.execute(&nopish, 0).unwrap();
        assert!(undo.is_empty());
        assert_eq!(s.regs().int_reg(IntReg::ZERO), 0);
    }

    #[test]
    fn fault_leaves_state_unchanged() {
        let mut s = SpecState::new();
        s.regs_mut().set_int_reg(r(3), 2); // misaligned base
        let lw = Inst::Lw { rt: r(4), base: r(3), off: 0 };
        let before = s.regs().clone();
        assert!(s.execute(&lw, 0).is_err());
        assert_eq!(s.regs(), &before);
    }

    #[test]
    fn fp_undo() {
        let mut s = SpecState::new();
        s.regs_mut().set_fp_reg(f(1), 2.0);
        s.regs_mut().set_fp_reg(f(2), 3.0);
        let mul = Inst::FpOp { op: FpAluOp::MulD, fd: f(3), fs: f(1), ft: f(2) };
        let (_, undo) = s.execute(&mul, 0).unwrap();
        assert_eq!(s.regs().fp_reg(f(3)), 6.0);
        s.undo(&undo);
        assert_eq!(s.regs().fp_reg(f(3)), 0.0);
    }

    #[test]
    fn alu_reads_do_not_capture() {
        let mut s = SpecState::new();
        s.regs_mut().set_int_reg(r(1), 3);
        s.regs_mut().set_int_reg(r(2), 4);
        let add = Inst::Alu { op: AluOp::Add, rd: r(5), rs: r(1), rt: r(2) };
        let (_, undo) = s.execute(&add, 0).unwrap();
        assert_eq!(undo.len(), 1, "only the destination write is captured");
    }
}
