//! Pluggable issue-stage scheduling policies.
//!
//! The select stage asks an [`IssuePolicy`] in which order the ready
//! issue-queue entries should be considered this cycle. The queue hands the
//! policy its ready positions already in oldest-first (smallest sequence
//! number) order — the order the pre-policy scan issued in — so the
//! [`Baseline`] policy is a no-op and stays cycle-for-cycle identical to
//! the original oldest-first ready-bitmap scan.
//!
//! [`LoadDelay`] implements a real-time load-delay tracker in the spirit of
//! Diavastos & Carlson (arXiv 2109.03112): when a load issues, the memory
//! hierarchy's actual hit/miss latency fixes the cycle its value arrives,
//! and that cycle is broadcast into the waiting consumers' `pred_ready`
//! tags. Selection then orders ready entries by *expected slack* — the
//! predicted operand-ready cycle minus the current cycle — shortest first,
//! breaking ties oldest-first. Entries never fed by a tracked load carry a
//! tag of zero and therefore sort ahead of load-fed entries, which models
//! the intuition that a chain already stalled behind a long miss should
//! not block short-latency work from draining the queue.
//!
//! Starvation freedom: a ready entry's tag is fixed once its producers have
//! issued, and tags assigned later in the run are strictly larger (they are
//! `now + latency` for a growing `now`), so an entry can only be bypassed
//! by a bounded population of smaller-tagged entries — the finite ROB
//! drains them and the entry issues.

use crate::iq::IssueQueue;

/// Which scheduling policy the issue stage runs. Carried by
/// [`SimConfig::policy`](crate::SimConfig) and mapped to a policy object
/// with [`IssuePolicyKind::policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IssuePolicyKind {
    /// Oldest-ready-first — the conventional scan every earlier experiment
    /// ran. This is the default and is counter-identical to the
    /// pre-policy issue stage.
    #[default]
    Oldest,
    /// Shortest-expected-slack first, driven by the load-delay tracker.
    LoadDelay,
}

impl IssuePolicyKind {
    /// Stable string tag (used by trace events and experiment labels).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            IssuePolicyKind::Oldest => "oldest",
            IssuePolicyKind::LoadDelay => "load-delay",
        }
    }

    /// The policy object implementing this kind.
    #[must_use]
    pub fn policy(self) -> &'static dyn IssuePolicy {
        match self {
            IssuePolicyKind::Oldest => &Baseline,
            IssuePolicyKind::LoadDelay => &LoadDelay,
        }
    }
}

/// A scheduling policy for the issue stage's select logic.
///
/// Implementations must be stateless: all per-run state lives in the queue
/// entries (`pred_ready` tags) and the core's load-delay table, so a policy
/// object can be a shared `&'static` and runs stay deterministic.
pub trait IssuePolicy: Sync {
    /// Which kind this policy implements.
    fn kind(&self) -> IssuePolicyKind;

    /// Reorders `ready` — positions of ready, not-yet-issued entries,
    /// arriving oldest-first — into the order selection should consider
    /// them. The caller still applies structural constraints (function
    /// units, store conflicts, issue width) in this order.
    fn order(&self, iq: &IssueQueue, now: u64, ready: &mut [usize]);

    /// Whether the core must maintain the load-delay tracker (tag
    /// consumers with producing-load completion cycles). `false` keeps the
    /// default pipeline free of any tracker overhead.
    fn tracks_load_delay(&self) -> bool {
        false
    }
}

/// The conventional oldest-ready-first policy (the pre-refactor scan).
#[derive(Debug, Clone, Copy, Default)]
pub struct Baseline;

impl IssuePolicy for Baseline {
    fn kind(&self) -> IssuePolicyKind {
        IssuePolicyKind::Oldest
    }

    fn order(&self, _iq: &IssueQueue, _now: u64, _ready: &mut [usize]) {
        // `ready` already arrives oldest-first — keep it byte-identical to
        // the pre-policy scan.
    }
}

/// Shortest-expected-slack-first scheduling on the load-delay tracker.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadDelay;

impl IssuePolicy for LoadDelay {
    fn kind(&self) -> IssuePolicyKind {
        IssuePolicyKind::LoadDelay
    }

    fn order(&self, iq: &IssueQueue, _now: u64, ready: &mut [usize]) {
        // Slack = pred_ready.saturating_sub(now); `now` is the same for
        // every candidate, so ordering by the tag orders by slack. Ties
        // (notably the untagged tag-0 population) stay oldest-first.
        let entries = iq.entries();
        ready.sort_by_key(|&i| (entries[i].pred_ready, entries[i].seq));
    }

    fn tracks_load_delay(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iq::IqEntry;
    use riq_isa::Inst;

    fn entry(seq: u64, pred_ready: u64) -> IqEntry {
        IqEntry {
            rob: seq as usize,
            seq,
            pc: 0x40_0000 + seq as u32 * 4,
            inst: Inst::Nop,
            waits: [None, None],
            issued: false,
            classification: false,
            lrl: None,
            pred_ready,
        }
    }

    #[test]
    fn kinds_round_trip_to_policy_objects() {
        assert_eq!(IssuePolicyKind::default(), IssuePolicyKind::Oldest);
        assert_eq!(IssuePolicyKind::Oldest.policy().kind(), IssuePolicyKind::Oldest);
        assert_eq!(IssuePolicyKind::LoadDelay.policy().kind(), IssuePolicyKind::LoadDelay);
        assert!(!IssuePolicyKind::Oldest.policy().tracks_load_delay());
        assert!(IssuePolicyKind::LoadDelay.policy().tracks_load_delay());
        assert_eq!(IssuePolicyKind::Oldest.as_str(), "oldest");
        assert_eq!(IssuePolicyKind::LoadDelay.as_str(), "load-delay");
    }

    #[test]
    fn baseline_preserves_oldest_first_order() {
        let mut iq = IssueQueue::new(8);
        for (seq, tag) in [(5u64, 90u64), (2, 10), (9, 0)] {
            assert!(iq.insert(entry(seq, tag)));
        }
        let mut ready = iq.ready_positions();
        let before = ready.clone();
        Baseline.order(&iq, 100, &mut ready);
        assert_eq!(ready, before, "Baseline must not reorder");
    }

    #[test]
    fn load_delay_orders_by_tag_then_age() {
        let mut iq = IssueQueue::new(8);
        // seqs 5, 2, 9 at positions 0, 1, 2; tags 90, 10, 0.
        for (seq, tag) in [(5u64, 90u64), (2, 10), (9, 0)] {
            assert!(iq.insert(entry(seq, tag)));
        }
        let mut ready = iq.ready_positions();
        LoadDelay.order(&iq, 100, &mut ready);
        let seqs: Vec<u64> = ready.iter().map(|&i| iq.entries()[i].seq).collect();
        assert_eq!(seqs, vec![9, 2, 5], "smallest tag first, regardless of age");
    }

    #[test]
    fn load_delay_breaks_tag_ties_oldest_first() {
        let mut iq = IssueQueue::new(8);
        for seq in [7u64, 3, 11] {
            assert!(iq.insert(entry(seq, 40)));
        }
        let mut ready = iq.ready_positions();
        LoadDelay.order(&iq, 0, &mut ready);
        let seqs: Vec<u64> = ready.iter().map(|&i| iq.entries()[i].seq).collect();
        assert_eq!(seqs, vec![3, 7, 11]);
    }
}
