//! The reorder buffer.
//!
//! A ring buffer of in-flight instructions in program order. Renaming is
//! ROB-based (the rename map points at the producing ROB slot); recovery is
//! the paper's "conventional recovery": pop entries youngest-first back to
//! the mispredicted branch, restoring the rename map and the speculative
//! state from each popped entry's captured old mapping and undo log.

use crate::specstate::UndoRecord;
use riq_emu::{ControlFlow, MemAccess};
use riq_isa::{ArchReg, Inst};

/// Identifier of a ROB slot. Slots are reused after commit; pair with
/// [`RobEntry::seq`] when holding a reference across cycles.
pub type RobId = usize;

/// Where a logical register's previous mapping pointed.
///
/// The producer is named by *slot and sequence number*: slots are reused
/// after commit, and a stale `old_map` restored during misprediction
/// walk-back must be detectable (the restore validates the seq and falls
/// back to [`RenameRef::Arch`] when the producer has committed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameRef {
    /// The committed architectural register file.
    Arch,
    /// The in-flight producer in the given ROB slot with the given seq.
    Rob(RobId, u64),
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Global dispatch sequence number (age).
    pub seq: u64,
    /// Instruction address.
    pub pc: u32,
    /// The instruction itself.
    pub inst: Inst,
    /// Renamed destination, if any.
    pub dest: Option<ArchReg>,
    /// The mapping `dest` had before this instruction (for walk-back).
    pub old_map: RenameRef,
    /// Result available (written back).
    pub completed: bool,
    /// Actual control flow, computed at dispatch.
    pub flow: ControlFlow,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// The next PC the front-end *predicted* after this instruction.
    pub predicted_next: u32,
    /// The architecturally correct next PC.
    pub actual_next: u32,
    /// Whether writeback of this instruction must trigger a recovery.
    pub mispredicted: bool,
    /// Speculative-state undo log captured at dispatch.
    pub undo: Vec<UndoRecord>,
    /// Supplied by the issue queue in Code Reuse state.
    pub reused: bool,
    /// Dispatched beyond an unresolved mispredicted branch.
    pub wrong_path: bool,
}

/// The reorder buffer ring.
///
/// # Examples
///
/// ```
/// use riq_core::Rob;
/// let rob = Rob::new(64);
/// assert_eq!(rob.capacity(), 64);
/// assert!(rob.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Rob {
    slots: Vec<Option<RobEntry>>,
    head: usize,
    len: usize,
}

impl Rob {
    /// Creates an empty ROB with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u32) -> Rob {
        assert!(capacity > 0, "ROB capacity must be non-zero");
        Rob { slots: vec![None; capacity as usize], head: 0, len: 0 }
    }

    /// Total slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no instructions are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window is full.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Allocates the next slot in program order.
    ///
    /// Returns `None` when full.
    pub fn alloc(&mut self, entry: RobEntry) -> Option<RobId> {
        if self.is_full() {
            return None;
        }
        let id = (self.head + self.len) % self.slots.len();
        debug_assert!(self.slots[id].is_none(), "allocating an occupied slot");
        self.slots[id] = Some(entry);
        self.len += 1;
        Some(id)
    }

    /// The entry in a slot, if live.
    #[must_use]
    pub fn get(&self, id: RobId) -> Option<&RobEntry> {
        self.slots.get(id).and_then(Option::as_ref)
    }

    /// Mutable access to a live slot.
    pub fn get_mut(&mut self, id: RobId) -> Option<&mut RobEntry> {
        self.slots.get_mut(id).and_then(Option::as_mut)
    }

    /// Slot id of the oldest entry.
    #[must_use]
    pub fn oldest(&self) -> Option<RobId> {
        (self.len > 0).then_some(self.head)
    }

    /// Slot id of the youngest entry.
    #[must_use]
    pub fn youngest(&self) -> Option<RobId> {
        (self.len > 0).then(|| (self.head + self.len - 1) % self.slots.len())
    }

    /// Removes and returns the oldest entry (commit).
    pub fn pop_oldest(&mut self) -> Option<(RobId, RobEntry)> {
        let id = self.oldest()?;
        let entry = self.slots[id].take().expect("oldest slot live");
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        Some((id, entry))
    }

    /// Removes and returns the youngest entry (squash walk-back).
    pub fn pop_youngest(&mut self) -> Option<(RobId, RobEntry)> {
        let id = self.youngest()?;
        let entry = self.slots[id].take().expect("youngest slot live");
        self.len -= 1;
        Some((id, entry))
    }

    /// Iterates slot ids oldest → youngest.
    pub fn ids(&self) -> impl Iterator<Item = RobId> + '_ {
        let cap = self.slots.len();
        let head = self.head;
        (0..self.len).map(move |i| (head + i) % cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_emu::ControlFlow;

    fn entry(seq: u64) -> RobEntry {
        RobEntry {
            seq,
            pc: 0x400000 + (seq as u32) * 4,
            inst: Inst::Nop,
            dest: None,
            old_map: RenameRef::Arch,
            completed: false,
            flow: ControlFlow::Next,
            mem: None,
            predicted_next: 0,
            actual_next: 0,
            mispredicted: false,
            undo: Vec::new(),
            reused: false,
            wrong_path: false,
        }
    }

    #[test]
    fn fifo_commit_order() {
        let mut rob = Rob::new(4);
        let a = rob.alloc(entry(0)).unwrap();
        let b = rob.alloc(entry(1)).unwrap();
        assert_ne!(a, b);
        let (id, e) = rob.pop_oldest().unwrap();
        assert_eq!(id, a);
        assert_eq!(e.seq, 0);
        let (_, e) = rob.pop_oldest().unwrap();
        assert_eq!(e.seq, 1);
        assert!(rob.pop_oldest().is_none());
    }

    #[test]
    fn lifo_squash_order() {
        let mut rob = Rob::new(4);
        for s in 0..3 {
            rob.alloc(entry(s)).unwrap();
        }
        assert_eq!(rob.pop_youngest().unwrap().1.seq, 2);
        assert_eq!(rob.pop_youngest().unwrap().1.seq, 1);
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn fills_and_wraps() {
        let mut rob = Rob::new(3);
        for s in 0..3 {
            assert!(rob.alloc(entry(s)).is_some());
        }
        assert!(rob.is_full());
        assert!(rob.alloc(entry(9)).is_none());
        rob.pop_oldest();
        let id = rob.alloc(entry(3)).unwrap();
        assert_eq!(rob.get(id).unwrap().seq, 3);
        // Age iteration stays correct across the wrap.
        let seqs: Vec<u64> = rob.ids().map(|i| rob.get(i).unwrap().seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn mixed_commit_and_squash() {
        let mut rob = Rob::new(4);
        for s in 0..4 {
            rob.alloc(entry(s)).unwrap();
        }
        rob.pop_oldest(); // commit 0
        rob.pop_youngest(); // squash 3
        let seqs: Vec<u64> = rob.ids().map(|i| rob.get(i).unwrap().seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(rob.oldest().map(|i| rob.get(i).unwrap().seq), Some(1));
        assert_eq!(rob.youngest().map(|i| rob.get(i).unwrap().seq), Some(2));
    }

    #[test]
    fn get_dead_slot_is_none() {
        let mut rob = Rob::new(2);
        let a = rob.alloc(entry(0)).unwrap();
        rob.pop_oldest();
        assert!(rob.get(a).is_none());
        assert!(rob.get(99).is_none());
    }
}
