//! Function-unit pool and operation latencies.

use crate::config::{FuConfig, LatencyConfig};
use riq_isa::{AluOp, FpAluOp, FpUnaryOp, Inst, InstClass};

/// Function-unit classes instructions contend for. Integer divides share
/// the multiplier, FP divides/square roots share the FP multiplier, and
/// memory operations need a cache port (address generation is folded into
/// the port occupancy, like `sim-outorder`'s RdPort/WrPort resources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuClass {
    /// Integer ALU (also branches and jumps).
    IntAlu,
    /// Integer multiplier/divider.
    IntMult,
    /// FP adder.
    FpAlu,
    /// FP multiplier/divider.
    FpMult,
    /// Data-cache port.
    MemPort,
    /// No unit needed (`nop`, `halt`).
    None,
}

/// Classifies an instruction to its function-unit class.
#[must_use]
pub fn fu_class(inst: &Inst) -> FuClass {
    match inst.class() {
        InstClass::IntAlu | InstClass::Ctrl => FuClass::IntAlu,
        InstClass::IntMult | InstClass::IntDiv => FuClass::IntMult,
        InstClass::FpAlu => FuClass::FpAlu,
        InstClass::FpMult | InstClass::FpDiv => FuClass::FpMult,
        InstClass::Load | InstClass::Store => FuClass::MemPort,
        InstClass::Nop | InstClass::Halt => FuClass::None,
    }
}

/// Execution latency of an instruction, excluding memory-hierarchy time
/// (loads add cache latency on top of this address-generation cycle).
#[must_use]
pub fn exec_latency(lat: &LatencyConfig, inst: &Inst) -> u64 {
    match inst {
        Inst::Alu { op, .. } => match op {
            AluOp::Mul => lat.int_mult,
            AluOp::Div | AluOp::Rem => lat.int_div,
            _ => lat.int_alu,
        },
        Inst::FpOp { op, .. } => match op {
            FpAluOp::MulD => lat.fp_mult,
            FpAluOp::DivD => lat.fp_div,
            _ => lat.fp_alu,
        },
        Inst::FpUnary { op, .. } => match op {
            FpUnaryOp::SqrtD => lat.fp_sqrt,
            _ => lat.fp_alu,
        },
        Inst::CmpD { .. } | Inst::Mtc1 { .. } | Inst::Mfc1 { .. } => lat.fp_alu,
        // Loads/stores: one address-generation cycle; cache time is added
        // by the LSQ/cache logic.
        Inst::Lw { .. } | Inst::Sw { .. } | Inst::Ld { .. } | Inst::Sd { .. } => 1,
        _ => lat.int_alu,
    }
}

/// Per-cycle function-unit availability tracker.
///
/// # Examples
///
/// ```
/// use riq_core::{FuClass, FuPool};
/// use riq_core::SimConfig;
/// let cfg = SimConfig::baseline();
/// let mut pool = FuPool::new(&cfg.fu);
/// pool.new_cycle();
/// for _ in 0..4 {
///     assert!(pool.try_acquire(FuClass::IntAlu));
/// }
/// assert!(!pool.try_acquire(FuClass::IntAlu), "only 4 integer ALUs");
/// pool.new_cycle();
/// assert!(pool.try_acquire(FuClass::IntAlu));
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    cfg: FuConfig,
    int_alu: u32,
    int_mult: u32,
    fp_alu: u32,
    fp_mult: u32,
    mem_ports: u32,
}

impl FuPool {
    /// Creates the pool.
    #[must_use]
    pub fn new(cfg: &FuConfig) -> FuPool {
        FuPool { cfg: *cfg, int_alu: 0, int_mult: 0, fp_alu: 0, fp_mult: 0, mem_ports: 0 }
    }

    /// Resets availability at the start of a cycle (units are pipelined).
    pub fn new_cycle(&mut self) {
        self.int_alu = self.cfg.int_alu;
        self.int_mult = self.cfg.int_mult;
        self.fp_alu = self.cfg.fp_alu;
        self.fp_mult = self.cfg.fp_mult;
        self.mem_ports = self.cfg.mem_ports;
    }

    /// Tries to acquire a unit of the given class for this cycle.
    pub fn try_acquire(&mut self, class: FuClass) -> bool {
        let slot = match class {
            FuClass::IntAlu => &mut self.int_alu,
            FuClass::IntMult => &mut self.int_mult,
            FuClass::FpAlu => &mut self.fp_alu,
            FuClass::FpMult => &mut self.fp_mult,
            FuClass::MemPort => &mut self.mem_ports,
            FuClass::None => return true,
        };
        if *slot > 0 {
            *slot -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use riq_isa::{FpReg, IntReg};

    #[test]
    fn classes() {
        let r = IntReg::new;
        let f = FpReg::new;
        assert_eq!(fu_class(&Inst::Beq { rs: r(1), rt: r(2), off: 0 }), FuClass::IntAlu);
        assert_eq!(
            fu_class(&Inst::Alu { op: AluOp::Div, rd: r(1), rs: r(2), rt: r(3) }),
            FuClass::IntMult
        );
        assert_eq!(
            fu_class(&Inst::FpUnary { op: FpUnaryOp::SqrtD, fd: f(0), fs: f(1) }),
            FuClass::FpMult
        );
        assert_eq!(fu_class(&Inst::Lw { rt: r(1), base: r(2), off: 0 }), FuClass::MemPort);
        assert_eq!(fu_class(&Inst::Halt), FuClass::None);
    }

    #[test]
    fn latencies_match_config() {
        let lat = SimConfig::baseline().latency;
        let r = IntReg::new;
        let f = FpReg::new;
        assert_eq!(
            exec_latency(&lat, &Inst::Alu { op: AluOp::Add, rd: r(1), rs: r(2), rt: r(3) }),
            1
        );
        assert_eq!(
            exec_latency(&lat, &Inst::Alu { op: AluOp::Mul, rd: r(1), rs: r(2), rt: r(3) }),
            3
        );
        assert_eq!(
            exec_latency(&lat, &Inst::Alu { op: AluOp::Div, rd: r(1), rs: r(2), rt: r(3) }),
            20
        );
        assert_eq!(
            exec_latency(&lat, &Inst::FpOp { op: FpAluOp::AddD, fd: f(0), fs: f(1), ft: f(2) }),
            2
        );
        assert_eq!(
            exec_latency(&lat, &Inst::FpOp { op: FpAluOp::DivD, fd: f(0), fs: f(1), ft: f(2) }),
            12
        );
        assert_eq!(exec_latency(&lat, &Inst::Lw { rt: r(1), base: r(2), off: 0 }), 1);
    }

    #[test]
    fn scarce_units_contend() {
        let cfg = SimConfig::baseline();
        let mut pool = FuPool::new(&cfg.fu);
        pool.new_cycle();
        assert!(pool.try_acquire(FuClass::IntMult));
        assert!(!pool.try_acquire(FuClass::IntMult), "only one multiplier");
        assert!(pool.try_acquire(FuClass::MemPort));
        assert!(pool.try_acquire(FuClass::MemPort));
        assert!(!pool.try_acquire(FuClass::MemPort), "two cache ports");
        assert!(pool.try_acquire(FuClass::None), "nop needs nothing");
    }
}
