//! Simulator configuration (the paper's Table 1, parameterized).

use crate::policy::IssuePolicyKind;
use riq_bpred::PredictorConfig;
use riq_mem::HierarchyConfig;
use riq_power::PowerConfig;
use std::error::Error;
use std::fmt;

/// Function-unit pool sizes (Table 1: 4 IALU, 1 IMULT, 4 FPALU, 1 FPMULT;
/// SimpleScalar's default 2 cache ports for memory operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuConfig {
    /// Integer ALUs (also perform address generation and branch compare).
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_mult: u32,
    /// FP adders (also compares, converts, moves).
    pub fp_alu: u32,
    /// FP multiply/divide units.
    pub fp_mult: u32,
    /// Data-cache ports shared by loads and stores.
    pub mem_ports: u32,
}

/// Operation latencies in cycles (SimpleScalar `sim-outorder` defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyConfig {
    /// Integer ALU operations.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mult: u64,
    /// Integer divide / remainder.
    pub int_div: u64,
    /// FP add/sub/compare/convert/move.
    pub fp_alu: u64,
    /// FP multiply.
    pub fp_mult: u64,
    /// FP divide.
    pub fp_div: u64,
    /// FP square root.
    pub fp_sqrt: u64,
}

/// Strategy deciding when loop buffering stops and Code Reuse begins
/// (§2.2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferingStrategy {
    /// Buffer exactly one iteration, then promote. Gates earlier but uses
    /// the queue less efficiently for small loops.
    SingleIteration,
    /// Keep buffering whole iterations while the free entries can hold
    /// another one (predicted by the iteration-size counter). This is the
    /// strategy the paper evaluates: it "automatically unrolls" the loop.
    MultiIteration,
}

/// Configuration of the reuse issue queue (the paper's contribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReuseConfig {
    /// Master switch; `false` gives the conventional baseline pipeline.
    pub enabled: bool,
    /// Non-bufferable-loop-table entries (0 disables the NBLT).
    pub nblt_entries: u32,
    /// Buffering strategy (§2.2.1).
    pub strategy: BufferingStrategy,
}

impl Default for ReuseConfig {
    fn default() -> Self {
        ReuseConfig { enabled: false, nblt_entries: 8, strategy: BufferingStrategy::MultiIteration }
    }
}

/// Full simulator configuration.
///
/// # Examples
///
/// ```
/// use riq_core::SimConfig;
/// let cfg = SimConfig::baseline().with_iq_size(128).with_reuse(true);
/// assert_eq!(cfg.iq_entries, 128);
/// assert_eq!(cfg.rob_entries, 128, "ROB scales with the IQ (paper §3)");
/// assert_eq!(cfg.lsq_entries, 64, "LSQ is half the IQ (paper §3)");
/// assert!(cfg.reuse.enabled);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions decoded per cycle.
    pub decode_width: u32,
    /// Instructions renamed/dispatched and issued per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Fetch-queue entries.
    pub fetch_queue: u32,
    /// Issue-queue entries.
    pub iq_entries: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Load/store-queue entries.
    pub lsq_entries: u32,
    /// Function units.
    pub fu: FuConfig,
    /// Operation latencies.
    pub latency: LatencyConfig,
    /// Memory hierarchy.
    pub mem: HierarchyConfig,
    /// Branch predictor.
    pub bpred: PredictorConfig,
    /// Reuse issue queue.
    pub reuse: ReuseConfig,
    /// Issue-stage scheduling policy.
    pub policy: IssuePolicyKind,
    /// Hard cycle budget; the run fails if `halt` has not committed by then.
    pub max_cycles: u64,
}

impl SimConfig {
    /// The paper's Table 1 baseline configuration (reuse disabled).
    #[must_use]
    pub fn baseline() -> SimConfig {
        SimConfig {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            fetch_queue: 4,
            iq_entries: 64,
            rob_entries: 64,
            lsq_entries: 32,
            fu: FuConfig { int_alu: 4, int_mult: 1, fp_alu: 4, fp_mult: 1, mem_ports: 2 },
            latency: LatencyConfig {
                int_alu: 1,
                int_mult: 3,
                int_div: 20,
                fp_alu: 2,
                fp_mult: 4,
                fp_div: 12,
                fp_sqrt: 24,
            },
            mem: HierarchyConfig::table1(),
            bpred: PredictorConfig::table1(),
            reuse: ReuseConfig::default(),
            policy: IssuePolicyKind::Oldest,
            max_cycles: 200_000_000,
        }
    }

    /// Scales the window to an issue-queue size, keeping the paper's §3
    /// relation: ROB = IQ, LSQ = IQ / 2.
    #[must_use]
    pub fn with_iq_size(mut self, iq: u32) -> SimConfig {
        self.iq_entries = iq;
        self.rob_entries = iq;
        self.lsq_entries = (iq / 2).max(4);
        self
    }

    /// Enables or disables the reuse issue queue.
    #[must_use]
    pub fn with_reuse(mut self, enabled: bool) -> SimConfig {
        self.reuse.enabled = enabled;
        self
    }

    /// Sets the NBLT size (0 disables it).
    #[must_use]
    pub fn with_nblt(mut self, entries: u32) -> SimConfig {
        self.reuse.nblt_entries = entries;
        self
    }

    /// Sets the buffering strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: BufferingStrategy) -> SimConfig {
        self.reuse.strategy = strategy;
        self
    }

    /// Sets the issue-stage scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: IssuePolicyKind) -> SimConfig {
        self.policy = policy;
        self
    }

    /// A stable fingerprint of the full configuration. Two configurations
    /// fingerprint equal exactly when they are `==`; the value does not
    /// vary across processes or platforms, so `(program, config)`
    /// fingerprint pairs can key shared simulation-result caches.
    ///
    /// # Examples
    ///
    /// ```
    /// use riq_core::SimConfig;
    /// let a = SimConfig::baseline().with_iq_size(64).fingerprint();
    /// assert_eq!(a, SimConfig::baseline().fingerprint(), "64 is the baseline size");
    /// assert_ne!(a, SimConfig::baseline().with_reuse(true).fingerprint());
    /// ```
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        riq_isa::fingerprint_of(self)
    }

    /// The derived power-model geometry.
    #[must_use]
    pub fn power_config(&self) -> PowerConfig {
        PowerConfig {
            fetch_width: self.fetch_width,
            issue_width: self.issue_width,
            fetch_queue: self.fetch_queue,
            iq_entries: self.iq_entries,
            rob_entries: self.rob_entries,
            lsq_entries: self.lsq_entries,
            icache: (self.mem.il1.sets, self.mem.il1.ways, self.mem.il1.line_bytes),
            dcache: (self.mem.dl1.sets, self.mem.dl1.ways, self.mem.dl1.line_bytes),
            l2: (self.mem.l2.sets, self.mem.l2.ways, self.mem.l2.line_bytes),
            bpred_entries: 2048,
            btb: (self.bpred.btb_sets, self.bpred.btb_ways),
            ras_entries: self.bpred.ras_entries,
            nblt_entries: if self.reuse.enabled { self.reuse.nblt_entries } else { 0 },
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when any width or structure size is zero, or the
    /// widths exceed the structures they drain into.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let nz = |v: u32, what: &'static str| {
            if v == 0 {
                Err(ConfigError::Zero(what))
            } else {
                Ok(())
            }
        };
        nz(self.fetch_width, "fetch_width")?;
        nz(self.decode_width, "decode_width")?;
        nz(self.issue_width, "issue_width")?;
        nz(self.commit_width, "commit_width")?;
        nz(self.fetch_queue, "fetch_queue")?;
        nz(self.iq_entries, "iq_entries")?;
        nz(self.rob_entries, "rob_entries")?;
        nz(self.lsq_entries, "lsq_entries")?;
        nz(self.fu.int_alu, "fu.int_alu")?;
        nz(self.fu.int_mult, "fu.int_mult")?;
        nz(self.fu.fp_alu, "fu.fp_alu")?;
        nz(self.fu.fp_mult, "fu.fp_mult")?;
        nz(self.fu.mem_ports, "fu.mem_ports")?;
        if self.rob_entries < self.iq_entries {
            return Err(ConfigError::RobSmallerThanIq {
                rob: self.rob_entries,
                iq: self.iq_entries,
            });
        }
        Ok(())
    }
}

/// Error validating a [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A width or size that must be non-zero was zero.
    Zero(&'static str),
    /// The ROB must be at least as large as the issue queue (otherwise
    /// buffered loops could never fully dispatch).
    RobSmallerThanIq {
        /// Configured ROB entries.
        rob: u32,
        /// Configured IQ entries.
        iq: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero(what) => write!(f, "{what} must be non-zero"),
            ConfigError::RobSmallerThanIq { rob, iq } => {
                write!(f, "rob_entries ({rob}) must be >= iq_entries ({iq})")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = SimConfig::baseline();
        assert_eq!(c.iq_entries, 64);
        assert_eq!(c.lsq_entries, 32);
        assert_eq!(c.rob_entries, 64);
        assert_eq!(c.fetch_queue, 4);
        assert_eq!((c.fetch_width, c.issue_width, c.commit_width), (4, 4, 4));
        assert_eq!(c.fu.int_alu, 4);
        assert_eq!(c.fu.int_mult, 1);
        assert_eq!(c.fu.fp_alu, 4);
        assert_eq!(c.fu.fp_mult, 1);
        assert!(!c.reuse.enabled);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn iq_scaling_rule() {
        for iq in [32u32, 64, 128, 256] {
            let c = SimConfig::baseline().with_iq_size(iq);
            assert_eq!(c.rob_entries, iq);
            assert_eq!(c.lsq_entries, iq / 2);
            assert!(c.validate().is_ok());
        }
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut c = SimConfig::baseline();
        c.issue_width = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero("issue_width")));
        let mut c = SimConfig::baseline();
        c.rob_entries = 16;
        assert!(matches!(c.validate(), Err(ConfigError::RobSmallerThanIq { .. })));
    }

    #[test]
    fn power_config_mirrors_geometry() {
        let c = SimConfig::baseline().with_iq_size(128).with_reuse(true);
        let p = c.power_config();
        assert_eq!(p.iq_entries, 128);
        assert_eq!(p.nblt_entries, 8);
        let b = SimConfig::baseline().power_config();
        assert_eq!(b.nblt_entries, 0, "baseline carries no NBLT cost");
    }
}
