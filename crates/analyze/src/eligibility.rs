//! Static reuse-eligibility classification of natural loops.
//!
//! Mirrors the reuse controller's rules (`crates/core/src/reuse.rs`) on the
//! *contiguous address span* `[head, tail]` — the window the hardware
//! actually buffers — rather than the CFG body set:
//!
//! * `capturable_loop_end`: a backward (`target < pc`) conditional branch
//!   or direct jump whose span `(pc - target)/4 + 1` fits the queue;
//! * a different capturable loop end inside the span revokes the outer
//!   loop (inner-loop rule, §2.2.3);
//! * a `jr` in the span is an unpaired return (§2.2.2) — in-span code runs
//!   at call depth 0, so a return there always revokes;
//! * direct calls buffer their callee bodies too, so the per-iteration
//!   footprint is the span plus every transitively called procedure's
//!   size; recursion makes that unbounded;
//! * the whole footprint must fit the queue or buffering dies on
//!   queue-full.

use crate::cfg::Cfg;
use crate::loops::NaturalLoop;
use riq_asm::Program;
use riq_isa::{CtrlKind, Inst, INST_BYTES};
use std::collections::BTreeSet;

/// Issue-queue capacities the analysis classifies against (the paper's
/// sweep points plus 128).
pub const CAPACITIES: [u32; 5] = [16, 32, 64, 128, 256];

/// Why a loop can or cannot be captured by a reuse queue of a given size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Eligibility {
    /// The hardware can buffer and promote this loop.
    Eligible {
        /// Static per-iteration footprint: span plus transitive callee sizes.
        iter_size: u32,
        /// Conditional branches/jumps in the span targeting outside it.
        side_exits: u32,
        /// Direct call sites in the span.
        calls: u32,
    },
    /// The closing transfer is not backward (`target >= pc` at the tail).
    NotBackward,
    /// The span alone exceeds the queue capacity.
    TooLarge,
    /// A different capturable loop end sits inside the span; buffering the
    /// outer loop is always revoked in favor of the inner one.
    InnerLoop {
        /// Address of the inner loop-ending transfer.
        inner_tail: u32,
    },
    /// Span fits but span + transitive callee bodies does not: buffering
    /// dies on queue-full before a full iteration is captured.
    DoesNotFit {
        /// Static per-iteration footprint that overflows the queue.
        iter_size: u32,
    },
    /// A `jr` inside the span: an unpaired return revokes buffering.
    UnpairedReturn {
        /// Address of the return.
        at: u32,
    },
    /// A `jalr` inside the span: the callee is statically unknown, so the
    /// footprint is unbounded from the analysis' point of view.
    IndirectCall {
        /// Address of the indirect call.
        at: u32,
    },
    /// A call in the span reaches itself transitively: the buffered
    /// footprint is unbounded.
    Recursion {
        /// Address of the call site that closes the cycle.
        at: u32,
    },
}

impl Eligibility {
    /// Whether the hardware can capture the loop.
    #[must_use]
    pub fn is_eligible(&self) -> bool {
        matches!(self, Eligibility::Eligible { .. })
    }

    /// Stable lowercase tag for reports.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            Eligibility::Eligible { .. } => "eligible",
            Eligibility::NotBackward => "not_backward",
            Eligibility::TooLarge => "too_large",
            Eligibility::InnerLoop { .. } => "inner_loop",
            Eligibility::DoesNotFit { .. } => "does_not_fit",
            Eligibility::UnpairedReturn { .. } => "unpaired_return",
            Eligibility::IndirectCall { .. } => "indirect_call",
            Eligibility::Recursion { .. } => "recursion",
        }
    }
}

/// `ReuseController::capturable_loop_end`, statically: is the instruction
/// at `pc` a backward branch/jump whose span fits a queue of `capacity`?
#[must_use]
pub fn capturable_loop_end(pc: u32, inst: &Inst, capacity: u32) -> Option<(u32, u32)> {
    let kind = inst.ctrl_kind()?;
    if !matches!(kind, CtrlKind::CondBranch | CtrlKind::Jump) {
        return None;
    }
    let target = inst.static_target(pc)?;
    if target >= pc {
        return None;
    }
    let size = (pc - target) / INST_BYTES + 1;
    (size <= capacity).then_some((target, size))
}

/// Classifies `lp` against a reuse queue of `capacity` entries.
#[must_use]
pub fn classify(program: &Program, cfg: &Cfg, lp: &NaturalLoop, capacity: u32) -> Eligibility {
    if lp.head >= lp.tail {
        // Includes single-instruction self-loops: the hardware requires a
        // strictly backward transfer (`target < pc`).
        return Eligibility::NotBackward;
    }
    if lp.span() > capacity {
        return Eligibility::TooLarge;
    }

    let mut side_exits = 0u32;
    let mut calls = 0u32;
    let mut callee_cost = 0u32;
    let in_span = |a: u32| a >= lp.head && a <= lp.tail;

    let mut pc = lp.head;
    while pc <= lp.tail {
        let Ok(inst) = program.inst_at(pc) else {
            pc += INST_BYTES;
            continue; // undecodable words are lint errors, not loop features
        };
        if pc != lp.tail && capturable_loop_end(pc, &inst, capacity).is_some() {
            return Eligibility::InnerLoop { inner_tail: pc };
        }
        match inst.ctrl_kind() {
            Some(CtrlKind::Return) => return Eligibility::UnpairedReturn { at: pc },
            Some(CtrlKind::IndirectCall) => return Eligibility::IndirectCall { at: pc },
            Some(CtrlKind::Call) => {
                calls += 1;
                if let Some(callee) = cfg.block_starting_at(inst.static_target(pc).unwrap_or(0)) {
                    let mut on_stack = BTreeSet::new();
                    match procedure_size(cfg, callee, &mut on_stack) {
                        Ok(size) => callee_cost += size,
                        Err(at) => return Eligibility::Recursion { at },
                    }
                }
            }
            Some(CtrlKind::CondBranch | CtrlKind::Jump) if pc != lp.tail => {
                if let Some(target) = inst.static_target(pc) {
                    if !in_span(target) {
                        side_exits += 1;
                    }
                }
            }
            _ => {}
        }
        pc += INST_BYTES;
    }

    let iter_size = lp.span() + callee_cost;
    if iter_size > capacity {
        return Eligibility::DoesNotFit { iter_size };
    }
    Eligibility::Eligible { iter_size, side_exits, calls }
}

/// Static instruction count buffered by one execution of the procedure
/// whose entry block is `entry`: all intraprocedurally reachable blocks
/// plus, for every direct call site among them, the size of that callee.
/// `Err(call_pc)` when the walk re-enters a procedure already on the call
/// stack (recursion).
fn procedure_size(cfg: &Cfg, entry: usize, on_stack: &mut BTreeSet<usize>) -> Result<u32, u32> {
    if !on_stack.insert(entry) {
        return Err(cfg.blocks[entry].start);
    }
    // Intraprocedural reachable set: follow `succs` only (the call-summary
    // edge stands in for the callee, which is costed separately below).
    let mut seen = BTreeSet::from([entry]);
    let mut work = vec![entry];
    let mut size = 0u32;
    let mut result = Ok(());
    while let Some(b) = work.pop() {
        let block = &cfg.blocks[b];
        size += block.insts.len() as u32;
        if let Some(callee) = block.call_succ {
            if on_stack.contains(&callee) {
                result = Err(block.end());
                break;
            }
            match procedure_size(cfg, callee, on_stack) {
                Ok(s) => size += s,
                Err(at) => {
                    result = Err(at);
                    break;
                }
            }
        }
        for &s in &block.succs {
            if seen.insert(s) {
                work.push(s);
            }
        }
    }
    on_stack.remove(&entry);
    result.map(|()| size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::loops::find_loops;
    use riq_asm::assemble;

    fn classified(src: &str, capacity: u32) -> Vec<(u32, Eligibility)> {
        let p = assemble(src).expect("test source assembles");
        let c = Cfg::build(&p);
        let d = Dominators::compute(&c);
        find_loops(&c, &d).iter().map(|l| (l.head, classify(&p, &c, l, capacity))).collect()
    }

    #[test]
    fn small_loop_eligible_with_exact_iter_size() {
        let r = classified(
            ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
            64,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1, Eligibility::Eligible { iter_size: 2, side_exits: 0, calls: 0 });
    }

    #[test]
    fn capacity_threshold_is_exact() {
        // 4-instruction span: eligible at capacity 4, TooLarge at 3.
        let src = ".text\nloop:\n  addi $r2, $r2, -1\n  addi $r3, $r3, 1\n  addi $r4, $r4, 1\n  bne $r2, $r0, loop\n  halt\n";
        assert!(classified(src, 4)[0].1.is_eligible());
        assert_eq!(classified(src, 3)[0].1, Eligibility::TooLarge);
    }

    #[test]
    fn nested_outer_is_inner_loop_class() {
        let src = ".text\n  li $r2, 3\nouter:\n  li $r3, 4\ninner:\n  addi $r3, $r3, -1\n  bne $r3, $r0, inner\n  addi $r2, $r2, -1\n  bne $r2, $r0, outer\n  halt\n";
        let r = classified(src, 64);
        // Loops sort by head address: the outer (earlier head) is
        // disqualified by the inner; the inner stays eligible.
        assert!(matches!(r[0].1, Eligibility::InnerLoop { .. }), "outer: {r:?}");
        assert!(r[1].1.is_eligible(), "inner loop stays eligible: {r:?}");
    }

    #[test]
    fn self_loop_is_not_backward() {
        let r = classified(".text\nspin:\n  bne $r2, $r0, spin\n  halt\n", 64);
        assert_eq!(r[0].1, Eligibility::NotBackward);
    }

    #[test]
    fn return_in_span_is_unpaired() {
        // The jr sits inside the span on a conditional path; the loop is
        // otherwise well-formed.
        let r = classified(
            ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  beq $r2, $r0, skip\n  jr $ra\nskip:\n  bne $r2, $r0, loop\n  halt\n",
            64,
        );
        assert!(matches!(r[0].1, Eligibility::UnpairedReturn { .. }), "{r:?}");
    }

    #[test]
    fn call_counts_callee_body_toward_footprint() {
        // Loop span 3 + leaf body 2 = 5: eligible at 5, DoesNotFit at 4.
        let src = ".text\n  li $r2, 9\nloop:\n  jal leaf\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\nleaf:\n  addi $r3, $r3, 1\n  jr $ra\n";
        match classified(src, 5)[0].1 {
            Eligibility::Eligible { iter_size, calls, .. } => {
                assert_eq!(iter_size, 5);
                assert_eq!(calls, 1);
            }
            ref e => panic!("expected eligible, got {e:?}"),
        }
        assert_eq!(classified(src, 4)[0].1, Eligibility::DoesNotFit { iter_size: 5 });
    }

    #[test]
    fn recursive_callee_disqualifies() {
        let src = ".text\n  li $r2, 3\nloop:\n  jal rec\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\nrec:\n  blez $r4, out\n  jal rec\nout:\n  jr $ra\n";
        let r = classified(src, 64);
        assert!(matches!(r[0].1, Eligibility::Recursion { .. }), "{r:?}");
    }

    #[test]
    fn data_dependent_exit_counts_as_side_exit() {
        let src = ".text\n  li $r2, 9\nloop:\n  beq $r3, $r0, escape\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\nescape:\n  halt\n";
        match classified(src, 64)[0].1 {
            Eligibility::Eligible { side_exits, .. } => assert_eq!(side_exits, 1),
            ref e => panic!("expected eligible, got {e:?}"),
        }
    }

    #[test]
    fn capturability_matches_reuse_controller_rules() {
        use riq_isa::IntReg;
        let bne = |off| Inst::Bne { rs: IntReg::new(2), rt: IntReg::ZERO, off };
        // Same truth table as ReuseController::capturable_loop_end.
        // Branch offsets are relative to pc+4: off -5 at 0x110 -> 0x100.
        assert_eq!(capturable_loop_end(0x110, &bne(-5), 64), Some((0x100, 5)));
        assert_eq!(capturable_loop_end(0x110, &bne(-5), 4), None, "span 5 > cap 4");
        assert_eq!(capturable_loop_end(0x110, &bne(2), 64), None, "forward");
        assert_eq!(capturable_loop_end(0x110, &bne(-1), 64), None, "self-target is not backward");
        assert_eq!(capturable_loop_end(0x110, &bne(-2), 64), Some((0x10c, 2)));
        assert_eq!(
            capturable_loop_end(0x110, &Inst::Jal { target: 0x100 }, 64),
            None,
            "calls never end loops"
        );
        assert_eq!(capturable_loop_end(0x110, &Inst::J { target: 0x100 }, 64), Some((0x100, 5)));
    }
}
