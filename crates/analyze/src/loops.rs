//! Natural-loop identification.
//!
//! A natural loop is induced by a *back edge* `u → v` where `v` dominates
//! `u`. The loop body is `v` plus every block that can reach `u` without
//! passing through `v`. Back edges are restricted to conditional-branch and
//! direct-jump terminators — the two shapes the reuse issue queue's loop
//! detector recognizes (`capturable_loop_end` in the core simulator) —
//! which keeps recursion cycles through call edges from masquerading as
//! loops.

use crate::cfg::Cfg;
use crate::dom::Dominators;
use riq_isa::{CtrlKind, INST_BYTES};
use std::collections::BTreeSet;

/// Shape of the control transfer closing a natural loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackKind {
    /// A conditional branch (`beq`/`bne`/`blez`/...).
    CondBranch,
    /// An unconditional direct jump (`j`).
    Jump,
}

impl BackKind {
    /// Stable lowercase tag for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BackKind::CondBranch => "cond_branch",
            BackKind::Jump => "jump",
        }
    }
}

/// One natural loop of the CFG.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Address of the loop head (target of the back edge).
    pub head: u32,
    /// Address of the loop-closing control transfer (the back edge source).
    pub tail: u32,
    /// Block index of the head.
    pub head_block: usize,
    /// Block index of the tail.
    pub tail_block: usize,
    /// Body blocks (head and tail included), as CFG block indices.
    pub body: BTreeSet<usize>,
    /// Shape of the loop-closing transfer.
    pub back_kind: BackKind,
}

impl NaturalLoop {
    /// Instructions in the contiguous address span `[head, tail]` — the
    /// window the reuse issue queue buffers, which may include blocks that
    /// are not part of the CFG body (e.g. skipped-over side code).
    #[must_use]
    pub fn span(&self) -> u32 {
        (self.tail - self.head) / INST_BYTES + 1
    }

    /// Whether the loop-closing transfer is backward (`head < tail`) —
    /// a forward "loop" (possible with `j` to a later address dominated
    /// from above) is never capturable by the hardware.
    #[must_use]
    pub fn is_backward(&self) -> bool {
        self.head <= self.tail
    }
}

/// Finds all natural loops of `cfg`, sorted by `(head, tail)`.
///
/// Loops sharing a head but closed by different tails (continue-style
/// control flow) are reported separately: the reuse hardware keys its NBLT
/// on the *tail* address, so each back edge is its own capture candidate.
#[must_use]
pub fn find_loops(cfg: &Cfg, doms: &Dominators) -> Vec<NaturalLoop> {
    let mut loops = Vec::new();
    for (u, block) in cfg.blocks.iter().enumerate() {
        let Some(&(tail_pc, term)) = block.terminator() else { continue };
        let back_kind = match term.ctrl_kind() {
            Some(CtrlKind::CondBranch) => BackKind::CondBranch,
            Some(CtrlKind::Jump) => BackKind::Jump,
            _ => continue,
        };
        let Some(target) = term.static_target(tail_pc) else { continue };
        let Some(v) = cfg.block_starting_at(target) else { continue };
        if !block.succs.contains(&v) || !doms.dominates(v, u) {
            continue;
        }
        // Body: v plus everything reaching u backwards without crossing v.
        let mut body = BTreeSet::from([v, u]);
        let mut work = if u == v { Vec::new() } else { vec![u] };
        while let Some(b) = work.pop() {
            for &p in &cfg.blocks[b].preds {
                if body.insert(p) {
                    work.push(p);
                }
            }
            // `insert(v)` above can't happen: v is seeded into `body`.
        }
        loops.push(NaturalLoop {
            head: target,
            tail: tail_pc,
            head_block: v,
            tail_block: u,
            body,
            back_kind,
        });
    }
    loops.sort_by_key(|l| (l.head, l.tail));
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    fn loops_of(src: &str) -> (riq_asm::Program, Cfg, Vec<NaturalLoop>) {
        let p = assemble(src).expect("test source assembles");
        let c = Cfg::build(&p);
        let d = Dominators::compute(&c);
        let l = find_loops(&c, &d);
        (p, c, l)
    }

    #[test]
    fn simple_counted_loop() {
        let (p, _, l) = loops_of(
            ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].head, p.symbol("loop").unwrap());
        assert_eq!(l[0].span(), 2);
        assert_eq!(l[0].back_kind, BackKind::CondBranch);
        assert!(l[0].is_backward());
    }

    #[test]
    fn nested_loops_both_found() {
        let (p, _, l) = loops_of(
            ".text\n  li $r2, 3\nouter:\n  li $r3, 4\ninner:\n  addi $r3, $r3, -1\n  bne $r3, $r0, inner\n  addi $r2, $r2, -1\n  bne $r2, $r0, outer\n  halt\n",
        );
        assert_eq!(l.len(), 2);
        let inner = l.iter().find(|x| x.head == p.symbol("inner").unwrap()).unwrap();
        let outer = l.iter().find(|x| x.head == p.symbol("outer").unwrap()).unwrap();
        assert!(inner.span() < outer.span(), "inner span strictly inside outer");
        assert!(outer.body.is_superset(&inner.body), "inner body nested in outer");
    }

    #[test]
    fn recursion_is_not_a_loop() {
        // `jal rec` inside rec forms a cycle through the call edge, but call
        // edges never close natural loops.
        let (_, _, l) = loops_of(
            ".text\n  jal rec\n  halt\nrec:\n  addi $r2, $r2, 1\n  blez $r2, done\n  jal rec\ndone:\n  jr $ra\n",
        );
        assert!(l.is_empty(), "recursion must not register as a natural loop: {l:?}");
    }

    #[test]
    fn jump_closed_loop_found() {
        let (p, _, l) = loops_of(
            ".text\nhead:\n  beq $r2, $r0, out\n  addi $r2, $r2, -1\n  j head\nout:\n  halt\n",
        );
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].head, p.symbol("head").unwrap());
        assert_eq!(l[0].back_kind, BackKind::Jump);
    }

    #[test]
    fn self_loop_single_block() {
        let (p, _, l) = loops_of(".text\nspin:\n  bne $r2, $r0, spin\n  halt\n");
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].head, p.symbol("spin").unwrap());
        assert_eq!(l[0].head, l[0].tail);
        assert_eq!(l[0].span(), 1);
        assert_eq!(l[0].body.len(), 1);
    }

    #[test]
    fn two_tails_one_head_reported_separately() {
        // continue-style: two distinct back edges to the same head.
        let (p, _, l) = loops_of(
            ".text\n  li $r2, 8\nhead:\n  addi $r2, $r2, -1\n  blez $r2, out\n  andi $r3, $r2, 1\n  bne $r3, $r0, head\n  addi $r4, $r4, 1\n  bne $r2, $r0, head\nout:\n  halt\n",
        );
        let to_head: Vec<_> = l.iter().filter(|x| x.head == p.symbol("head").unwrap()).collect();
        assert_eq!(to_head.len(), 2, "each back edge is its own loop: {l:?}");
        assert_ne!(to_head[0].tail, to_head[1].tail);
    }
}
