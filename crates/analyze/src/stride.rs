//! Per-loop memory stride and alias-window classification.
//!
//! For every natural loop, classifies each in-span load/store by the
//! *stride* of its base register (the net constant self-increment the
//! span applies to it per iteration) and resolves, via constant
//! propagation, the concrete address window `[addr, addr+width)` of refs
//! whose base is provably constant at their program point. Two windows
//! through **different** base registers that overlap — with at least one
//! store — predict a memory-order violation inside the reuse-capture
//! span: the recovery squash revokes buffering (`RevokeReason::Recovery`),
//! so such loops rarely pay for themselves. The pass reports them per
//! loop and feeds the `reuse-alias-window` lint warning.
//!
//! Same-base read-modify-write pairs are deliberately exempt: the
//! dependence is seen by the LSQ in program order and does not squash.

use crate::cfg::Cfg;
use crate::constprop::{block_in_states, transfer_inst, Val};
use crate::lint::{Diag, Severity};
use crate::loops::NaturalLoop;
use riq_asm::Program;
use riq_isa::{AluImmOp, ArchReg, Inst, IntReg};
use std::collections::BTreeMap;

/// One load or store inside a loop span.
#[derive(Debug, Clone, Copy)]
pub struct MemRef {
    /// Instruction address.
    pub pc: u32,
    /// Base register number.
    pub base: u8,
    /// Signed immediate offset.
    pub off: i32,
    /// Access width in bytes (4 or 8).
    pub width: u32,
    /// Whether the access writes memory.
    pub is_store: bool,
    /// Net constant change of the base per iteration: `Some(0)` for a
    /// loop-invariant base, `None` when any in-span write to the base is
    /// not a constant self-increment.
    pub stride: Option<i64>,
    /// Resolved constant address, when the base is provably constant at
    /// this program point on every path.
    pub addr: Option<u32>,
}

/// Memory behavior summary of one loop.
#[derive(Debug, Clone, Default)]
pub struct LoopMem {
    /// In-span memory references, in address order.
    pub refs: Vec<MemRef>,
    /// Aliasing `(pc_a, pc_b)` pairs assigned to this loop (innermost
    /// span containing both), lowest addresses first.
    pub alias_pairs: Vec<(u32, u32)>,
}

impl LoopMem {
    /// In-span loads.
    #[must_use]
    pub fn loads(&self) -> u32 {
        self.refs.iter().filter(|r| !r.is_store).count() as u32
    }

    /// In-span stores.
    #[must_use]
    pub fn stores(&self) -> u32 {
        self.refs.iter().filter(|r| r.is_store).count() as u32
    }

    /// Refs whose base stride is a proven constant.
    #[must_use]
    pub fn strided(&self) -> u32 {
        self.refs.iter().filter(|r| r.stride.is_some()).count() as u32
    }

    /// Stable access-pattern tag: `none` (no memory), `aliasing`
    /// (overlapping cross-base windows), `strided` (every base stride
    /// proven), or `irregular`.
    #[must_use]
    pub fn class(&self) -> &'static str {
        if self.refs.is_empty() {
            "none"
        } else if !self.alias_pairs.is_empty() {
            "aliasing"
        } else if self.refs.iter().all(|r| r.stride.is_some()) {
            "strided"
        } else {
            "irregular"
        }
    }
}

fn mem_operands(inst: &Inst) -> Option<(IntReg, i16, bool)> {
    match *inst {
        Inst::Lw { base, off, .. } => Some((base, off, false)),
        Inst::Ld { base, off, .. } => Some((base, off, false)),
        Inst::Sw { base, off, .. } => Some((base, off, true)),
        Inst::Sd { base, off, .. } => Some((base, off, true)),
        _ => None,
    }
}

/// Net constant self-increment of `reg` over the span, or `None` when a
/// write is not of the `addi reg, reg, k` shape.
fn span_stride(program: &Program, lp: &NaturalLoop, reg: IntReg) -> Option<i64> {
    let mut stride = 0i64;
    let mut pc = lp.head;
    while pc <= lp.tail {
        if let Ok(inst) = program.inst_at(pc) {
            if inst.dest() == Some(ArchReg::Int(reg)) {
                match inst {
                    Inst::AluImm { op: AluImmOp::Addi, rt, rs, imm } if rt == reg && rs == reg => {
                        stride += i64::from(imm);
                    }
                    _ => return None,
                }
            }
        }
        pc += riq_isa::INST_BYTES;
    }
    Some(stride)
}

/// Runs the stride/alias pass over every loop. The result is aligned
/// with `loops`.
#[must_use]
pub fn mem_summary(program: &Program, cfg: &Cfg, loops: &[NaturalLoop]) -> Vec<LoopMem> {
    // Resolve constant addresses for every memory op in one CFG walk.
    let in_states = block_in_states(cfg);
    let mut addr_at: BTreeMap<u32, u32> = BTreeMap::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        let Some(mut state) = in_states[b] else { continue };
        for &(pc, inst) in &block.insts {
            if let Some((base, off, _)) = mem_operands(&inst) {
                if let Val::Const(basev) = state[base.number() as usize] {
                    addr_at.insert(pc, basev.wrapping_add(off as i32 as u32));
                }
            }
            transfer_inst(&mut state, pc, &inst);
        }
    }

    let mut out: Vec<LoopMem> = loops
        .iter()
        .map(|lp| {
            let mut refs = Vec::new();
            let mut pc = lp.head;
            while pc <= lp.tail {
                if let Ok(inst) = program.inst_at(pc) {
                    if let Some((base, off, is_store)) = mem_operands(&inst) {
                        refs.push(MemRef {
                            pc,
                            base: base.number(),
                            off: i32::from(off),
                            width: inst.mem_width().unwrap_or(4),
                            is_store,
                            stride: span_stride(program, lp, base),
                            addr: addr_at.get(&pc).copied(),
                        });
                    }
                }
                pc += riq_isa::INST_BYTES;
            }
            LoopMem { refs, alias_pairs: Vec::new() }
        })
        .collect();

    // Cross-base overlapping windows, assigned to the innermost loop span
    // containing both references.
    let mut pairs: Vec<(usize, u32, u32)> = Vec::new();
    for (i, mem) in out.iter().enumerate() {
        for (ai, a) in mem.refs.iter().enumerate() {
            for b in mem.refs.iter().skip(ai + 1) {
                if !(a.is_store || b.is_store) || a.base == b.base {
                    continue;
                }
                let (Some(aa), Some(ba)) = (a.addr, b.addr) else { continue };
                let overlap = aa < ba.wrapping_add(b.width) && ba < aa.wrapping_add(a.width);
                if !overlap {
                    continue;
                }
                let innermost = loops
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| {
                        l.head <= a.pc && a.pc <= l.tail && l.head <= b.pc && b.pc <= l.tail
                    })
                    .min_by_key(|(_, l)| (l.span(), l.head, l.tail))
                    .map(|(j, _)| j);
                if innermost == Some(i) {
                    pairs.push((i, a.pc.min(b.pc), a.pc.max(b.pc)));
                }
            }
        }
    }
    for (i, a, b) in pairs {
        out[i].alias_pairs.push((a, b));
    }
    for mem in &mut out {
        mem.alias_pairs.sort_unstable();
        mem.alias_pairs.dedup();
    }
    out
}

/// The `reuse-alias-window` lint warnings for a computed [`mem_summary`]:
/// one per aliasing loop, anchored at the first pair's later reference.
#[must_use]
pub fn alias_diags(program: &Program, loops: &[NaturalLoop], mems: &[LoopMem]) -> Vec<Diag> {
    let whereis = |a: u32| program.symbolize(a).unwrap_or_else(|| format!("{a:#x}"));
    loops
        .iter()
        .zip(mems.iter())
        .filter(|(_, m)| !m.alias_pairs.is_empty())
        .map(|(lp, m)| {
            let (a, b) = m.alias_pairs[0];
            Diag {
                severity: Severity::Warning,
                code: "reuse-alias-window",
                pc: Some(b),
                message: format!(
                    "load/store windows at {} and {} alias within the reuse-capture span \
                     of the loop at {} ({} aliasing pair(s)) — a memory-order squash here \
                     revokes buffering",
                    whereis(a),
                    whereis(b),
                    whereis(lp.head),
                    m.alias_pairs.len()
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::loops::find_loops;

    fn pass(src: &str) -> (Program, Vec<NaturalLoop>, Vec<LoopMem>) {
        let p = riq_asm::assemble(src).expect("test source assembles");
        let cfg = Cfg::build(&p);
        let doms = Dominators::compute(&cfg);
        let loops = find_loops(&cfg, &doms);
        let mems = mem_summary(&p, &cfg, &loops);
        (p, loops, mems)
    }

    #[test]
    fn pointer_bump_gives_constant_stride() {
        let (_, _, m) = pass(
            ".data\nbuf: .space 64\n.text\n  la $r16, buf\n  li $r2, 8\nloop:\n  lw $r3, 0($r16)\n  addi $r16, $r16, 4\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        assert_eq!(m[0].refs.len(), 1);
        assert_eq!(m[0].refs[0].stride, Some(4));
        assert!(!m[0].refs[0].is_store);
        assert_eq!(m[0].class(), "strided");
        assert!(m[0].refs[0].addr.is_none(), "bumped base is unknown at the head");
    }

    #[test]
    fn cross_base_overlap_is_aliasing() {
        // Two bases resolve to overlapping windows over buf; the loop body
        // never redefines them, so both addresses stay provable.
        let (p, loops, m) = pass(
            ".data\nbuf: .space 64\n.text\n  la $r14, buf\n  la $r15, buf\n  addi $r15, $r15, 4\n  li $r2, 8\nloop:\n  sw $r3, 4($r14)\n  lw $r4, 0($r15)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        assert_eq!(m[0].alias_pairs.len(), 1);
        assert_eq!(m[0].class(), "aliasing");
        let diags = alias_diags(&p, &loops, &m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "reuse-alias-window");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn same_base_rmw_is_exempt() {
        let (p, loops, m) = pass(
            ".data\nbuf: .space 64\n.text\n  la $r14, buf\n  li $r2, 8\nloop:\n  lw $r3, 0($r14)\n  addi $r3, $r3, 1\n  sw $r3, 0($r14)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        assert!(m[0].alias_pairs.is_empty(), "same-base RMW must not warn");
        assert!(alias_diags(&p, &loops, &m).is_empty());
    }

    #[test]
    fn disjoint_windows_do_not_alias() {
        let (_, _, m) = pass(
            ".data\nbuf: .space 64\n.text\n  la $r14, buf\n  la $r15, buf\n  addi $r15, $r15, 16\n  li $r2, 8\nloop:\n  sw $r3, 0($r14)\n  lw $r4, 0($r15)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        assert!(m[0].alias_pairs.is_empty());
    }

    #[test]
    fn load_load_overlap_is_harmless() {
        let (_, _, m) = pass(
            ".data\nbuf: .space 64\n.text\n  la $r14, buf\n  la $r15, buf\n  li $r2, 8\nloop:\n  lw $r3, 0($r14)\n  lw $r4, 0($r15)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        assert!(m[0].alias_pairs.is_empty(), "no store, no squash");
    }

    #[test]
    fn pair_lands_on_innermost_loop_only() {
        let (p, loops, m) = pass(
            ".data\nbuf: .space 64\n.text\n  la $r14, buf\n  la $r15, buf\n  li $r2, 3\nouter:\n  li $r3, 4\ninner:\n  sw $r5, 0($r14)\n  lw $r6, 0($r15)\n  addi $r3, $r3, -1\n  bne $r3, $r0, inner\n  addi $r2, $r2, -1\n  bne $r2, $r0, outer\n  halt\n",
        );
        let inner = loops.iter().position(|l| l.head == p.symbol("inner").unwrap()).unwrap();
        let outer = loops.iter().position(|l| l.head == p.symbol("outer").unwrap()).unwrap();
        assert_eq!(m[inner].alias_pairs.len(), 1);
        assert!(m[outer].alias_pairs.is_empty(), "pair belongs to the innermost span");
        assert_eq!(alias_diags(&p, &loops, &m).len(), 1);
    }

    #[test]
    fn eight_byte_windows_overlap_four_byte_ones() {
        let (_, _, m) = pass(
            ".data\nbuf: .space 64\n.text\n  la $r14, buf\n  la $r15, buf\n  addi $r15, $r15, 4\n  li $r2, 8\nloop:\n  s.d $f0, 0($r14)\n  lw $r4, 0($r15)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        assert_eq!(m[0].alias_pairs.len(), 1, "8-byte store covers [0,8) over the load at 4");
    }
}
