//! Machine-readable (JSON) and human-readable analysis reports.
//!
//! The JSON report is versioned ([`ANALYZE_SCHEMA_VERSION`]) and built
//! exclusively from the program and analysis results — no wall-clock, no
//! host state — so two runs over the same program produce byte-identical
//! output. Consumers should reject schema versions they do not know.

use crate::attribute::prediction_json;
use crate::classmix::Mix;
use crate::dynagree::Agreement;
use crate::eligibility::{classify, Eligibility};
use crate::stride::LoopMem;
use crate::Analysis;
use riq_asm::Program;
use riq_power::EnergyClass;
use riq_trace::JsonValue;
use std::fmt::Write as _;

/// Version of the JSON report layout. Bump on any breaking change.
/// Version 2 adds the predictive-pass sections: per-loop class mixes,
/// trip estimates, memory stride/alias summaries, and benefit
/// predictions, plus the whole-program class-mix partition.
pub const ANALYZE_SCHEMA_VERSION: u64 = 2;

fn u(v: u32) -> JsonValue {
    JsonValue::UInt(u64::from(v))
}

fn s(v: impl Into<String>) -> JsonValue {
    JsonValue::Str(v.into())
}

fn eligibility_json(e: &Eligibility) -> JsonValue {
    let mut pairs: Vec<(&'static str, JsonValue)> = vec![("class", s(e.class()))];
    match *e {
        Eligibility::Eligible { iter_size, side_exits, calls } => {
            pairs.push(("iter_size", u(iter_size)));
            pairs.push(("side_exits", u(side_exits)));
            pairs.push(("calls", u(calls)));
        }
        Eligibility::DoesNotFit { iter_size } => pairs.push(("iter_size", u(iter_size))),
        Eligibility::InnerLoop { inner_tail } => pairs.push(("inner_tail", u(inner_tail))),
        Eligibility::UnpairedReturn { at }
        | Eligibility::IndirectCall { at }
        | Eligibility::Recursion { at } => pairs.push(("at", u(at))),
        Eligibility::NotBackward | Eligibility::TooLarge => {}
    }
    JsonValue::obj(pairs)
}

fn mix_json(m: &Mix) -> JsonValue {
    let mut pairs: Vec<(&'static str, JsonValue)> =
        EnergyClass::ALL.iter().map(|&c| (c.label(), JsonValue::UInt(m.count(c)))).collect();
    pairs.push(("other", JsonValue::UInt(m.other)));
    pairs.push(("total", JsonValue::UInt(m.total())));
    JsonValue::obj(pairs)
}

fn mem_json(m: &LoopMem) -> JsonValue {
    JsonValue::obj([
        ("class", s(m.class())),
        ("loads", u(m.loads())),
        ("stores", u(m.stores())),
        ("strided", u(m.strided())),
        (
            "alias_pairs",
            JsonValue::Arr(
                m.alias_pairs.iter().map(|&(a, b)| JsonValue::Arr(vec![u(a), u(b)])).collect(),
            ),
        ),
    ])
}

fn agreement_json(g: &Agreement) -> JsonValue {
    JsonValue::obj([
        ("iq", u(g.iq)),
        ("eligible_loops", u(g.eligible_loops)),
        ("promoted_loops", u(g.promoted_loops)),
        ("precision", JsonValue::Num(g.precision)),
        ("recall", JsonValue::Num(g.recall)),
        (
            "loops",
            JsonValue::Arr(
                g.loops
                    .iter()
                    .map(|l| {
                        JsonValue::obj([
                            ("head", u(l.head)),
                            ("tail", u(l.tail)),
                            ("statically_eligible", JsonValue::Bool(l.statically_eligible)),
                            ("static_class", s(l.static_class.clone())),
                            ("promotions", JsonValue::UInt(l.promotions)),
                            ("class", s(l.class.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Builds the versioned JSON report for one analyzed program.
///
/// `iq` selects the capacity the headline `eligible` count is computed at;
/// the per-loop section still carries every capacity in [`CAPACITIES`].
/// `agreement` is attached when a dynamic comparison ran.
#[must_use]
pub fn report_json(
    name: &str,
    program: &Program,
    analysis: &Analysis,
    iq: u32,
    agreement: Option<&Agreement>,
) -> JsonValue {
    let whereis = |a: u32| program.symbolize(a).unwrap_or_else(|| format!("{a:#x}"));
    let loops = analysis
        .loops
        .iter()
        .map(|summary| {
            let lp = &summary.natural;
            let per_capacity = JsonValue::Arr(
                summary
                    .per_capacity
                    .iter()
                    .map(|(cap, e)| {
                        JsonValue::obj([("capacity", u(*cap)), ("verdict", eligibility_json(e))])
                    })
                    .collect(),
            );
            JsonValue::obj([
                ("head", u(lp.head)),
                ("head_label", s(whereis(lp.head))),
                ("tail", u(lp.tail)),
                ("span", u(lp.span())),
                ("back_kind", s(lp.back_kind.as_str())),
                ("body_blocks", JsonValue::UInt(lp.body.len() as u64)),
                ("min_capacity", summary.min_capacity.map_or(JsonValue::Null, u)),
                ("at_iq", eligibility_json(&classify(program, &analysis.cfg, lp, iq))),
                ("per_capacity", per_capacity),
                ("est_trips", JsonValue::Num(summary.mix.est_trips)),
                ("trip_known", JsonValue::Bool(summary.mix.trip_known)),
                ("depth", u(summary.mix.depth)),
                ("weight", JsonValue::Num(summary.mix.weight)),
                ("span_mix", mix_json(&summary.mix.span_mix)),
                ("own_mix", mix_json(&summary.mix.own_mix)),
                ("mem", mem_json(&summary.mem)),
                ("predict", JsonValue::Arr(summary.predict.iter().map(prediction_json).collect())),
            ])
        })
        .collect();
    let diags = analysis
        .lint
        .diags
        .iter()
        .map(|d| {
            JsonValue::obj([
                ("severity", s(d.severity.as_str())),
                ("code", s(d.code)),
                ("pc", d.pc.map_or(JsonValue::Null, u)),
                ("message", s(d.message.clone())),
            ])
        })
        .collect();
    JsonValue::obj([
        ("schema_version", JsonValue::UInt(ANALYZE_SCHEMA_VERSION)),
        ("name", s(name)),
        ("iq", u(iq)),
        ("text_base", u(program.text_base())),
        ("text_len", JsonValue::UInt(program.text_len() as u64)),
        ("entry", u(program.entry())),
        (
            "cfg",
            JsonValue::obj([
                ("blocks", JsonValue::UInt(analysis.cfg.blocks.len() as u64)),
                ("edges", JsonValue::UInt(analysis.cfg.edge_count() as u64)),
                ("instructions", JsonValue::UInt(analysis.cfg.inst_count() as u64)),
            ]),
        ),
        ("loops", JsonValue::Arr(loops)),
        (
            "class_mix",
            JsonValue::obj([
                ("outside", mix_json(&analysis.outside_mix)),
                ("program", mix_json(&analysis.program_mix)),
            ]),
        ),
        (
            "lint",
            JsonValue::obj([
                ("errors", JsonValue::UInt(analysis.lint.errors().count() as u64)),
                ("warnings", JsonValue::UInt(analysis.lint.warnings().count() as u64)),
                ("diags", JsonValue::Arr(diags)),
            ]),
        ),
        ("agreement", agreement.map_or(JsonValue::Null, agreement_json)),
    ])
}

/// One-line machine-grepable summary (pinned by CI).
#[must_use]
pub fn summary_line(
    name: &str,
    program: &Program,
    analysis: &Analysis,
    iq: u32,
    agreement: Option<&Agreement>,
) -> String {
    let eligible = analysis
        .loops
        .iter()
        .filter(|l| classify(program, &analysis.cfg, &l.natural, iq).is_eligible())
        .count();
    let mut line = format!(
        "riq-analyze: {name}: blocks={} loops={} eligible@{iq}={eligible} lint_errors={} lint_warnings={}",
        analysis.cfg.blocks.len(),
        analysis.loops.len(),
        analysis.lint.errors().count(),
        analysis.lint.warnings().count(),
    );
    if let Some(g) = agreement {
        let _ = write!(line, " recall@{iq}={:.3} precision@{iq}={:.3}", g.recall, g.precision);
    }
    line
}

/// Multi-line human-readable table for the terminal.
#[must_use]
pub fn human_table(
    name: &str,
    program: &Program,
    analysis: &Analysis,
    iq: u32,
    agreement: Option<&Agreement>,
) -> String {
    let whereis = |a: u32| program.symbolize(a).unwrap_or_else(|| format!("{a:#x}"));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: {} blocks, {} instructions, {} natural loop(s)",
        analysis.cfg.blocks.len(),
        analysis.cfg.inst_count(),
        analysis.loops.len()
    );
    if !analysis.loops.is_empty() {
        let _ = writeln!(
            out,
            "  {:<24} {:>10} {:>10} {:>5} {:>12} {:>7} {:>7} {:>9}  verdict@{iq}",
            "loop", "head", "tail", "span", "back", "min-iq", "trips", "mem"
        );
        for summary in &analysis.loops {
            let lp = &summary.natural;
            let verdict = classify(program, &analysis.cfg, lp, iq);
            let detail = match verdict {
                Eligibility::Eligible { iter_size, side_exits, calls } => {
                    format!("eligible (iter={iter_size}, exits={side_exits}, calls={calls})")
                }
                Eligibility::DoesNotFit { iter_size } => {
                    format!("does_not_fit (iter={iter_size})")
                }
                Eligibility::InnerLoop { inner_tail } => {
                    format!("inner_loop (at {})", whereis(inner_tail))
                }
                Eligibility::UnpairedReturn { at } => {
                    format!("unpaired_return (at {})", whereis(at))
                }
                Eligibility::IndirectCall { at } => {
                    format!("indirect_call (at {})", whereis(at))
                }
                Eligibility::Recursion { at } => format!("recursion (at {})", whereis(at)),
                Eligibility::NotBackward | Eligibility::TooLarge => verdict.class().to_string(),
            };
            let trips = if summary.mix.trip_known {
                format!("{}", summary.mix.est_trips as u64)
            } else {
                format!("~{}", summary.mix.est_trips as u64)
            };
            let _ = writeln!(
                out,
                "  {:<24} {:>10} {:>10} {:>5} {:>12} {:>7} {:>7} {:>9}  {detail}",
                whereis(lp.head),
                format!("{:#x}", lp.head),
                format!("{:#x}", lp.tail),
                lp.span(),
                lp.back_kind.as_str(),
                summary.min_capacity.map_or_else(|| "-".to_string(), |c| c.to_string()),
                trips,
                summary.mem.class(),
            );
        }
    }
    let errors = analysis.lint.errors().count();
    let warnings = analysis.lint.warnings().count();
    let _ = writeln!(out, "  lint: {errors} error(s), {warnings} warning(s)");
    for d in &analysis.lint.diags {
        let at = d.pc.map_or_else(String::new, |pc| format!(" at {}", whereis(pc)));
        let _ = writeln!(out, "    {}: {}{}: {}", d.severity.as_str(), d.code, at, d.message);
    }
    if let Some(g) = agreement {
        let _ = writeln!(
            out,
            "  agreement@{}: recall={:.3} precision={:.3} ({} promoted, {} predicted eligible)",
            g.iq, g.recall, g.precision, g.promoted_loops, g.eligible_loops
        );
        for l in &g.loops {
            if l.class != "agree" {
                let _ = writeln!(
                    out,
                    "    {} [{:#x}..{:#x}]: static={} promotions={} -> {}",
                    whereis(l.head),
                    l.head,
                    l.tail,
                    l.static_class,
                    l.promotions,
                    l.class
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use crate::eligibility::CAPACITIES;
    use riq_asm::assemble;

    const SRC: &str =
        ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n";

    #[test]
    fn json_report_is_deterministic_and_versioned() {
        let p = assemble(SRC).unwrap();
        let a1 = analyze(&p);
        let a2 = analyze(&p);
        let j1 = report_json("t", &p, &a1, 64, None).to_pretty();
        let j2 = report_json("t", &p, &a2, 64, None).to_pretty();
        assert_eq!(j1, j2, "two analyses of the same program must serialize identically");
        let parsed = riq_trace::parse(&j1).unwrap();
        assert_eq!(parsed.get("schema_version").unwrap().as_u64(), Some(ANALYZE_SCHEMA_VERSION));
        assert_eq!(parsed.get("agreement"), Some(&JsonValue::Null));
    }

    #[test]
    fn json_report_carries_loop_verdicts_per_capacity() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let j = report_json("t", &p, &a, 64, None);
        let loops = j.get("loops").unwrap().as_arr().unwrap();
        assert_eq!(loops.len(), 1);
        let per_cap = loops[0].get("per_capacity").unwrap().as_arr().unwrap();
        assert_eq!(per_cap.len(), CAPACITIES.len());
        assert_eq!(loops[0].get("head_label").unwrap().as_str(), Some("loop"));
        assert_eq!(loops[0].get("at_iq").unwrap().get("class").unwrap().as_str(), Some("eligible"));
    }

    #[test]
    fn json_report_v2_carries_predictive_sections() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let j = report_json("t", &p, &a, 64, None);
        let loops = j.get("loops").unwrap().as_arr().unwrap();
        assert_eq!(loops[0].get("est_trips").unwrap().as_f64(), Some(3.0));
        assert_eq!(loops[0].get("trip_known"), Some(&JsonValue::Bool(true)));
        assert_eq!(loops[0].get("mem").unwrap().get("class").unwrap().as_str(), Some("none"));
        let predict = loops[0].get("predict").unwrap().as_arr().unwrap();
        assert_eq!(predict.len(), CAPACITIES.len());
        assert!(predict[0].get("energy_savings").is_some());
        let cm = j.get("class_mix").unwrap();
        let program_total = cm.get("program").unwrap().get("total").unwrap().as_u64().unwrap();
        assert_eq!(program_total, 4, "li + addi + bne + halt");
    }

    #[test]
    fn summary_line_shape_is_stable() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let line = summary_line("demo", &p, &a, 64, None);
        assert_eq!(
            line,
            "riq-analyze: demo: blocks=3 loops=1 eligible@64=1 lint_errors=0 lint_warnings=0"
        );
    }

    #[test]
    fn human_table_mentions_loops_and_lint() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let t = human_table("demo", &p, &a, 64, None);
        assert!(t.contains("1 natural loop"), "{t}");
        assert!(t.contains("eligible"), "{t}");
        assert!(t.contains("lint: 0 error(s)"), "{t}");
    }
}
