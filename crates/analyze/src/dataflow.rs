//! Def-use and liveness dataflow over the CFG.
//!
//! The 64-register unified namespace ([`riq_isa::ArchReg::index`]) fits a
//! `u64` bitset per block, so the classic backward gen-kill fixpoint is a
//! handful of word operations per edge. Liveness powers the linter's
//! read-before-write diagnostic: a register live into the entry block is
//! consumed before the program ever writes it.

use crate::cfg::Cfg;
use riq_isa::ArchReg;

/// A set of architectural registers as a 64-bit mask over
/// [`ArchReg::index`].
pub type RegSet = u64;

/// Bit for one register.
#[must_use]
pub fn reg_bit(r: ArchReg) -> RegSet {
    1u64 << r.index()
}

/// The registers in a set, in index order.
pub fn regs_in(set: RegSet) -> impl Iterator<Item = ArchReg> {
    (0..64).filter(move |i| set & (1 << i) != 0).map(ArchReg::from_index)
}

/// Per-block liveness solution.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers read before any write within the block (gen).
    pub use_: Vec<RegSet>,
    /// Registers written by the block (kill).
    pub def: Vec<RegSet>,
    /// Registers live on entry to each block.
    pub live_in: Vec<RegSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<RegSet>,
}

impl Liveness {
    /// Solves liveness for `cfg` by backward fixpoint over
    /// `succs` ∪ `call_succ` (callee reads count as live across a call,
    /// which is the conservative direction).
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Liveness {
        let n = cfg.blocks.len();
        let mut use_ = vec![0u64; n];
        let mut def = vec![0u64; n];
        for (i, block) in cfg.blocks.iter().enumerate() {
            for &(_, inst) in &block.insts {
                for src in inst.sources().into_iter().flatten() {
                    if def[i] & reg_bit(src) == 0 {
                        use_[i] |= reg_bit(src);
                    }
                }
                if let Some(d) = inst.dest() {
                    def[i] |= reg_bit(d);
                }
            }
        }
        let mut live_in = use_.clone();
        let mut live_out = vec![0u64; n];
        let order = {
            // Iterating in reverse RPO converges fastest for a backward
            // problem; unreachable blocks are appended so they get a
            // solution too (their liveness still feeds diagnostics).
            let rpo = cfg.reverse_post_order();
            let mut seen = vec![false; n];
            for &b in &rpo {
                seen[b] = true;
            }
            let mut order: Vec<usize> = rpo.into_iter().rev().collect();
            order.extend((0..n).filter(|&b| !seen[b]));
            order
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out = 0u64;
                for s in cfg.blocks[b].succs.iter().copied().chain(cfg.blocks[b].call_succ) {
                    out |= live_in[s];
                }
                let inn = use_[b] | (out & !def[b]);
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
        }
        Liveness { use_, def, live_in, live_out }
    }

    /// Registers live into the program entry: consumed somewhere before any
    /// write reaches that read.
    #[must_use]
    pub fn entry_live(&self, cfg: &Cfg) -> RegSet {
        if cfg.blocks.is_empty() {
            return 0;
        }
        self.live_in[cfg.entry]
    }
}

/// Finds the lowest-address instruction that reads `reg` upward-exposed
/// (no write earlier in its own block, and the register is live into that
/// block) — the anchor for a read-before-write diagnostic.
#[must_use]
pub fn first_exposed_use(cfg: &Cfg, live: &Liveness, reg: ArchReg) -> Option<u32> {
    let bit = reg_bit(reg);
    let mut best: Option<u32> = None;
    for (i, block) in cfg.blocks.iter().enumerate() {
        if live.use_[i] & bit == 0 || live.live_in[i] & bit == 0 {
            continue;
        }
        for &(pc, inst) in &block.insts {
            if inst.sources().into_iter().flatten().any(|s| s == reg) {
                best = Some(best.map_or(pc, |b: u32| b.min(pc)));
                break;
            }
            if inst.dest() == Some(reg) {
                break;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;
    use riq_isa::IntReg;

    fn live_of(src: &str) -> (riq_asm::Program, Cfg, Liveness) {
        let p = assemble(src).expect("test source assembles");
        let c = Cfg::build(&p);
        let l = Liveness::compute(&c);
        (p, c, l)
    }

    fn int(n: u8) -> ArchReg {
        ArchReg::Int(IntReg::new(n))
    }

    #[test]
    fn straight_line_use_def() {
        let (_, c, l) = live_of(".text\n  add $r3, $r1, $r2\n  addi $r3, $r3, 1\n  halt\n");
        assert_eq!(l.use_[0], reg_bit(int(1)) | reg_bit(int(2)), "r3 is defined before its read");
        assert_eq!(l.def[0], reg_bit(int(3)));
        assert_eq!(l.entry_live(&c), reg_bit(int(1)) | reg_bit(int(2)));
    }

    #[test]
    fn loop_carried_register_live_around_back_edge() {
        let (_, c, l) = live_of(
            ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        // r2 written by the li: nothing is live into the program.
        assert_eq!(l.entry_live(&c), 0);
        // But it is live around the back edge into the loop block.
        let loop_block = 1;
        assert_ne!(l.live_in[loop_block] & reg_bit(int(2)), 0);
    }

    #[test]
    fn callee_read_is_live_across_the_call() {
        let (p, c, l) = live_of(".text\n  jal leaf\n  halt\nleaf:\n  addi $r3, $r7, 1\n  jr $ra\n");
        // r7 is only read inside the callee; the call edge carries it back
        // to the entry.
        assert_ne!(l.entry_live(&c) & reg_bit(int(7)), 0);
        let leaf = c.block_starting_at(p.symbol("leaf").unwrap()).unwrap();
        assert_ne!(l.live_in[leaf] & reg_bit(int(7)), 0);
    }

    #[test]
    fn first_exposed_use_points_at_lowest_address() {
        let (p, c, l) = live_of(".text\n  add $r3, $r5, $r5\n  add $r4, $r5, $r5\n  halt\n");
        assert_eq!(first_exposed_use(&c, &l, int(5)), Some(p.text_base()));
        assert_eq!(first_exposed_use(&c, &l, int(9)), None);
    }

    #[test]
    fn regs_in_roundtrip() {
        let set = reg_bit(int(2)) | reg_bit(int(31)) | reg_bit(ArchReg::from_index(40));
        let back: Vec<ArchReg> = regs_in(set).collect();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], int(2));
        assert_eq!(back[1], int(31));
        assert_eq!(back[2], ArchReg::from_index(40));
    }
}
