//! Per-loop instruction-class mix, weighted by const-prop trip estimates.
//!
//! Partitions the program's decoded instructions into riq-power's
//! [`EnergyClass`] buckets — {int, fp, load, store, branch} plus a
//! class-less `other` bucket (nop/halt) — twice per natural loop: the
//! *span* mix counts every instruction in the contiguous window
//! `[head, tail]` the reuse queue buffers, while the *own* mix assigns
//! each instruction to its **innermost** containing span, so
//! `outside + Σ own == program` holds exactly (the invariant the
//! workspace proptests pin).
//!
//! Trip counts are estimated from the loop-closing branch: when the span
//! contains exactly one self-update `addi ctr, ctr, -k` of the branch's
//! condition register and constant propagation ([`crate::constprop`])
//! proves the counter's value at loop entry, the estimate is exact for
//! the count-down idiom every kernel and fuzz-generated loop uses.
//! Everything else falls back to [`DEFAULT_TRIPS`].

use crate::cfg::Cfg;
use crate::constprop::{block_in_states, meet, transfer_inst, State, Val};
use crate::loops::NaturalLoop;
use riq_asm::Program;
use riq_isa::{AluImmOp, ArchReg, BranchCond, Inst, InstClass, IntReg, INST_BYTES};
use riq_power::EnergyClass;

/// Trip estimate used when the counter idiom cannot be proven.
pub const DEFAULT_TRIPS: f64 = 8.0;

/// Instruction counts per [`EnergyClass`], plus the class-less remainder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mix {
    counts: [u64; 5],
    /// Instructions outside every energy class (`nop`, `halt`).
    pub other: u64,
}

/// The [`EnergyClass`] an instruction's execution energy is attributed
/// to, mirroring the power model's component partition
/// (`Component::energy_class`). `None` for nop/halt.
#[must_use]
pub fn energy_class_of(class: InstClass) -> Option<EnergyClass> {
    match class {
        InstClass::IntAlu | InstClass::IntMult | InstClass::IntDiv => Some(EnergyClass::Int),
        InstClass::FpAlu | InstClass::FpMult | InstClass::FpDiv => Some(EnergyClass::Fp),
        InstClass::Load => Some(EnergyClass::Load),
        InstClass::Store => Some(EnergyClass::Store),
        InstClass::Ctrl => Some(EnergyClass::Branch),
        InstClass::Nop | InstClass::Halt => None,
    }
}

fn class_index(c: EnergyClass) -> usize {
    EnergyClass::ALL.iter().position(|&x| x == c).expect("class in ALL")
}

impl Mix {
    /// Records one instruction.
    pub fn add(&mut self, inst: &Inst) {
        match energy_class_of(inst.class()) {
            Some(c) => self.counts[class_index(c)] += 1,
            None => self.other += 1,
        }
    }

    /// Count for one class.
    #[must_use]
    pub fn count(&self, c: EnergyClass) -> u64 {
        self.counts[class_index(c)]
    }

    /// Total instructions, including the class-less remainder.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.other
    }

    /// Fraction of classed instructions belonging to `c` (0 when empty).
    #[must_use]
    pub fn share(&self, c: EnergyClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(c) as f64 / t as f64
        }
    }

    /// Adds another mix into this one.
    pub fn merge(&mut self, other: &Mix) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.other += other.other;
    }
}

/// Class mix and trip estimate of one natural loop.
#[derive(Debug, Clone)]
pub struct LoopMix {
    /// Mix over the whole contiguous span `[head, tail]`.
    pub span_mix: Mix,
    /// Mix of instructions whose innermost containing span is this loop.
    pub own_mix: Mix,
    /// Estimated iterations per entry of the loop.
    pub est_trips: f64,
    /// Whether `est_trips` was proven by constant propagation (vs the
    /// [`DEFAULT_TRIPS`] fallback).
    pub trip_known: bool,
    /// Number of distinct enclosing loop spans (0 for outermost loops).
    pub depth: u32,
    /// Estimated executions of one body iteration: own trips times the
    /// product of every ancestor's trips.
    pub weight: f64,
}

/// Whole-program class-mix partition.
#[derive(Debug, Clone)]
pub struct ClassMix {
    /// Per-loop mixes, aligned with the loop table's `(head, tail)` order.
    pub loops: Vec<LoopMix>,
    /// Instructions contained in no loop span.
    pub outside: Mix,
    /// Every decoded instruction of the text segment.
    pub program: Mix,
}

/// Index of the innermost loop span containing `pc` (smallest span wins,
/// then lowest `(head, tail)`).
fn innermost(loops: &[NaturalLoop], pc: u32) -> Option<usize> {
    loops
        .iter()
        .enumerate()
        .filter(|(_, l)| l.head <= pc && pc <= l.tail)
        .min_by_key(|(_, l)| (l.span(), l.head, l.tail))
        .map(|(i, _)| i)
}

/// Abstract state on entry to the loop head from outside the loop: the
/// meet over every non-back-edge predecessor's out-state. `None` when no
/// such predecessor was reached by the propagation.
fn preheader_state(cfg: &Cfg, in_states: &[Option<State>], lp: &NaturalLoop) -> Option<State> {
    let mut acc: Option<State> = None;
    for &p in &cfg.blocks[lp.head_block].preds {
        let blk = &cfg.blocks[p];
        if let Some(&(tpc, term)) = blk.terminator() {
            // Skip back edges: a backward transfer into the head belongs to
            // this loop (or a sibling sharing its head), not the entry path.
            if term.static_target(tpc) == Some(lp.head) && tpc > lp.head {
                continue;
            }
        }
        let Some(mut s) = in_states[p] else { continue };
        for &(pc, inst) in &blk.insts {
            transfer_inst(&mut s, pc, &inst);
        }
        if blk.call_succ.is_some() || blk.indirect_call {
            s = [Val::Unknown; 32];
        }
        acc = Some(match acc {
            None => s,
            Some(prev) => meet(&prev, &s),
        });
    }
    acc
}

/// The condition register of a count-down loop-closing branch: `bne
/// ctr, $r0` / `bgtz ctr` (continue while non-zero / positive).
fn countdown_register(inst: &Inst) -> Option<IntReg> {
    match *inst {
        Inst::Bne { rs, rt, .. } if rt.is_zero() && !rs.is_zero() => Some(rs),
        Inst::Bne { rs, rt, .. } if rs.is_zero() && !rt.is_zero() => Some(rt),
        Inst::Bcond { cond: BranchCond::Gtz, rs, .. } if !rs.is_zero() => Some(rs),
        _ => None,
    }
}

/// Proves the trip count of the count-down idiom, or `None`.
fn estimate_trips(
    program: &Program,
    cfg: &Cfg,
    in_states: &[Option<State>],
    lp: &NaturalLoop,
) -> Option<u64> {
    let tail_inst = program.inst_at(lp.tail).ok()?;
    let ctr = countdown_register(&tail_inst)?;

    // Exactly one in-span write to the counter, and it must be the
    // self-decrement `addi ctr, ctr, -k`.
    let mut step: Option<u32> = None;
    let mut pc = lp.head;
    while pc < lp.tail {
        if let Ok(inst) = program.inst_at(pc) {
            if inst.dest() == Some(ArchReg::Int(ctr)) {
                match inst {
                    Inst::AluImm { op: AluImmOp::Addi, rt, rs, imm }
                        if rt == ctr && rs == ctr && imm < 0 && step.is_none() =>
                    {
                        step = Some(u32::from(imm.unsigned_abs()));
                    }
                    _ => return None,
                }
            }
        }
        pc += INST_BYTES;
    }
    let step = step?;

    let entry = preheader_state(cfg, in_states, lp)?;
    let Val::Const(init) = entry[ctr.number() as usize] else { return None };
    let init = init as i32;
    if init <= 0 {
        return None;
    }
    Some(u64::from((init as u32).div_ceil(step)))
}

/// Runs the class-mix pass: per-loop span/own mixes, trip estimates, nest
/// weights, and the whole-program partition.
#[must_use]
pub fn class_mix(program: &Program, cfg: &Cfg, loops: &[NaturalLoop]) -> ClassMix {
    let in_states = block_in_states(cfg);

    let mut per_loop: Vec<LoopMix> = loops
        .iter()
        .map(|lp| {
            let mut span_mix = Mix::default();
            let mut pc = lp.head;
            while pc <= lp.tail {
                if let Ok(inst) = program.inst_at(pc) {
                    span_mix.add(&inst);
                }
                pc += INST_BYTES;
            }
            let est = estimate_trips(program, cfg, &in_states, lp);
            LoopMix {
                span_mix,
                own_mix: Mix::default(),
                est_trips: est.map_or(DEFAULT_TRIPS, |t| t as f64),
                trip_known: est.is_some(),
                depth: 0,
                weight: 0.0,
            }
        })
        .collect();

    // Innermost-span partition over every decoded instruction.
    let mut outside = Mix::default();
    let mut program_mix = Mix::default();
    for block in &cfg.blocks {
        for &(pc, inst) in &block.insts {
            program_mix.add(&inst);
            match innermost(loops, pc) {
                Some(i) => per_loop[i].own_mix.add(&inst),
                None => outside.add(&inst),
            }
        }
    }

    // Nest weights: trips times the product of every *proper* ancestor's
    // trips (span containment; same-head siblings are alternate back edges
    // of one loop, not ancestors).
    for i in 0..loops.len() {
        let l = &loops[i];
        let mut weight = per_loop[i].est_trips;
        let mut depth = 0u32;
        for (j, a) in loops.iter().enumerate() {
            if j != i
                && a.head != l.head
                && a.head <= l.head
                && l.tail <= a.tail
                && (a.head, a.tail) != (l.head, l.tail)
            {
                weight *= per_loop[j].est_trips;
                depth += 1;
            }
        }
        per_loop[i].weight = weight;
        per_loop[i].depth = depth;
    }

    ClassMix { loops: per_loop, outside, program: program_mix }
}

impl ClassMix {
    /// Estimated dynamic instructions of the whole program: every
    /// instruction weighted by the executions of its innermost span
    /// (outside code executes once).
    #[must_use]
    pub fn est_dynamic_insts(&self) -> f64 {
        let looped: f64 = self.loops.iter().map(|l| l.weight * l.own_mix.total() as f64).sum();
        looped + self.outside.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::loops::find_loops;

    fn mix_of(src: &str) -> (Program, Vec<NaturalLoop>, ClassMix) {
        let p = riq_asm::assemble(src).expect("test source assembles");
        let cfg = Cfg::build(&p);
        let doms = Dominators::compute(&cfg);
        let loops = find_loops(&cfg, &doms);
        let m = class_mix(&p, &cfg, &loops);
        (p, loops, m)
    }

    const COUNTED: &str =
        ".text\n  li $r2, 12\nloop:\n  addi $r3, $r3, 1\n  lw $r4, 0($r29)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n";

    #[test]
    fn counted_loop_trips_are_proven() {
        let (_, _, m) = mix_of(COUNTED);
        assert_eq!(m.loops.len(), 1);
        let l = &m.loops[0];
        assert!(l.trip_known);
        assert_eq!(l.est_trips, 12.0);
        assert_eq!(l.weight, 12.0);
        assert_eq!(l.depth, 0);
    }

    #[test]
    fn span_mix_counts_classes() {
        let (_, _, m) = mix_of(COUNTED);
        let l = &m.loops[0];
        assert_eq!(l.span_mix.count(EnergyClass::Int), 2, "addi + addi");
        assert_eq!(l.span_mix.count(EnergyClass::Load), 1);
        assert_eq!(l.span_mix.count(EnergyClass::Branch), 1);
        assert_eq!(l.span_mix.total(), 4);
    }

    #[test]
    fn own_plus_outside_partitions_program() {
        let (_, _, m) = mix_of(
            ".text\n  li $r2, 3\nouter:\n  li $r3, 4\ninner:\n  addi $r3, $r3, -1\n  bne $r3, $r0, inner\n  addi $r2, $r2, -1\n  bne $r2, $r0, outer\n  halt\n",
        );
        let mut sum = m.outside;
        for l in &m.loops {
            sum.merge(&l.own_mix);
        }
        assert_eq!(sum, m.program);
        assert_eq!(m.program.total(), 7);
    }

    #[test]
    fn nested_weights_multiply() {
        let (p, loops, m) = mix_of(
            ".text\n  li $r2, 3\nouter:\n  li $r3, 4\ninner:\n  addi $r3, $r3, -1\n  bne $r3, $r0, inner\n  addi $r2, $r2, -1\n  bne $r2, $r0, outer\n  halt\n",
        );
        let inner = loops.iter().position(|l| l.head == p.symbol("inner").unwrap()).unwrap();
        let outer = loops.iter().position(|l| l.head == p.symbol("outer").unwrap()).unwrap();
        assert_eq!(m.loops[outer].est_trips, 3.0);
        assert_eq!(m.loops[inner].est_trips, 4.0);
        assert_eq!(m.loops[inner].depth, 1);
        assert_eq!(m.loops[inner].weight, 12.0, "4 trips x 3 outer entries");
    }

    #[test]
    fn unprovable_counter_falls_back() {
        // The counter is reloaded from memory: no single self-decrement.
        let (_, _, m) = mix_of(
            ".text\nloop:\n  lw $r2, 0($r29)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        assert!(!m.loops[0].trip_known);
        assert_eq!(m.loops[0].est_trips, DEFAULT_TRIPS);
    }

    #[test]
    fn gtz_countdown_is_recognized() {
        let (_, _, m) = mix_of(
            ".text\n  li $r10, 21\nL0:\n  addi $r3, $r3, 1\n  addi $r10, $r10, -1\n  bgtz $r10, L0\n  halt\n",
        );
        assert!(m.loops[0].trip_known);
        assert_eq!(m.loops[0].est_trips, 21.0);
    }

    #[test]
    fn est_dynamic_insts_weights_loops() {
        let (_, _, m) = mix_of(COUNTED);
        // 12 trips x 4-inst body + 2 outside (li, halt).
        assert_eq!(m.est_dynamic_insts(), 12.0 * 4.0 + 2.0);
    }
}
