//! Static-vs-dynamic agreement: does the static eligibility verdict match
//! what the reuse FSM actually did?
//!
//! The dynamic side is reconstructed by replaying the ordered reuse-FSM
//! trace events (riq-trace) of a simulation run. Replay must be
//! *sequential* because `BufferingRevoked` carries no loop identity — the
//! loop it refers to is whichever one the immediately preceding
//! `LoopDetected`/`BufferingStarted` armed.
//!
//! Every disagreement is classified, never left unexplained: an eligible
//! loop that did not promote gets the dynamic cause (never executed, NBLT
//! suppression, side exit during buffering, ...); an ineligible loop that
//! did promote carries its static class, and promotions at addresses the
//! CFG has no loop for are reported as `unknown_to_static`.

use crate::eligibility::classify;
use crate::Analysis;
use riq_asm::Program;
use riq_trace::{EventKind, RevokeReason, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};

/// Agreement verdict for one loop (or one unmatched dynamic promotion).
#[derive(Debug, Clone)]
pub struct LoopAgreement {
    /// Loop head address.
    pub head: u32,
    /// Loop tail (closing transfer) address.
    pub tail: u32,
    /// Static verdict at the compared queue capacity.
    pub statically_eligible: bool,
    /// Static class tag ([`crate::Eligibility::class`]), `"none"` for
    /// promotions with no static counterpart.
    pub static_class: String,
    /// How many times the dynamic FSM promoted this loop to Code Reuse.
    pub promotions: u64,
    /// Agreement class: `"agree"`, or the classified cause of the
    /// disagreement.
    pub class: String,
}

/// The full static-vs-dynamic comparison for one run.
#[derive(Debug, Clone)]
pub struct Agreement {
    /// Issue-queue capacity both sides were evaluated at.
    pub iq: u32,
    /// Per-loop verdicts, sorted by `(head, tail)`.
    pub loops: Vec<LoopAgreement>,
    /// Of the loops predicted eligible, the fraction that promoted
    /// (1.0 when nothing was predicted eligible).
    pub precision: f64,
    /// Of the loops that promoted, the fraction predicted eligible
    /// (1.0 when nothing promoted).
    pub recall: f64,
    /// Distinct loops the dynamic FSM promoted.
    pub promoted_loops: u32,
    /// Loops the static analysis predicted eligible.
    pub eligible_loops: u32,
}

/// Dynamic history of one loop identity, rebuilt from the event stream.
#[derive(Debug, Clone, Default)]
struct LoopHistory {
    detections: u64,
    nblt_suppressed: u64,
    started: u64,
    promotions: u64,
    last_revoke: Option<RevokeReason>,
}

fn replay(events: &[TraceEvent]) -> BTreeMap<(u32, u32), LoopHistory> {
    let mut hist: BTreeMap<(u32, u32), LoopHistory> = BTreeMap::new();
    // The loop the FSM is currently detecting/buffering. `BufferingRevoked`
    // and `NbltHit` refer to it implicitly.
    let mut current: Option<(u32, u32)> = None;
    for event in events {
        match event.kind {
            EventKind::LoopDetected { head, tail, .. } => {
                let key = (head as u32, tail as u32);
                hist.entry(key).or_default().detections += 1;
                current = Some(key);
            }
            EventKind::NbltHit { .. } => {
                if let Some(key) = current.take() {
                    hist.entry(key).or_default().nblt_suppressed += 1;
                }
            }
            EventKind::BufferingStarted { head, tail } => {
                let key = (head as u32, tail as u32);
                hist.entry(key).or_default().started += 1;
                current = Some(key);
            }
            EventKind::BufferingRevoked { reason, .. } => {
                if let Some(key) = current.take() {
                    hist.entry(key).or_default().last_revoke = Some(reason);
                }
            }
            EventKind::CodeReuseEntered { head, tail } => {
                let key = (head as u32, tail as u32);
                hist.entry(key).or_default().promotions += 1;
                current = None;
            }
            _ => {}
        }
    }
    hist
}

fn explain_unpromoted(h: &LoopHistory) -> &'static str {
    if h.detections == 0 {
        return "never_detected";
    }
    match h.last_revoke {
        Some(RevokeReason::LoopExit) => "exited_while_buffering",
        Some(RevokeReason::QueueFull) => "queue_full",
        Some(RevokeReason::Recovery) => "revoked_by_recovery",
        Some(RevokeReason::InnerLoop) => "inner_loop_dynamic",
        Some(RevokeReason::UnpairedReturn) => "unpaired_return_dynamic",
        None if h.nblt_suppressed > 0 => "nblt_suppressed",
        None => "insufficient_iterations",
    }
}

/// Compares the static eligibility of every natural loop in `analysis`
/// against the dynamic reuse-FSM behavior recorded in `events`, both at
/// queue capacity `iq`.
#[must_use]
pub fn agreement(
    program: &Program,
    analysis: &Analysis,
    events: &[TraceEvent],
    iq: u32,
) -> Agreement {
    let hist = replay(events);
    let empty = LoopHistory::default();
    let mut loops = Vec::new();
    let mut matched: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut eligible_loops = 0u32;
    let mut agreeing_eligible = 0u32;

    for summary in &analysis.loops {
        let lp = &summary.natural;
        let key = (lp.head, lp.tail);
        matched.insert(key);
        let h = hist.get(&key).unwrap_or(&empty);
        let verdict = classify(program, &analysis.cfg, lp, iq);
        let eligible = verdict.is_eligible();
        let promoted = h.promotions > 0;
        if eligible {
            eligible_loops += 1;
            if promoted {
                agreeing_eligible += 1;
            }
        }
        let class = match (eligible, promoted) {
            (true, true) | (false, false) => "agree".to_string(),
            (true, false) => explain_unpromoted(h).to_string(),
            (false, true) => format!("static_{}", verdict.class()),
        };
        loops.push(LoopAgreement {
            head: lp.head,
            tail: lp.tail,
            statically_eligible: eligible,
            static_class: verdict.class().to_string(),
            promotions: h.promotions,
            class,
        });
    }

    // Promotions at loop identities the CFG never produced (should not
    // happen; reported rather than dropped so the metric cannot lie).
    for (&(head, tail), h) in &hist {
        if h.promotions > 0 && !matched.contains(&(head, tail)) {
            loops.push(LoopAgreement {
                head,
                tail,
                statically_eligible: false,
                static_class: "none".to_string(),
                promotions: h.promotions,
                class: "unknown_to_static".to_string(),
            });
        }
    }
    loops.sort_by_key(|l| (l.head, l.tail));

    let promoted_loops = loops.iter().filter(|l| l.promotions > 0).count() as u32;
    let promoted_and_eligible =
        loops.iter().filter(|l| l.promotions > 0 && l.statically_eligible).count() as u32;
    let precision = if eligible_loops == 0 {
        1.0
    } else {
        f64::from(agreeing_eligible) / f64::from(eligible_loops)
    };
    let recall = if promoted_loops == 0 {
        1.0
    } else {
        f64::from(promoted_and_eligible) / f64::from(promoted_loops)
    };
    Agreement { iq, loops, precision, recall, promoted_loops, eligible_loops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use riq_asm::assemble;
    use riq_trace::TraceEvent;

    const SRC: &str =
        ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n";

    fn ev(kind: EventKind) -> TraceEvent {
        TraceEvent::new(0, kind)
    }

    fn loop_addrs(program: &Program, analysis: &Analysis) -> (u64, u64) {
        let lp = &analysis.loops[0].natural;
        let _ = program;
        (u64::from(lp.head), u64::from(lp.tail))
    }

    #[test]
    fn promotion_of_eligible_loop_agrees() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let (h, t) = loop_addrs(&p, &a);
        let events = vec![
            ev(EventKind::LoopDetected { head: h, tail: t, size: 2 }),
            ev(EventKind::BufferingStarted { head: h, tail: t }),
            ev(EventKind::CodeReuseEntered { head: h, tail: t }),
        ];
        let g = agreement(&p, &a, &events, 64);
        assert_eq!(g.loops.len(), 1);
        assert_eq!(g.loops[0].class, "agree");
        assert_eq!(g.recall, 1.0);
        assert_eq!(g.precision, 1.0);
    }

    #[test]
    fn unexecuted_eligible_loop_is_never_detected() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let g = agreement(&p, &a, &[], 64);
        assert_eq!(g.loops[0].class, "never_detected");
        assert_eq!(g.recall, 1.0, "no promotions: recall vacuously 1");
        assert_eq!(g.precision, 0.0, "one eligible loop, zero promoted");
    }

    #[test]
    fn revoke_is_attributed_to_the_current_loop() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let (h, t) = loop_addrs(&p, &a);
        let events = vec![
            ev(EventKind::LoopDetected { head: h, tail: t, size: 2 }),
            ev(EventKind::BufferingStarted { head: h, tail: t }),
            ev(EventKind::BufferingRevoked { reason: RevokeReason::LoopExit, registered: true }),
        ];
        let g = agreement(&p, &a, &events, 64);
        assert_eq!(g.loops[0].class, "exited_while_buffering");
    }

    #[test]
    fn nblt_suppression_classified() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let (h, t) = loop_addrs(&p, &a);
        let events = vec![
            ev(EventKind::LoopDetected { head: h, tail: t, size: 2 }),
            ev(EventKind::NbltHit { tail: t }),
        ];
        let g = agreement(&p, &a, &events, 64);
        assert_eq!(g.loops[0].class, "nblt_suppressed");
    }

    #[test]
    fn promotion_without_static_loop_is_flagged() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let events = vec![ev(EventKind::CodeReuseEntered { head: 0x9000, tail: 0x9010 })];
        let g = agreement(&p, &a, &events, 64);
        let unknown = g.loops.iter().find(|l| l.class == "unknown_to_static").unwrap();
        assert_eq!(unknown.head, 0x9000);
        assert_eq!(g.recall, 0.0, "the only promotion was not predicted");
    }

    #[test]
    fn ineligible_promoted_carries_static_class() {
        // At capacity 1 the 2-instruction loop is TooLarge; feign a
        // promotion anyway and require the disagreement to say why.
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let (h, t) = loop_addrs(&p, &a);
        let events = vec![ev(EventKind::CodeReuseEntered { head: h, tail: t })];
        let g = agreement(&p, &a, &events, 1);
        assert_eq!(g.loops[0].class, "static_too_large");
        assert!(!g.loops[0].statically_eligible);
    }
}
