//! The program linter.
//!
//! Structural and dataflow checks over a [`Program`] and its CFG. Errors
//! are defects no well-formed program exhibits (control flow leaving the
//! text segment, stores aimed at code); warnings flag suspicious but
//! well-defined behavior (the emulator zero-initializes every register, so
//! a read-before-write executes fine — it is still usually a bug in
//! hand-written assembly).

use crate::cfg::Cfg;
use crate::constprop::{block_in_states, transfer_inst, Val};
use crate::dataflow::{first_exposed_use, regs_in, Liveness};
use riq_asm::{Program, STACK_TOP};
use riq_isa::{ArchReg, Inst, IntReg};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but well-defined.
    Warning,
    /// A defect: the program escapes its segments or tramples code.
    Error,
}

impl Severity {
    /// Stable lowercase tag for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `"branch-out-of-text"`).
    pub code: &'static str,
    /// Anchoring address, when the diagnostic has one.
    pub pc: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

/// All diagnostics for one program, sorted by (pc, code).
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// The diagnostics.
    pub diags: Vec<Diag>,
}

impl LintReport {
    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diag> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diag> {
        self.diags.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// Whether the program has no error-severity diagnostics.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors().count() == 0
    }
}

/// Window below the initial stack pointer treated as legitimate stack
/// storage (1 MiB — far deeper than any kernel or fuzz program recurses).
const STACK_WINDOW: u32 = 1 << 20;

/// Lints `program` given its CFG and liveness solution.
#[must_use]
pub fn lint(program: &Program, cfg: &Cfg, live: &Liveness) -> LintReport {
    let mut diags = Vec::new();
    let whereis = |a: u32| program.symbolize(a).unwrap_or_else(|| format!("{a:#x}"));

    for &pc in &cfg.undecodable {
        diags.push(Diag {
            severity: Severity::Error,
            code: "undecodable",
            pc: Some(pc),
            message: format!("word at {} does not decode to an instruction", whereis(pc)),
        });
    }

    for &(pc, target) in &cfg.wild_targets {
        let place =
            if program.contains_data(target) { " (target is in the .data segment)" } else { "" };
        diags.push(Diag {
            severity: Severity::Error,
            code: "branch-out-of-text",
            pc: Some(pc),
            message: format!(
                "control transfer at {} targets {target:#x}, outside the text segment{place}",
                whereis(pc)
            ),
        });
    }

    for block in &cfg.blocks {
        if block.falls_off_text {
            diags.push(Diag {
                severity: Severity::Error,
                code: "fallthrough-out-of-text",
                pc: Some(block.end()),
                message: format!(
                    "execution can fall through past {} out of the text segment",
                    whereis(block.end())
                ),
            });
        }
    }

    let reachable = cfg.reachable();
    for (i, block) in cfg.blocks.iter().enumerate() {
        if !reachable[i] {
            diags.push(Diag {
                severity: Severity::Warning,
                code: "unreachable",
                pc: Some(block.start),
                message: format!(
                    "block at {} ({} instructions) is unreachable from the entry point",
                    whereis(block.start),
                    block.insts.len()
                ),
            });
        }
    }

    // Read-before-write: registers live into the entry block. $r0 always
    // reads zero by definition and $r29 is the loader-initialized stack
    // pointer, so neither is worth flagging.
    let exempt =
        |r: ArchReg| matches!(r, ArchReg::Int(ir) if ir == IntReg::ZERO || ir == IntReg::SP);
    for reg in regs_in(live.entry_live(cfg)).filter(|&r| !exempt(r)) {
        let at = first_exposed_use(cfg, live, reg);
        let place = at.map_or_else(String::new, |pc| format!(" at {}", whereis(pc)));
        diags.push(Diag {
            severity: Severity::Warning,
            code: "read-before-write",
            pc: at,
            message: format!(
                "{reg} is read{place} before any instruction writes it \
                 (the emulator zero-initializes registers, so this reads 0)"
            ),
        });
    }

    lint_store_targets(program, cfg, &reachable, &mut diags, &whereis);

    diags.sort_by(|a, b| a.pc.cmp(&b.pc).then(a.code.cmp(b.code)));
    LintReport { diags }
}

/// Constant propagation ([`crate::constprop`]) driving the store-target
/// checks: walk each reachable block with its fixpoint in-state and check
/// every store's address when it is a known constant.
fn lint_store_targets(
    program: &Program,
    cfg: &Cfg,
    reachable: &[bool],
    diags: &mut Vec<Diag>,
    whereis: &dyn Fn(u32) -> String,
) {
    if cfg.blocks.is_empty() {
        return;
    }
    let in_state = block_in_states(cfg);
    let stack_floor = STACK_TOP - STACK_WINDOW;
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        let Some(mut state) = in_state[b] else { continue };
        for &(pc, inst) in &block.insts {
            if let Inst::Sw { base, off, .. } | Inst::Sd { base, off, .. } = inst {
                if let Val::Const(basev) = state[base.number() as usize] {
                    let addr = basev.wrapping_add(off as i32 as u32);
                    if addr >= program.text_base() && addr < program.text_end() {
                        diags.push(Diag {
                            severity: Severity::Error,
                            code: "store-to-text",
                            pc: Some(pc),
                            message: format!(
                                "store at {} writes {addr:#x}, inside the text segment",
                                whereis(pc)
                            ),
                        });
                    } else if !(program.contains_data(addr)
                        || (addr >= stack_floor && addr <= STACK_TOP))
                    {
                        diags.push(Diag {
                            severity: Severity::Warning,
                            code: "store-outside-data",
                            pc: Some(pc),
                            message: format!(
                                "store at {} writes {addr:#x}, outside the data segment \
                                 and the stack window",
                                whereis(pc)
                            ),
                        });
                    }
                }
            }
            transfer_inst(&mut state, pc, &inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dataflow::Liveness;
    use riq_asm::assemble;

    fn lint_src(src: &str) -> LintReport {
        let p = assemble(src).expect("test source assembles");
        let c = Cfg::build(&p);
        let l = Liveness::compute(&c);
        lint(&p, &c, &l)
    }

    fn codes(r: &LintReport) -> Vec<&'static str> {
        r.diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let r = lint_src(
            ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        assert!(r.is_clean(), "{:?}", r.diags);
        assert_eq!(r.diags.len(), 0);
    }

    #[test]
    fn branch_into_data_is_an_error() {
        // A pc-relative branch can only reach the data segment when the
        // text is rebased next to it (absolute branch targets are allowed
        // by the assembler).
        let r =
            lint_src(".data\nbuf: .word 0\n.text 0x0ffff000\n  beq $r0, $r0, 0x10000000\n  halt\n");
        assert!(!r.is_clean());
        let d = r.errors().next().unwrap();
        assert_eq!(d.code, "branch-out-of-text");
        assert!(d.message.contains(".data"), "{}", d.message);
    }

    #[test]
    fn fallthrough_off_the_end_is_an_error() {
        let r = lint_src(".text\n  addi $r2, $r0, 1\n");
        assert!(codes(&r).contains(&"fallthrough-out-of-text"), "{:?}", r.diags);
    }

    #[test]
    fn halt_terminated_program_does_not_fall_through() {
        let r = lint_src(".text\n  addi $r2, $r0, 1\n  halt\n");
        assert!(!codes(&r).contains(&"fallthrough-out-of-text"));
    }

    #[test]
    fn unreachable_block_is_a_warning() {
        let r = lint_src(".text\n  halt\ndead:\n  addi $r2, $r0, 1\n  halt\n");
        assert!(r.is_clean(), "unreachable is only a warning: {:?}", r.diags);
        assert!(codes(&r).contains(&"unreachable"));
    }

    #[test]
    fn callee_after_halt_is_reachable_through_the_call() {
        let r = lint_src(".text\n  jal leaf\n  halt\nleaf:\n  addi $r3, $r3, 1\n  jr $ra\n");
        assert!(!codes(&r).contains(&"unreachable"), "{:?}", r.diags);
    }

    #[test]
    fn read_before_write_is_a_warning_with_location() {
        let r = lint_src(".text\n  add $r3, $r7, $r7\n  halt\n");
        assert!(r.is_clean());
        let d = r.warnings().find(|d| d.code == "read-before-write").unwrap();
        assert!(d.message.contains("$r7"), "{}", d.message);
        assert!(d.pc.is_some());
    }

    #[test]
    fn sp_and_zero_reads_are_exempt() {
        let r = lint_src(".text\n  lw $r2, 0($r29)\n  add $r3, $r0, $r0\n  halt\n");
        assert!(!codes(&r).contains(&"read-before-write"), "{:?}", r.diags);
    }

    #[test]
    fn store_to_text_is_an_error() {
        // la loads the label address; the label is in .text.
        let r = lint_src(".text\nstart:\n  la $r4, start\n  sw $r3, 0($r4)\n  halt\n");
        assert!(codes(&r).contains(&"store-to-text"), "{:?}", r.diags);
    }

    #[test]
    fn store_to_data_and_stack_are_fine() {
        let r = lint_src(
            ".data\nbuf: .word 0, 0\n.text\n  la $r4, buf\n  sw $r3, 4($r4)\n  sw $r3, -8($r29)\n  halt\n",
        );
        assert!(!codes(&r).contains(&"store-outside-data"), "{:?}", r.diags);
        assert!(r.is_clean());
    }

    #[test]
    fn store_to_nowhere_is_a_warning() {
        let r = lint_src(".text\n  li $r4, 0x2000\n  sw $r3, 0($r4)\n  halt\n");
        assert!(codes(&r).contains(&"store-outside-data"), "{:?}", r.diags);
        assert!(r.is_clean(), "unknown-region store is only a warning");
    }

    #[test]
    fn call_havocs_constants() {
        // After the call, $r4 is no longer provably the bad address: no
        // diagnostic may fire on the second store.
        let r = lint_src(
            ".text\n  li $r4, 0x2000\n  jal leaf\n  sw $r3, 0($r4)\n  halt\nleaf:\n  jr $ra\n",
        );
        assert!(!codes(&r).contains(&"store-outside-data"), "{:?}", r.diags);
    }

    #[test]
    fn diagnostics_sorted_by_address() {
        let r =
            lint_src(".text\n  add $r3, $r7, $r7\n  li $r4, 0x2000\n  sw $r3, 0($r4)\n  halt\n");
        let pcs: Vec<_> = r.diags.iter().map(|d| d.pc).collect();
        let mut sorted = pcs.clone();
        sorted.sort();
        assert_eq!(pcs, sorted);
    }
}
