//! Intraprocedural constant propagation over the CFG.
//!
//! Shared by three consumers: the linter's store-target check, the
//! class-mix pass's trip-count estimator, and the stride/alias pass's
//! address-window resolution. Entry state: every register 0 (the
//! emulator's reset state) except the loader-initialized stack pointer.
//! Crossing a call-summary edge havocs everything — the callee may
//! clobber any register — so only values provably constant on every path
//! survive to a use.

use crate::cfg::Cfg;
use riq_asm::STACK_TOP;
use riq_isa::{AluImmOp, AluOp, ArchReg, Inst, IntReg, ShiftOp};

/// Abstract register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Val {
    /// Known constant.
    Const(u32),
    /// Statically unknown.
    Unknown,
}

/// Abstract machine state: one [`Val`] per integer register.
pub(crate) type State = [Val; 32];

/// The state at the program entry point.
pub(crate) fn entry_state() -> State {
    let mut state = [Val::Const(0); 32];
    state[IntReg::SP.number() as usize] = Val::Const(STACK_TOP);
    state
}

/// Pointwise meet: disagreeing registers drop to [`Val::Unknown`].
pub(crate) fn meet(a: &State, b: &State) -> State {
    let mut out = *a;
    for (o, &bv) in out.iter_mut().zip(b.iter()) {
        if *o != bv {
            *o = Val::Unknown;
        }
    }
    out
}

/// Applies one instruction's effect to `state`.
pub(crate) fn transfer_inst(state: &mut State, pc: u32, inst: &Inst) {
    let get = |s: &State, r: IntReg| s[r.number() as usize];
    let set = |s: &mut State, r: IntReg, v: Val| {
        if !r.is_zero() {
            s[r.number() as usize] = v;
        }
    };
    let bin = |s: &State, rs: IntReg, rt: IntReg, f: fn(u32, u32) -> u32| match (
        get(s, rs),
        get(s, rt),
    ) {
        (Val::Const(a), Val::Const(b)) => Val::Const(f(a, b)),
        _ => Val::Unknown,
    };
    match *inst {
        Inst::AluImm { op, rt, rs, imm } => {
            let v = match get(state, rs) {
                Val::Const(a) => Val::Const(match op {
                    AluImmOp::Addi => a.wrapping_add(imm as i32 as u32),
                    AluImmOp::Slti => u32::from((a as i32) < i32::from(imm)),
                    AluImmOp::Sltiu => u32::from(a < (imm as i32 as u32)),
                    AluImmOp::Andi => a & u32::from(imm as u16),
                    AluImmOp::Ori => a | u32::from(imm as u16),
                    AluImmOp::Xori => a ^ u32::from(imm as u16),
                }),
                Val::Unknown => Val::Unknown,
            };
            set(state, rt, v);
        }
        Inst::Lui { rt, imm } => set(state, rt, Val::Const(u32::from(imm) << 16)),
        Inst::Alu { op, rd, rs, rt } => {
            let v = match op {
                AluOp::Add => bin(state, rs, rt, u32::wrapping_add),
                AluOp::Sub => bin(state, rs, rt, u32::wrapping_sub),
                AluOp::Mul => bin(state, rs, rt, u32::wrapping_mul),
                AluOp::Div => bin(state, rs, rt, |a, b| {
                    if b == 0 {
                        0
                    } else {
                        ((a as i32).wrapping_div(b as i32)) as u32
                    }
                }),
                AluOp::Rem => bin(state, rs, rt, |a, b| {
                    if b == 0 {
                        0
                    } else {
                        ((a as i32).wrapping_rem(b as i32)) as u32
                    }
                }),
                AluOp::And => bin(state, rs, rt, |a, b| a & b),
                AluOp::Or => bin(state, rs, rt, |a, b| a | b),
                AluOp::Xor => bin(state, rs, rt, |a, b| a ^ b),
                AluOp::Nor => bin(state, rs, rt, |a, b| !(a | b)),
                AluOp::Slt => bin(state, rs, rt, |a, b| u32::from((a as i32) < (b as i32))),
                AluOp::Sltu => bin(state, rs, rt, |a, b| u32::from(a < b)),
                AluOp::Sllv => bin(state, rs, rt, |a, b| a << (b & 31)),
                AluOp::Srlv => bin(state, rs, rt, |a, b| a >> (b & 31)),
                AluOp::Srav => bin(state, rs, rt, |a, b| ((a as i32) >> (b & 31)) as u32),
            };
            set(state, rd, v);
        }
        Inst::Shift { op, rd, rt, shamt } => {
            let v = match get(state, rt) {
                Val::Const(a) => Val::Const(match op {
                    ShiftOp::Sll => a << (shamt & 31),
                    ShiftOp::Srl => a >> (shamt & 31),
                    ShiftOp::Sra => ((a as i32) >> (shamt & 31)) as u32,
                }),
                Val::Unknown => Val::Unknown,
            };
            set(state, rd, v);
        }
        Inst::Jal { .. } => set(state, IntReg::RA, Val::Const(pc.wrapping_add(4))),
        Inst::Jalr { rd, .. } => set(state, rd, Val::Const(pc.wrapping_add(4))),
        _ => {
            if let Some(ArchReg::Int(rd)) = inst.dest() {
                set(state, rd, Val::Unknown);
            }
        }
    }
}

/// Fixpoint in-states per block, propagated from [`entry_state`] at the
/// CFG entry. `None` marks blocks the propagation never reached. A
/// call-summary edge (and the call edge into an arbitrary callee) havocs
/// the outgoing state; plain edges propagate it.
pub(crate) fn block_in_states(cfg: &Cfg) -> Vec<Option<State>> {
    let n = cfg.blocks.len();
    let mut in_state: Vec<Option<State>> = vec![None; n];
    if n == 0 {
        return in_state;
    }
    in_state[cfg.entry] = Some(entry_state());
    let havoc: State = [Val::Unknown; 32];

    let mut work = vec![cfg.entry];
    while let Some(b) = work.pop() {
        let Some(mut state) = in_state[b] else { continue };
        let block = &cfg.blocks[b];
        for &(pc, inst) in &block.insts {
            transfer_inst(&mut state, pc, &inst);
        }
        let had_call = block.call_succ.is_some() || block.indirect_call;
        for (succ, out) in block
            .succs
            .iter()
            .map(|&s| (s, if had_call { havoc } else { state }))
            .chain(block.call_succ.map(|s| (s, state)))
        {
            let merged = match in_state[succ] {
                None => out,
                Some(prev) => meet(&prev, &out),
            };
            if in_state[succ] != Some(merged) {
                in_state[succ] = Some(merged);
                work.push(succ);
            }
        }
    }
    in_state
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    #[test]
    fn entry_state_pins_zero_and_sp() {
        let s = entry_state();
        assert_eq!(s[0], Val::Const(0));
        assert_eq!(s[IntReg::SP.number() as usize], Val::Const(STACK_TOP));
    }

    #[test]
    fn straight_line_constants_fold() {
        let p = assemble(".text\n  li $r4, 40\n  addi $r4, $r4, 2\n  halt\n").unwrap();
        let cfg = Cfg::build(&p);
        let states = block_in_states(&cfg);
        let mut s = states[cfg.entry].unwrap();
        for &(pc, inst) in &cfg.blocks[cfg.entry].insts {
            transfer_inst(&mut s, pc, &inst);
        }
        assert_eq!(s[4], Val::Const(42));
    }

    #[test]
    fn back_edge_meet_drops_loop_carried_values() {
        let p = assemble(
            ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let states = block_in_states(&cfg);
        let head = cfg.block_starting_at(p.symbol("loop").unwrap()).unwrap();
        assert_eq!(states[head].unwrap()[2], Val::Unknown, "3 meets 2/1/0");
    }

    #[test]
    fn call_summary_edge_havocs() {
        let p = assemble(".text\n  li $r4, 7\n  jal leaf\n  halt\nleaf:\n  jr $ra\n").unwrap();
        let cfg = Cfg::build(&p);
        let states = block_in_states(&cfg);
        let ret = cfg.blocks.iter().position(|b| matches!(b.insts[0].1, Inst::Halt)).unwrap();
        assert_eq!(states[ret].unwrap()[4], Val::Unknown);
    }
}
