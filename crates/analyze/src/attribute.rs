//! Per-loop, per-class energy attribution: the static-vs-dynamic join.
//!
//! Extends the agreement replay ([`crate::agreement`]) into a full
//! attribution report. The reuse-FSM trace events of one simulation run
//! are replayed sequentially — `BufferingRevoked` carries no loop
//! identity, and `GateOff`/`CodeReuseExited` refer to whichever loop the
//! preceding `CodeReuseEntered` promoted — to rebuild per-loop dynamic
//! history: detections, promotions, revokes, buffer-supplied
//! instructions, and front-end-gated cycles. Measured energy deltas
//! between a baseline and a reuse run (under a [`ClassEnergyProfile`])
//! are then attributed to loops by their share of gated cycles, split
//! per class by each class's measured delta — so the per-loop, per-class
//! table sums back to the whole-run saving and cannot double-count.
//!
//! The report also ranks every loop twice — by the static predictor's
//! score and by measured attributed savings — so predictor quality is
//! visible per program (and asserted across kernels by the workspace's
//! rank-correlation test).

use crate::classmix::ClassMix;
use crate::eligibility::classify;
use crate::predict::{predict, Prediction};
use crate::Analysis;
use riq_asm::Program;
use riq_power::{ClassEnergyProfile, EnergyClass, PowerReport};
use riq_trace::{EventKind, JsonValue, RevokeReason, TraceEvent};
use std::collections::BTreeMap;

/// Version of the attribution JSON layout. Bump on any breaking change.
pub const ATTRIBUTION_SCHEMA_VERSION: u64 = 1;

/// Measured outcome of one simulation leg, as consumed by [`attribute`].
#[derive(Debug, Clone, Copy)]
pub struct MeasuredRun {
    /// Instructions committed over the run.
    pub committed: u64,
    /// The run's power report (carries cycles and gated cycles).
    pub power: PowerReport,
}

impl MeasuredRun {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.power.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.power.cycles as f64
        }
    }
}

/// Dynamic history of one loop identity, rebuilt from the event stream.
#[derive(Debug, Clone, Default)]
struct Dyn {
    detections: u64,
    nblt_suppressed: u64,
    started: u64,
    promotions: u64,
    revokes: u64,
    last_revoke: Option<RevokeReason>,
    reused_insts: u64,
    gated_cycles: u64,
}

/// Sequential replay. `current` is the loop the FSM is detecting or
/// buffering; `reuse_loop` is the loop most recently promoted to code
/// reuse — `GateOff` spans and `CodeReuseExited` counts belong to it
/// regardless of which side of the exit event they land on.
fn replay(events: &[TraceEvent]) -> BTreeMap<(u32, u32), Dyn> {
    let mut hist: BTreeMap<(u32, u32), Dyn> = BTreeMap::new();
    let mut current: Option<(u32, u32)> = None;
    let mut reuse_loop: Option<(u32, u32)> = None;
    for event in events {
        match event.kind {
            EventKind::LoopDetected { head, tail, .. } => {
                let key = (head as u32, tail as u32);
                hist.entry(key).or_default().detections += 1;
                current = Some(key);
            }
            EventKind::NbltHit { .. } => {
                if let Some(key) = current.take() {
                    hist.entry(key).or_default().nblt_suppressed += 1;
                }
            }
            EventKind::BufferingStarted { head, tail } => {
                let key = (head as u32, tail as u32);
                hist.entry(key).or_default().started += 1;
                current = Some(key);
            }
            EventKind::BufferingRevoked { reason, .. } => {
                if let Some(key) = current.take() {
                    let d = hist.entry(key).or_default();
                    d.revokes += 1;
                    d.last_revoke = Some(reason);
                }
            }
            EventKind::CodeReuseEntered { head, tail } => {
                let key = (head as u32, tail as u32);
                hist.entry(key).or_default().promotions += 1;
                current = None;
                reuse_loop = Some(key);
            }
            EventKind::CodeReuseExited { reused_insts } => {
                if let Some(key) = reuse_loop {
                    hist.entry(key).or_default().reused_insts += reused_insts;
                }
            }
            EventKind::GateOff { span, .. } => {
                if let Some(key) = reuse_loop {
                    hist.entry(key).or_default().gated_cycles += span;
                }
            }
            _ => {}
        }
    }
    hist
}

/// Attribution verdict for one loop.
#[derive(Debug, Clone)]
pub struct LoopAttribution {
    /// Loop head address.
    pub head: u32,
    /// Loop tail (closing transfer) address.
    pub tail: u32,
    /// Symbolized head, for humans.
    pub label: String,
    /// Static eligibility class at the compared capacity.
    pub static_class: String,
    /// Whether the loop is statically eligible at that capacity.
    pub statically_eligible: bool,
    /// Const-prop trip estimate (see [`crate::LoopMix`]).
    pub est_trips: f64,
    /// Whether the trip estimate was proven.
    pub trip_known: bool,
    /// Stride/alias access-pattern tag ([`crate::LoopMem::class`]).
    pub mem_class: String,
    /// The static predictor's verdict at the compared capacity.
    pub predicted: Prediction,
    /// Dynamic: loop-detector hits.
    pub detections: u64,
    /// Dynamic: NBLT suppressions.
    pub nblt_suppressed: u64,
    /// Dynamic: buffering episodes started.
    pub started: u64,
    /// Dynamic: promotions to code reuse.
    pub promotions: u64,
    /// Dynamic: buffering revocations.
    pub revokes: u64,
    /// Reason of the last revocation, if any.
    pub last_revoke: Option<String>,
    /// Instructions supplied from the reuse buffer for this loop.
    pub reused_insts: u64,
    /// Front-end-gated cycles attributed to this loop.
    pub gated_cycles: u64,
    /// This loop's share of all gated cycles (0 when nothing gated).
    pub gated_share: f64,
    /// Measured energy saving attributed to this loop (weighted units).
    pub energy_savings: f64,
    /// Per-class split of `energy_savings`, aligned with
    /// [`EnergyClass::ALL`].
    pub class_savings: [f64; 5],
    /// Whether the loop contributed positive measured savings.
    pub pays_off: bool,
    /// Rank by the static predictor's score (1 = best).
    pub predictor_rank: u32,
    /// Rank by measured attributed savings (1 = best).
    pub measured_rank: u32,
}

/// The full attribution report for one program at one capacity.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Issue-queue capacity of the reuse leg.
    pub iq: u32,
    /// Per-loop verdicts, sorted by `(head, tail)`.
    pub loops: Vec<LoopAttribution>,
    /// Baseline weighted total energy.
    pub base_energy: f64,
    /// Reuse-leg weighted total energy.
    pub reuse_energy: f64,
    /// Measured saving fraction: `1 - reuse/base`.
    pub savings: f64,
    /// Baseline IPC.
    pub base_ipc: f64,
    /// Reuse-leg IPC.
    pub reuse_ipc: f64,
    /// Total front-end-gated cycles of the reuse leg.
    pub gated_cycles: u64,
    /// Total buffer-supplied instructions attributed across loops.
    pub reused_insts: u64,
    /// Total promotions across loops.
    pub promotions: u64,
    /// Distinct loops that promoted at least once.
    pub promoted_loops: u32,
    /// Spearman rank correlation between predictor and measured ranks
    /// (`None` with fewer than two loops).
    pub rank_correlation: Option<f64>,
}

fn spearman(a: &[u32], b: &[u32]) -> Option<f64> {
    let n = a.len();
    if n < 2 {
        return None;
    }
    let d2: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    let nf = n as f64;
    Some(1.0 - 6.0 * d2 / (nf * (nf * nf - 1.0)))
}

/// Ranks `scores` descending: result[i] is the 1-based rank of item `i`,
/// ties broken by item order (the loop table is `(head, tail)`-sorted,
/// keeping the ranking deterministic).
fn rank_desc(scores: &[f64]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&i, &j| {
        scores[j].partial_cmp(&scores[i]).unwrap_or(std::cmp::Ordering::Equal).then(i.cmp(&j))
    });
    let mut ranks = vec![0u32; scores.len()];
    for (r, &i) in order.iter().enumerate() {
        ranks[i] = r as u32 + 1;
    }
    ranks
}

/// Joins the static loop table of `analysis` with the reuse-FSM `events`
/// of the reuse leg and the measured baseline/reuse outcomes, at queue
/// capacity `iq`, under `profile`.
#[must_use]
pub fn attribute(
    program: &Program,
    analysis: &Analysis,
    events: &[TraceEvent],
    iq: u32,
    baseline: &MeasuredRun,
    reuse: &MeasuredRun,
    profile: &ClassEnergyProfile,
) -> Attribution {
    let hist = replay(events);
    let empty = Dyn::default();
    let whereis = |a: u32| program.symbolize(a).unwrap_or_else(|| format!("{a:#x}"));

    // Fresh predictions at exactly `iq` (which need not be one of the
    // precomputed CAPACITIES), under the caller's profile.
    let naturals: Vec<_> = analysis.loops.iter().map(|s| s.natural.clone()).collect();
    let verdicts: Vec<Vec<_>> =
        naturals.iter().map(|n| vec![(iq, classify(program, &analysis.cfg, n, iq))]).collect();
    let mix = ClassMix {
        loops: analysis.loops.iter().map(|s| s.mix.clone()).collect(),
        outside: analysis.outside_mix,
        program: analysis.program_mix,
    };
    let mems: Vec<_> = analysis.loops.iter().map(|s| s.mem.clone()).collect();
    let predictions = predict(&verdicts, &mix, &mems, profile);

    // Measured whole-run deltas under the profile.
    let base_energy = baseline.power.weighted_total_energy(profile);
    let reuse_energy = reuse.power.weighted_total_energy(profile);
    let class_delta: Vec<f64> = EnergyClass::ALL
        .iter()
        .map(|&c| {
            profile.weight(c) * (baseline.power.class_energy(c) - reuse.power.class_energy(c))
        })
        .collect();
    let shared_delta = baseline.power.shared_energy() - reuse.power.shared_energy();
    let total_delta = base_energy - reuse_energy;
    let total_gated = reuse.power.gated_cycles;

    let mut loops = Vec::with_capacity(analysis.loops.len());
    for (i, summary) in analysis.loops.iter().enumerate() {
        let lp = &summary.natural;
        let key = (lp.head, lp.tail);
        let d = hist.get(&key).unwrap_or(&empty);
        let predicted = predictions[i][0].clone();
        let gated_share =
            if total_gated == 0 { 0.0 } else { d.gated_cycles as f64 / total_gated as f64 };
        let energy_savings = gated_share * total_delta;
        let mut class_savings = [0.0; 5];
        for (slot, delta) in class_savings.iter_mut().zip(class_delta.iter()) {
            *slot = gated_share * delta;
        }
        let _ = shared_delta; // folded into total_delta; split kept per class
        loops.push(LoopAttribution {
            head: lp.head,
            tail: lp.tail,
            label: whereis(lp.head),
            static_class: verdicts[i][0].1.class().to_string(),
            statically_eligible: verdicts[i][0].1.is_eligible(),
            est_trips: summary.mix.est_trips,
            trip_known: summary.mix.trip_known,
            mem_class: summary.mem.class().to_string(),
            predicted,
            detections: d.detections,
            nblt_suppressed: d.nblt_suppressed,
            started: d.started,
            promotions: d.promotions,
            revokes: d.revokes,
            last_revoke: d.last_revoke.map(|r| r.as_str().to_string()),
            reused_insts: d.reused_insts,
            gated_cycles: d.gated_cycles,
            gated_share,
            energy_savings,
            class_savings,
            pays_off: energy_savings > 0.0 && d.promotions > 0,
            predictor_rank: 0,
            measured_rank: 0,
        });
    }

    let predicted_scores: Vec<f64> = loops.iter().map(|l| l.predicted.energy_savings).collect();
    let measured_scores: Vec<f64> = loops.iter().map(|l| l.energy_savings).collect();
    let p_ranks = rank_desc(&predicted_scores);
    let m_ranks = rank_desc(&measured_scores);
    for (l, (pr, mr)) in loops.iter_mut().zip(p_ranks.iter().zip(m_ranks.iter())) {
        l.predictor_rank = *pr;
        l.measured_rank = *mr;
    }

    let savings = if base_energy == 0.0 { 0.0 } else { 1.0 - reuse_energy / base_energy };
    let promotions: u64 = loops.iter().map(|l| l.promotions).sum();
    let promoted_loops = loops.iter().filter(|l| l.promotions > 0).count() as u32;
    let reused_insts: u64 = loops.iter().map(|l| l.reused_insts).sum();
    Attribution {
        iq,
        loops,
        base_energy,
        reuse_energy,
        savings,
        base_ipc: baseline.ipc(),
        reuse_ipc: reuse.ipc(),
        gated_cycles: total_gated,
        reused_insts,
        promotions,
        promoted_loops,
        rank_correlation: spearman(&p_ranks, &m_ranks),
    }
}

fn u(v: u32) -> JsonValue {
    JsonValue::UInt(u64::from(v))
}

fn s(v: impl Into<String>) -> JsonValue {
    JsonValue::Str(v.into())
}

pub(crate) fn class_obj(values: &[f64; 5]) -> JsonValue {
    JsonValue::Obj(
        EnergyClass::ALL
            .iter()
            .zip(values.iter())
            .map(|(c, &v)| (c.label().to_string(), JsonValue::Num(v)))
            .collect(),
    )
}

pub(crate) fn prediction_json(p: &Prediction) -> JsonValue {
    JsonValue::obj([
        ("capacity", u(p.capacity)),
        ("eligible", JsonValue::Bool(p.eligible)),
        ("promotions", JsonValue::Num(p.promotions)),
        ("reused_insts", JsonValue::Num(p.reused_insts)),
        ("gated_cycles", JsonValue::Num(p.gated_cycles)),
        ("energy_savings", JsonValue::Num(p.energy_savings)),
        ("edp_savings", JsonValue::Num(p.edp_savings)),
        ("class_savings", class_obj(&p.class_savings)),
    ])
}

/// Builds the versioned attribution JSON report.
#[must_use]
pub fn attribution_json(name: &str, attribution: &Attribution) -> JsonValue {
    let loops = attribution
        .loops
        .iter()
        .map(|l| {
            JsonValue::obj([
                ("head", u(l.head)),
                ("label", s(l.label.clone())),
                ("tail", u(l.tail)),
                ("static_class", s(l.static_class.clone())),
                ("statically_eligible", JsonValue::Bool(l.statically_eligible)),
                ("est_trips", JsonValue::Num(l.est_trips)),
                ("trip_known", JsonValue::Bool(l.trip_known)),
                ("mem_class", s(l.mem_class.clone())),
                ("predicted", prediction_json(&l.predicted)),
                ("detections", JsonValue::UInt(l.detections)),
                ("nblt_suppressed", JsonValue::UInt(l.nblt_suppressed)),
                ("started", JsonValue::UInt(l.started)),
                ("promotions", JsonValue::UInt(l.promotions)),
                ("revokes", JsonValue::UInt(l.revokes)),
                ("last_revoke", l.last_revoke.clone().map_or(JsonValue::Null, s)),
                ("reused_insts", JsonValue::UInt(l.reused_insts)),
                ("gated_cycles", JsonValue::UInt(l.gated_cycles)),
                ("gated_share", JsonValue::Num(l.gated_share)),
                ("energy_savings", JsonValue::Num(l.energy_savings)),
                ("class_savings", class_obj(&l.class_savings)),
                ("pays_off", JsonValue::Bool(l.pays_off)),
                ("predictor_rank", u(l.predictor_rank)),
                ("measured_rank", u(l.measured_rank)),
            ])
        })
        .collect();
    JsonValue::obj([
        ("schema_version", JsonValue::UInt(ATTRIBUTION_SCHEMA_VERSION)),
        ("name", s(name)),
        ("iq", u(attribution.iq)),
        ("base_energy", JsonValue::Num(attribution.base_energy)),
        ("reuse_energy", JsonValue::Num(attribution.reuse_energy)),
        ("savings", JsonValue::Num(attribution.savings)),
        ("base_ipc", JsonValue::Num(attribution.base_ipc)),
        ("reuse_ipc", JsonValue::Num(attribution.reuse_ipc)),
        ("gated_cycles", JsonValue::UInt(attribution.gated_cycles)),
        ("reused_insts", JsonValue::UInt(attribution.reused_insts)),
        ("promotions", JsonValue::UInt(attribution.promotions)),
        ("promoted_loops", u(attribution.promoted_loops)),
        ("rank_correlation", attribution.rank_correlation.map_or(JsonValue::Null, JsonValue::Num)),
        ("loops", JsonValue::Arr(loops)),
    ])
}

/// Deterministic multi-line human table for the terminal: whole-run
/// header, one row per loop, and a per-class split of the measured
/// savings for every loop that received gated cycles.
#[must_use]
pub fn attribution_table(name: &str, attribution: &Attribution) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let corr = attribution.rank_correlation.map_or_else(|| "na".to_string(), |c| format!("{c:.3}"));
    let _ = writeln!(
        out,
        "attribution: {name} @ iq {} — energy {:.1} -> {:.1} (savings {:.4}), ipc {:.3} -> {:.3}, rank_corr {corr}",
        attribution.iq,
        attribution.base_energy,
        attribution.reuse_energy,
        attribution.savings,
        attribution.base_ipc,
        attribution.reuse_ipc,
    );
    let _ = writeln!(
        out,
        "{:<20} {:>6} {:>6} {:>8} {:>8} {:>7} {:>9} {:>7} {:>9} {:>9} {:>5}",
        "loop",
        "trips",
        "mem",
        "promote",
        "revoke",
        "reused",
        "gated",
        "share",
        "predicted",
        "measured",
        "rank"
    );
    for l in &attribution.loops {
        let trips = if l.trip_known {
            format!("{:.0}", l.est_trips)
        } else {
            format!("~{:.0}", l.est_trips)
        };
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:>6} {:>8} {:>8} {:>7} {:>9} {:>7.3} {:>9.4} {:>9.4} {:>2}/{:<2}",
            l.label,
            trips,
            l.mem_class,
            l.promotions,
            l.revokes,
            l.reused_insts,
            l.gated_cycles,
            l.gated_share,
            l.predicted.energy_savings,
            l.energy_savings,
            l.predictor_rank,
            l.measured_rank,
        );
        if let Some(reason) = &l.last_revoke {
            let _ = writeln!(out, "{:<20}   last revoke: {reason}", "");
        }
        if l.gated_cycles > 0 {
            let split = EnergyClass::ALL
                .iter()
                .zip(l.class_savings.iter())
                .map(|(c, v)| format!("{}={v:.2}", c.label()))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "{:<20}   class savings: {split}", "");
        }
    }
    out
}

/// One-line machine-grepable summary (pinned by CI), byte-stable for a
/// given program and configuration.
#[must_use]
pub fn attribution_summary_line(name: &str, attribution: &Attribution) -> String {
    let corr = attribution.rank_correlation.map_or_else(|| "na".to_string(), |c| format!("{c:.3}"));
    format!(
        "riq-attribute: {name}: iq={} loops={} promoted={} promotions={} reused={} gated={} savings={:.4} rank_corr={corr}",
        attribution.iq,
        attribution.loops.len(),
        attribution.promoted_loops,
        attribution.promotions,
        attribution.reused_insts,
        attribution.gated_cycles,
        attribution.savings,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use riq_asm::assemble;
    use riq_power::{Activity, Component, PowerConfig, PowerModel};
    use riq_trace::GateEndReason;

    const SRC: &str =
        ".text\n  li $r2, 12\nloop:\n  addi $r3, $r3, 1\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n";

    fn ev(kind: EventKind) -> TraceEvent {
        TraceEvent::new(0, kind)
    }

    fn measured(active_cycles: u64, gated: u64, committed: u64) -> MeasuredRun {
        let mut m = PowerModel::new(&PowerConfig::table1());
        let mut act = Activity::new();
        act.add(Component::IntAlu, 2);
        act.add(Component::Icache, 1);
        for _ in 0..active_cycles {
            m.end_cycle(&act, false);
        }
        for _ in 0..gated {
            m.end_cycle(&Activity::new(), true);
        }
        MeasuredRun { committed, power: m.report() }
    }

    fn gate_end() -> GateEndReason {
        GateEndReason::Drained
    }

    #[test]
    fn gated_spans_and_reuse_counts_attach_to_promoted_loop() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let lp = &a.loops[0].natural;
        let (h, t) = (u64::from(lp.head), u64::from(lp.tail));
        let events = vec![
            ev(EventKind::LoopDetected { head: h, tail: t, size: 3 }),
            ev(EventKind::BufferingStarted { head: h, tail: t }),
            ev(EventKind::CodeReuseEntered { head: h, tail: t }),
            ev(EventKind::GateOn),
            ev(EventKind::CodeReuseExited { reused_insts: 30 }),
            ev(EventKind::GateOff { span: 25, reason: gate_end() }),
        ];
        let base = measured(100, 0, 90);
        let reuse = measured(75, 25, 90);
        let g = attribute(&p, &a, &events, 64, &base, &reuse, &ClassEnergyProfile::default());
        assert_eq!(g.loops.len(), 1);
        let l = &g.loops[0];
        assert_eq!(l.promotions, 1);
        assert_eq!(l.reused_insts, 30);
        assert_eq!(l.gated_cycles, 25);
        assert_eq!(l.gated_share, 1.0);
        assert!(g.savings > 0.0, "gated leg must be cheaper: {}", g.savings);
        assert!(l.energy_savings > 0.0);
        assert!(l.pays_off);
        let split: f64 = l.class_savings.iter().sum();
        assert!(split.abs() <= l.energy_savings.abs() + 1e-9);
    }

    #[test]
    fn attribution_sums_to_whole_run_delta() {
        let p = assemble(
            ".text\n  li $r2, 9\na:\n  addi $r2, $r2, -1\n  bne $r2, $r0, a\n  li $r3, 9\nb:\n  addi $r3, $r3, -1\n  bne $r3, $r0, b\n  halt\n",
        )
        .unwrap();
        let a = analyze(&p);
        let k = |i: usize| {
            let lp = &a.loops[i].natural;
            (u64::from(lp.head), u64::from(lp.tail))
        };
        let ((h0, t0), (h1, t1)) = (k(0), k(1));
        let events = vec![
            ev(EventKind::CodeReuseEntered { head: h0, tail: t0 }),
            ev(EventKind::GateOff { span: 30, reason: gate_end() }),
            ev(EventKind::CodeReuseEntered { head: h1, tail: t1 }),
            ev(EventKind::GateOff { span: 10, reason: gate_end() }),
        ];
        let base = measured(100, 0, 80);
        let reuse = measured(60, 40, 80);
        let g = attribute(&p, &a, &events, 64, &base, &reuse, &ClassEnergyProfile::default());
        let attributed: f64 = g.loops.iter().map(|l| l.energy_savings).sum();
        let delta = g.base_energy - g.reuse_energy;
        assert!((attributed - delta).abs() < 1e-9 * delta.abs().max(1.0));
        assert_eq!(g.loops[0].gated_share, 0.75);
        assert_eq!(g.loops[1].gated_share, 0.25);
        assert_eq!(g.loops[0].measured_rank, 1);
        assert_eq!(g.loops[1].measured_rank, 2);
        assert_eq!(g.rank_correlation, Some(1.0), "both rankings agree");
    }

    #[test]
    fn unpromoted_loop_attributes_nothing() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let base = measured(100, 0, 90);
        let reuse = measured(100, 0, 90);
        let g = attribute(&p, &a, &[], 64, &base, &reuse, &ClassEnergyProfile::default());
        let l = &g.loops[0];
        assert_eq!(l.promotions, 0);
        assert_eq!(l.gated_cycles, 0);
        assert_eq!(l.energy_savings, 0.0);
        assert!(!l.pays_off);
        assert_eq!(g.rank_correlation, None, "single loop has no rank spread");
    }

    #[test]
    fn summary_line_is_stable() {
        let p = assemble(SRC).unwrap();
        let a = analyze(&p);
        let base = measured(10, 0, 9);
        let reuse = measured(10, 0, 9);
        let g = attribute(&p, &a, &[], 64, &base, &reuse, &ClassEnergyProfile::default());
        let line = attribution_summary_line("demo", &g);
        assert_eq!(
            line,
            "riq-attribute: demo: iq=64 loops=1 promoted=0 promotions=0 reused=0 gated=0 savings=0.0000 rank_corr=na"
        );
    }

    #[test]
    fn json_is_versioned_and_deterministic() {
        let p = assemble(SRC).unwrap();
        let a1 = analyze(&p);
        let a2 = analyze(&p);
        let base = measured(100, 0, 90);
        let reuse = measured(80, 20, 90);
        let lp = &a1.loops[0].natural;
        let events = vec![
            ev(EventKind::CodeReuseEntered { head: u64::from(lp.head), tail: u64::from(lp.tail) }),
            ev(EventKind::GateOff { span: 20, reason: gate_end() }),
        ];
        let profile = ClassEnergyProfile::default();
        let j1 = attribution_json("t", &attribute(&p, &a1, &events, 64, &base, &reuse, &profile))
            .to_pretty();
        let j2 = attribution_json("t", &attribute(&p, &a2, &events, 64, &base, &reuse, &profile))
            .to_pretty();
        assert_eq!(j1, j2);
        let parsed = riq_trace::parse(&j1).unwrap();
        assert_eq!(
            parsed.get("schema_version").unwrap().as_u64(),
            Some(ATTRIBUTION_SCHEMA_VERSION)
        );
        let loops = parsed.get("loops").unwrap().as_arr().unwrap();
        assert_eq!(loops[0].get("gated_cycles").unwrap().as_u64(), Some(20));
    }
}
