//! Basic blocks and the control-flow graph.
//!
//! The text segment is partitioned into maximal single-entry straight-line
//! blocks. Edges follow the usual intraprocedural shape — branch taken,
//! branch fall-through, jump target — plus two call-related edge kinds:
//! a *summary* edge from a call block to its return site (the statically
//! assumed effect of `jal ...; jr $ra`), and a *call* edge into the callee
//! entry. Call edges are kept separate so callee-size accounting can walk
//! a procedure body without wandering into nested callees twice, but both
//! kinds participate in reachability and dominator computation, which is
//! how loops inside procedures are found.

use riq_asm::Program;
use riq_isa::{CtrlKind, Inst, INST_BYTES};
use std::collections::BTreeMap;

/// One basic block: a maximal straight-line run of instructions entered
/// only at the top.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u32,
    /// The instructions, in address order, with their addresses.
    pub insts: Vec<(u32, Inst)>,
    /// Intraprocedural successors (branch taken/fall-through, jump
    /// target, call → return site), as block indices.
    pub succs: Vec<usize>,
    /// Callee entry block when the terminator is a direct call.
    pub call_succ: Option<usize>,
    /// Predecessors over `succs` ∪ `call_succ`.
    pub preds: Vec<usize>,
    /// Whether the block ends in an indirect call (`jalr`): control
    /// continues at the return site, but the callee is unknown.
    pub indirect_call: bool,
    /// Whether a non-terminating last instruction would fall through past
    /// the end of the text segment.
    pub falls_off_text: bool,
}

impl BasicBlock {
    /// Address of the last instruction.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.insts.last().map_or(self.start, |&(pc, _)| pc)
    }

    /// The last instruction, which decides the block's successors.
    #[must_use]
    pub fn terminator(&self) -> Option<&(u32, Inst)> {
        self.insts.last()
    }
}

/// The control-flow graph of a [`Program`]'s text segment.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All blocks, in ascending address order.
    pub blocks: Vec<BasicBlock>,
    /// Index of the block holding the entry point.
    pub entry: usize,
    /// Addresses of text words that do not decode (none in assembler
    /// output; surfaced as lint errors).
    pub undecodable: Vec<u32>,
    /// Control-transfer targets that lie outside the text segment, as
    /// `(branch pc, target)` (surfaced as lint errors).
    pub wild_targets: Vec<(u32, u32)>,
    starts: BTreeMap<u32, usize>,
}

impl Cfg {
    /// Builds the CFG for `program`.
    #[must_use]
    pub fn build(program: &Program) -> Cfg {
        let mut insts: Vec<(u32, Option<Inst>)> = Vec::with_capacity(program.text_len());
        let mut pc = program.text_base();
        for &word in program.text() {
            insts.push((pc, Inst::decode(word).ok()));
            pc += INST_BYTES;
        }
        let text_end = pc;
        let in_text =
            |a: u32| a >= program.text_base() && a < text_end && a.is_multiple_of(INST_BYTES);

        // Pass 1: leaders. The entry point, every control-transfer target
        // inside text, and the instruction after every control transfer.
        let mut leader: BTreeMap<u32, ()> = BTreeMap::new();
        if in_text(program.entry()) {
            leader.insert(program.entry(), ());
        }
        if !insts.is_empty() {
            leader.insert(program.text_base(), ());
        }
        let mut undecodable = Vec::new();
        let mut wild_targets = Vec::new();
        for &(pc, ref inst) in &insts {
            let Some(inst) = inst else {
                undecodable.push(pc);
                continue;
            };
            if inst.ctrl_kind().is_some() || matches!(inst, Inst::Halt) {
                if in_text(pc + INST_BYTES) {
                    leader.insert(pc + INST_BYTES, ());
                }
                if let Some(target) = inst.static_target(pc) {
                    if in_text(target) {
                        leader.insert(target, ());
                    } else {
                        wild_targets.push((pc, target));
                    }
                }
            }
        }

        // Pass 2: slice into blocks at leaders and terminators.
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut current: Vec<(u32, Inst)> = Vec::new();
        let flush = |current: &mut Vec<(u32, Inst)>, blocks: &mut Vec<BasicBlock>| {
            if let Some(&(start, _)) = current.first() {
                blocks.push(BasicBlock {
                    start,
                    insts: std::mem::take(current),
                    succs: Vec::new(),
                    call_succ: None,
                    preds: Vec::new(),
                    indirect_call: false,
                    falls_off_text: false,
                });
            }
        };
        for &(pc, ref inst) in &insts {
            if leader.contains_key(&pc) {
                flush(&mut current, &mut blocks);
            }
            let Some(inst) = *inst else {
                // An undecodable word terminates the block: nothing can be
                // said about control flow through it.
                flush(&mut current, &mut blocks);
                continue;
            };
            let ends_block = inst.ctrl_kind().is_some() || matches!(inst, Inst::Halt);
            current.push((pc, inst));
            if ends_block {
                flush(&mut current, &mut blocks);
            }
        }
        flush(&mut current, &mut blocks);

        let starts: BTreeMap<u32, usize> =
            blocks.iter().enumerate().map(|(i, b)| (b.start, i)).collect();

        // Pass 3: edges.
        #[allow(clippy::needless_range_loop)] // `blocks[i]` is mutated below
        for i in 0..blocks.len() {
            let Some(&(pc, inst)) = blocks[i].terminator() else { continue };
            let fall = pc + INST_BYTES;
            let fall_idx = starts.get(&fall).copied();
            let target_idx = inst.static_target(pc).and_then(|t| starts.get(&t).copied());
            let mut succs = Vec::new();
            match inst.ctrl_kind() {
                Some(CtrlKind::CondBranch) => {
                    succs.extend(target_idx);
                    match fall_idx {
                        Some(f) => succs.push(f),
                        None => blocks[i].falls_off_text = true,
                    }
                }
                Some(CtrlKind::Jump) => succs.extend(target_idx),
                Some(CtrlKind::Call) => {
                    match fall_idx {
                        Some(f) => succs.push(f),
                        None => blocks[i].falls_off_text = true,
                    }
                    blocks[i].call_succ = target_idx;
                }
                Some(CtrlKind::IndirectCall) => {
                    blocks[i].indirect_call = true;
                    match fall_idx {
                        Some(f) => succs.push(f),
                        None => blocks[i].falls_off_text = true,
                    }
                }
                Some(CtrlKind::Return) => {}
                None if matches!(inst, Inst::Halt) => {}
                None => match fall_idx {
                    Some(f) => succs.push(f),
                    None => blocks[i].falls_off_text = true,
                },
            }
            succs.sort_unstable();
            succs.dedup();
            blocks[i].succs = succs;
        }
        for i in 0..blocks.len() {
            for s in blocks[i].succs.clone().into_iter().chain(blocks[i].call_succ) {
                blocks[s].preds.push(i);
            }
        }

        let entry = starts.get(&program.entry()).copied().unwrap_or(0);
        Cfg { blocks, entry, undecodable, wild_targets, starts }
    }

    /// Index of the block starting exactly at `pc`.
    #[must_use]
    pub fn block_starting_at(&self, pc: u32) -> Option<usize> {
        self.starts.get(&pc).copied()
    }

    /// Index of the block whose address range contains `pc`.
    #[must_use]
    pub fn block_containing(&self, pc: u32) -> Option<usize> {
        let (_, &idx) = self.starts.range(..=pc).next_back()?;
        let b = &self.blocks[idx];
        (pc >= b.start && pc <= b.end()).then_some(idx)
    }

    /// Total decoded instructions across all blocks.
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Total edges (intraprocedural + call).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len() + usize::from(b.call_succ.is_some())).sum()
    }

    /// Which blocks are reachable from the entry point, following both
    /// intraprocedural and call edges.
    #[must_use]
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut work = vec![self.entry];
        seen[self.entry] = true;
        while let Some(b) = work.pop() {
            for s in self.blocks[b].succs.iter().copied().chain(self.blocks[b].call_succ) {
                if !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        seen
    }

    /// Reverse post-order over reachable blocks (entry first), following
    /// both intraprocedural and call edges — the iteration order used by
    /// the dominator and dataflow fixpoints.
    #[must_use]
    pub fn reverse_post_order(&self) -> Vec<usize> {
        if self.blocks.is_empty() {
            return Vec::new();
        }
        let mut state = vec![0u8; self.blocks.len()]; // 0 new, 1 open, 2 done
        let mut post = Vec::new();
        let mut stack = vec![(self.entry, 0usize)];
        state[self.entry] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs: Vec<usize> =
                self.blocks[b].succs.iter().copied().chain(self.blocks[b].call_succ).collect();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    fn cfg_of(src: &str) -> (Program, Cfg) {
        let p = assemble(src).expect("test source assembles");
        let c = Cfg::build(&p);
        (p, c)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, c) = cfg_of(".text\n  addi $r2, $r0, 1\n  addi $r3, $r0, 2\n  halt\n");
        assert_eq!(c.blocks.len(), 1);
        assert!(c.blocks[0].succs.is_empty(), "halt has no successors");
        assert_eq!(c.inst_count(), 3);
    }

    #[test]
    fn loop_makes_back_edge_shape() {
        let (p, c) = cfg_of(
            ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        // Blocks: [li], [addi; bne], [halt].
        assert_eq!(c.blocks.len(), 3);
        let head = c.block_starting_at(p.symbol("loop").unwrap()).unwrap();
        assert!(c.blocks[head].succs.contains(&head), "tail branches back to the head");
        assert_eq!(c.blocks[head].succs.len(), 2);
    }

    #[test]
    fn call_gets_summary_and_call_edges() {
        let (p, c) = cfg_of(".text\n  jal leaf\n  halt\nleaf:\n  addi $r3, $r3, 1\n  jr $ra\n");
        let caller = c.entry;
        let leaf = c.block_starting_at(p.symbol("leaf").unwrap()).unwrap();
        assert_eq!(c.blocks[caller].call_succ, Some(leaf));
        assert_eq!(c.blocks[caller].succs.len(), 1, "summary edge to the return site");
        assert!(c.reachable()[leaf], "callee reachable through the call edge");
        assert!(c.blocks[leaf].succs.is_empty(), "jr ends the walk");
    }

    #[test]
    fn block_containing_covers_interior_pcs() {
        let (p, c) = cfg_of(".text\n  addi $r2, $r0, 1\n  addi $r3, $r0, 2\n  halt\n");
        let base = p.text_base();
        assert_eq!(c.block_containing(base + 4), Some(0));
        assert_eq!(c.block_containing(base + 12), None, "past the last instruction");
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let (_, c) = cfg_of(
            ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        let rpo = c.reverse_post_order();
        assert_eq!(rpo[0], c.entry);
        assert_eq!(rpo.len(), c.blocks.len());
    }
}
