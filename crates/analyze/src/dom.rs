//! Dominator computation over the CFG.
//!
//! Iterative immediate-dominator algorithm (Cooper, Harvey & Kennedy,
//! "A Simple, Fast Dominance Algorithm") over the reverse post-order of
//! reachable blocks. Call edges participate alongside intraprocedural
//! edges, so a procedure entered only through `jal` is dominated by its
//! call site — exactly what the natural-loop finder needs to see loops
//! inside procedures while rejecting recursion cycles.

use crate::cfg::Cfg;

/// Immediate-dominator tree: `idom[b]` is the immediate dominator of block
/// `b`, with `idom[entry] == entry`; unreachable blocks hold `usize::MAX`.
#[derive(Debug, Clone)]
pub struct Dominators {
    idom: Vec<usize>,
    rpo_index: Vec<usize>,
}

/// Sentinel for blocks the dominator walk never reached.
const UNREACHED: usize = usize::MAX;

impl Dominators {
    /// Computes the dominator tree of `cfg`.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.blocks.len();
        let rpo = cfg.reverse_post_order();
        let mut rpo_index = vec![UNREACHED; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut idom = vec![UNREACHED; n];
        if n == 0 {
            return Dominators { idom, rpo_index };
        }
        idom[cfg.entry] = cfg.entry;

        let intersect = |idom: &[usize], rpo_index: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = idom[a];
                }
                while rpo_index[b] > rpo_index[a] {
                    b = idom[b];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == cfg.entry {
                    continue;
                }
                let mut new_idom = UNREACHED;
                for &p in &cfg.blocks[b].preds {
                    if idom[p] == UNREACHED {
                        continue;
                    }
                    new_idom = if new_idom == UNREACHED {
                        p
                    } else {
                        intersect(&idom, &rpo_index, p, new_idom)
                    };
                }
                if new_idom != UNREACHED && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    /// The immediate dominator of `b` (`entry` maps to itself); `None` for
    /// unreachable blocks.
    #[must_use]
    pub fn idom(&self, b: usize) -> Option<usize> {
        (self.idom[b] != UNREACHED).then(|| self.idom[b])
    }

    /// Whether block `a` dominates block `b` (reflexive).
    #[must_use]
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom[a] == UNREACHED || self.idom[b] == UNREACHED {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let up = self.idom[cur];
            if up == cur {
                return false; // reached the entry without meeting `a`
            }
            cur = up;
        }
    }

    /// RPO position of a block — a topological-ish order useful for
    /// deterministic iteration. `None` for unreachable blocks.
    #[must_use]
    pub fn rpo_index(&self, b: usize) -> Option<usize> {
        (self.rpo_index[b] != UNREACHED).then(|| self.rpo_index[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    fn doms_of(src: &str) -> (riq_asm::Program, Cfg, Dominators) {
        let p = assemble(src).expect("test source assembles");
        let c = Cfg::build(&p);
        let d = Dominators::compute(&c);
        (p, c, d)
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let (_, c, d) = doms_of(
            ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        );
        for (b, _) in c.blocks.iter().enumerate() {
            assert!(d.dominates(c.entry, b), "entry must dominate block {b}");
        }
        assert_eq!(d.idom(c.entry), Some(c.entry));
    }

    #[test]
    fn diamond_join_dominated_by_fork_not_arms() {
        // fork: branch to b; fall to a; a jumps to join; b falls to join.
        let (p, c, d) = doms_of(
            ".text\nfork:\n  beq $r2, $r0, b\na:\n  addi $r3, $r3, 1\n  j join\nb:\n  addi $r3, $r3, 2\njoin:\n  halt\n",
        );
        let fork = c.block_starting_at(p.symbol("fork").unwrap()).unwrap();
        let a = c.block_starting_at(p.symbol("a").unwrap()).unwrap();
        let b = c.block_starting_at(p.symbol("b").unwrap()).unwrap();
        let join = c.block_starting_at(p.symbol("join").unwrap()).unwrap();
        assert_eq!(d.idom(join), Some(fork));
        assert!(!d.dominates(a, join));
        assert!(!d.dominates(b, join));
    }

    #[test]
    fn callee_dominated_by_call_site() {
        let (p, c, d) = doms_of(".text\n  jal leaf\n  halt\nleaf:\n  addi $r3, $r3, 1\n  jr $ra\n");
        let leaf = c.block_starting_at(p.symbol("leaf").unwrap()).unwrap();
        assert!(d.dominates(c.entry, leaf), "call edge reaches the callee");
    }

    #[test]
    fn loop_head_dominates_tail() {
        let (p, c, d) = doms_of(
            ".text\n  li $r2, 3\nhead:\n  beq $r2, $r0, out\n  addi $r2, $r2, -1\n  j head\nout:\n  halt\n",
        );
        let head = c.block_starting_at(p.symbol("head").unwrap()).unwrap();
        // The block ending in `j head` is a predecessor of head other than entry.
        let tail = c.blocks[head].preds.iter().copied().find(|&x| x != c.entry).unwrap();
        assert!(d.dominates(head, tail));
        assert!(!d.dominates(tail, head));
    }
}
