//! Static reuse-benefit prediction.
//!
//! Scores every natural loop at each capacity in
//! [`crate::CAPACITIES`] by composing the three static passes: the
//! eligibility verdict (can the FSM capture it at all), the class-mix
//! trip estimates (how much dynamic execution the span covers), and the
//! stride/alias classification (does the span predict revoke-causing
//! memory squashes). The model mirrors the reuse FSM's warm-up: one
//! iteration to detect the backward branch, one to buffer, gating from
//! the third on — so a loop pays for itself only when its proven trip
//! count clears [`WARMUP_ITERS`].
//!
//! Predicted energy is a *score*, not joules: each predicted gated cycle
//! saves [`FRONT_END_SAVINGS_FRACTION`] of the chip's per-cycle energy
//! (front-end idle→gated plus the front-end clock share), and the
//! per-class decomposition splits that score over the loop's span mix
//! under a [`ClassEnergyProfile`]. Ranking loops (and kernels) by this
//! score is what the attribution engine validates against measured
//! per-loop savings.

use crate::classmix::ClassMix;
use crate::eligibility::Eligibility;
use crate::stride::LoopMem;
use riq_power::{ClassEnergyProfile, EnergyClass};

/// Iterations the FSM spends detecting + buffering before gating.
pub const WARMUP_ITERS: f64 = 2.0;

/// Fraction of whole-chip per-cycle energy saved while the front end is
/// gated (idle→gated front-end structures plus the front-end clock
/// share of the Wattch-style model).
pub const FRONT_END_SAVINGS_FRACTION: f64 = 0.10;

/// Multiplier applied to a loop whose stride pass found aliasing
/// windows: memory-order squashes revoke buffering, so most entries
/// never reach (or stay in) code reuse.
pub const ALIAS_PENALTY: f64 = 0.25;

/// Predicted benefit of one loop at one queue capacity.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Queue capacity the prediction is for.
    pub capacity: u32,
    /// Whether the loop is statically eligible at this capacity.
    pub eligible: bool,
    /// Predicted promotions to code reuse (one per loop entry whose
    /// trip estimate clears the warm-up).
    pub promotions: f64,
    /// Predicted instructions supplied from the reuse buffer.
    pub reused_insts: f64,
    /// Predicted front-end-gated cycles (unit-IPC estimate).
    pub gated_cycles: f64,
    /// Predicted fraction of whole-program energy saved.
    pub energy_savings: f64,
    /// Predicted fraction of whole-program EDP saved (the model holds
    /// IPC constant, so delay is unchanged and this equals the energy
    /// fraction).
    pub edp_savings: f64,
    /// Per-class split of `energy_savings`, aligned with
    /// [`EnergyClass::ALL`], weighted by the profile.
    pub class_savings: [f64; 5],
}

/// Runs the predictor for every loop at every capacity in
/// `per_capacity`'s verdict lists. `per_capacity`, `mix.loops`, and
/// `mems` are all aligned with the loop table.
#[must_use]
pub fn predict(
    per_capacity: &[Vec<(u32, Eligibility)>],
    mix: &ClassMix,
    mems: &[LoopMem],
    profile: &ClassEnergyProfile,
) -> Vec<Vec<Prediction>> {
    let est_total = mix.est_dynamic_insts().max(1.0);
    per_capacity
        .iter()
        .enumerate()
        .map(|(i, verdicts)| {
            let lm = &mix.loops[i];
            let mem = &mems[i];
            verdicts
                .iter()
                .map(|(cap, verdict)| predict_one(*cap, verdict, lm, mem, profile, est_total))
                .collect()
        })
        .collect()
}

fn predict_one(
    capacity: u32,
    verdict: &Eligibility,
    lm: &crate::classmix::LoopMix,
    mem: &LoopMem,
    profile: &ClassEnergyProfile,
    est_total: f64,
) -> Prediction {
    let zero = Prediction {
        capacity,
        eligible: false,
        promotions: 0.0,
        reused_insts: 0.0,
        gated_cycles: 0.0,
        energy_savings: 0.0,
        edp_savings: 0.0,
        class_savings: [0.0; 5],
    };
    let Eligibility::Eligible { iter_size, .. } = *verdict else { return zero };

    let entries = (lm.weight / lm.est_trips).max(1.0);
    let gated_iters = (lm.est_trips - WARMUP_ITERS).max(0.0);
    let penalty = if mem.alias_pairs.is_empty() { 1.0 } else { ALIAS_PENALTY };
    let promotions = if gated_iters > 0.0 { entries * penalty } else { 0.0 };
    let reused_insts = entries * gated_iters * f64::from(iter_size) * penalty;
    // Unit-IPC estimate: one buffered instruction per gated cycle.
    let gated_cycles = reused_insts;
    let energy_savings = (gated_cycles / est_total) * FRONT_END_SAVINGS_FRACTION;

    // Per-class split of the score over the span mix, reweighted by the
    // profile (a heavier class absorbs more of the predicted benefit).
    let weighted: Vec<f64> =
        EnergyClass::ALL.iter().map(|&c| profile.weight(c) * lm.span_mix.share(c)).collect();
    let wsum: f64 = weighted.iter().sum();
    let mut class_savings = [0.0; 5];
    if wsum > 0.0 {
        for (slot, w) in class_savings.iter_mut().zip(weighted.iter()) {
            *slot = energy_savings * w / wsum;
        }
    }

    Prediction {
        capacity,
        eligible: true,
        promotions,
        reused_insts,
        gated_cycles,
        energy_savings,
        edp_savings: energy_savings,
        class_savings,
    }
}

/// Whole-program predicted savings score at one capacity: the sum over
/// every loop's predicted energy-savings fraction. This is the number
/// the rank-correlation acceptance test compares against measured
/// energy savings across kernels.
#[must_use]
pub fn program_score(predictions: &[Vec<Prediction>], capacity: u32) -> f64 {
    predictions
        .iter()
        .flat_map(|per_cap| per_cap.iter().filter(|p| p.capacity == capacity))
        .map(|p| p.energy_savings)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, CAPACITIES};
    use riq_asm::assemble;

    const COUNTED: &str =
        ".text\n  li $r2, 12\nloop:\n  addi $r3, $r3, 1\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n";

    #[test]
    fn eligible_counted_loop_predicts_benefit() {
        let p = assemble(COUNTED).unwrap();
        let a = analyze(&p);
        let preds = &a.loops[0].predict;
        assert_eq!(preds.len(), CAPACITIES.len());
        let at64 = preds.iter().find(|p| p.capacity == 64).unwrap();
        assert!(at64.eligible);
        assert_eq!(at64.promotions, 1.0);
        // 1 entry x (12 - 2) gated iterations x 3-inst iteration.
        assert_eq!(at64.reused_insts, 30.0);
        assert!(at64.energy_savings > 0.0);
        assert_eq!(at64.edp_savings, at64.energy_savings);
        let split: f64 = at64.class_savings.iter().sum();
        assert!((split - at64.energy_savings).abs() < 1e-12);
    }

    #[test]
    fn ineligible_capacity_predicts_zero() {
        // Span 3 loop: at capacity 2 it is too large.
        let p = assemble(COUNTED).unwrap();
        let a = analyze(&p);
        let verdicts = vec![vec![(2u32, crate::classify(&p, &a.cfg, &a.loops[0].natural, 2))]];
        let mems = vec![a.loops[0].mem.clone()];
        let mix = crate::classmix::class_mix(&p, &a.cfg, &[a.loops[0].natural.clone()]);
        let preds = predict(&verdicts, &mix, &mems, &riq_power::ClassEnergyProfile::default());
        assert!(!preds[0][0].eligible);
        assert_eq!(preds[0][0].energy_savings, 0.0);
    }

    #[test]
    fn short_trip_loop_never_clears_warmup() {
        let p = assemble(
            ".text\n  li $r2, 2\nloop:\n  addi $r3, $r3, 1\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        )
        .unwrap();
        let a = analyze(&p);
        let at64 = a.loops[0].predict.iter().find(|p| p.capacity == 64).unwrap();
        assert!(at64.eligible, "statically capturable");
        assert_eq!(at64.promotions, 0.0, "2 trips never exit warm-up");
        assert_eq!(at64.energy_savings, 0.0);
    }

    #[test]
    fn program_score_sums_eligible_loops() {
        let p = assemble(COUNTED).unwrap();
        let a = analyze(&p);
        let preds: Vec<Vec<Prediction>> = a.loops.iter().map(|l| l.predict.clone()).collect();
        let s = program_score(&preds, 64);
        assert!(s > 0.0);
        assert_eq!(s, a.loops[0].predict.iter().find(|p| p.capacity == 64).unwrap().energy_savings);
    }
}
