//! # riq-analyze — static CFG/loop/reuse-eligibility analysis
//!
//! Static analysis over assembled [`Program`] images, answering the
//! question the dynamic reuse hardware answers at run time: *which loops
//! can the reuse issue queue capture, and why not the others?*
//!
//! The pipeline (see DESIGN.md):
//!
//! 1. **CFG** ([`Cfg`]) — decode the text segment into basic blocks with
//!    intraprocedural and call edges;
//! 2. **Dominators** ([`Dominators`]) — iterative idom over reverse
//!    post-order;
//! 3. **Natural loops** ([`find_loops`]) — back edges whose shape the
//!    hardware loop detector recognizes (backward conditional branch or
//!    direct jump);
//! 4. **Eligibility** ([`classify`]) — mirror the reuse controller's
//!    buffering rules on the contiguous span `[head, tail]` at each queue
//!    capacity in [`CAPACITIES`];
//! 5. **Predictive passes** ([`class_mix`], [`mem_summary`], [`predict`])
//!    — per-loop instruction-class mixes weighted by const-prop trip
//!    estimates, memory stride/alias-window classification, and a static
//!    reuse-benefit score at every capacity;
//! 6. **Liveness + lint** ([`Liveness`], [`lint`]) — def-use dataflow
//!    powering a program linter (read-before-write, unreachable code,
//!    control flow or stores escaping their segments, aliasing reuse
//!    windows);
//! 7. **Agreement + attribution** ([`agreement`], [`attribute`]) — replay
//!    a run's reuse-FSM trace events, score the static verdicts against
//!    actual promotions (precision/recall), and attribute measured
//!    per-loop, per-class energy/IPC deltas back to the loop table.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_asm::assemble;
//! use riq_analyze::{analyze, summary_line};
//!
//! let program = assemble(
//!     ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
//! )?;
//! let analysis = analyze(&program);
//! assert_eq!(analysis.loops.len(), 1);
//! assert!(analysis.lint.is_clean());
//! assert_eq!(
//!     summary_line("demo", &program, &analysis, 64, None),
//!     "riq-analyze: demo: blocks=3 loops=1 eligible@64=1 lint_errors=0 lint_warnings=0",
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attribute;
mod cfg;
mod classmix;
mod constprop;
mod dataflow;
mod dom;
mod dynagree;
mod eligibility;
mod lint;
mod loops;
mod predict;
mod report;
mod stride;

pub use attribute::{
    attribute, attribution_json, attribution_summary_line, attribution_table, Attribution,
    LoopAttribution, MeasuredRun, ATTRIBUTION_SCHEMA_VERSION,
};
pub use cfg::{BasicBlock, Cfg};
pub use classmix::{class_mix, energy_class_of, ClassMix, LoopMix, Mix, DEFAULT_TRIPS};
pub use dataflow::{first_exposed_use, reg_bit, regs_in, Liveness, RegSet};
pub use dom::Dominators;
pub use dynagree::{agreement, Agreement, LoopAgreement};
pub use eligibility::{capturable_loop_end, classify, Eligibility, CAPACITIES};
pub use lint::{lint, Diag, LintReport, Severity};
pub use loops::{find_loops, BackKind, NaturalLoop};
pub use predict::{
    predict, program_score, Prediction, ALIAS_PENALTY, FRONT_END_SAVINGS_FRACTION, WARMUP_ITERS,
};
pub use report::{human_table, report_json, summary_line, ANALYZE_SCHEMA_VERSION};
pub use stride::{alias_diags, mem_summary, LoopMem, MemRef};

use riq_asm::Program;
use riq_power::ClassEnergyProfile;

/// One natural loop with its static eligibility at every capacity in
/// [`CAPACITIES`], plus the predictive pass results.
#[derive(Debug, Clone)]
pub struct LoopSummary {
    /// The loop itself.
    pub natural: NaturalLoop,
    /// `(capacity, verdict)` for each capacity, ascending.
    pub per_capacity: Vec<(u32, Eligibility)>,
    /// Smallest analyzed capacity at which the loop is eligible, if any.
    pub min_capacity: Option<u32>,
    /// Instruction-class mix and trip estimate ([`class_mix`]).
    pub mix: LoopMix,
    /// Memory stride/alias summary ([`mem_summary`]).
    pub mem: LoopMem,
    /// Benefit prediction per capacity, aligned with `per_capacity`
    /// ([`predict`], at the default all-ones [`ClassEnergyProfile`]).
    pub predict: Vec<Prediction>,
}

/// The full static analysis of one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree over the CFG.
    pub doms: Dominators,
    /// Natural loops with per-capacity eligibility, sorted by `(head, tail)`.
    pub loops: Vec<LoopSummary>,
    /// Liveness solution.
    pub liveness: Liveness,
    /// Lint diagnostics.
    pub lint: LintReport,
    /// Class mix of instructions contained in no loop span.
    pub outside_mix: Mix,
    /// Class mix of every decoded instruction in the text segment.
    pub program_mix: Mix,
}

/// Runs the whole static pipeline over `program`.
#[must_use]
pub fn analyze(program: &Program) -> Analysis {
    let cfg = Cfg::build(program);
    let doms = Dominators::compute(&cfg);
    let liveness = Liveness::compute(&cfg);
    let mut lint = lint::lint(program, &cfg, &liveness);
    let naturals = find_loops(&cfg, &doms);

    // Predictive passes over the loop table.
    let mix = class_mix(program, &cfg, &naturals);
    let mems = mem_summary(program, &cfg, &naturals);
    lint.diags.extend(alias_diags(program, &naturals, &mems));
    lint.diags.sort_by(|a, b| a.pc.cmp(&b.pc).then(a.code.cmp(b.code)));

    let per_caps: Vec<Vec<(u32, Eligibility)>> = naturals
        .iter()
        .map(|natural| {
            CAPACITIES.iter().map(|&cap| (cap, classify(program, &cfg, natural, cap))).collect()
        })
        .collect();
    let predictions = predict(&per_caps, &mix, &mems, &ClassEnergyProfile::default());

    let outside_mix = mix.outside;
    let program_mix = mix.program;
    let loops = naturals
        .into_iter()
        .zip(per_caps)
        .zip(mix.loops)
        .zip(mems)
        .zip(predictions)
        .map(|((((natural, per_capacity), loop_mix), mem), pred)| {
            let min_capacity =
                per_capacity.iter().find(|(_, e)| e.is_eligible()).map(|&(cap, _)| cap);
            LoopSummary { natural, per_capacity, min_capacity, mix: loop_mix, mem, predict: pred }
        })
        .collect();
    Analysis { cfg, doms, loops, liveness, lint, outside_mix, program_mix }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    #[test]
    fn analyze_ties_the_pipeline_together() {
        let p = assemble(
            ".text\n  li $r2, 3\nouter:\n  li $r3, 4\ninner:\n  addi $r3, $r3, -1\n  bne $r3, $r0, inner\n  addi $r2, $r2, -1\n  bne $r2, $r0, outer\n  halt\n",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.loops.len(), 2);
        assert!(a.lint.is_clean());
        // The inner loop is tiny: eligible from the smallest capacity on.
        let inner = a.loops.iter().find(|l| l.min_capacity == Some(16)).unwrap();
        assert!(inner.per_capacity.iter().all(|(_, e)| e.is_eligible()));
        // The outer loop never is (inner-loop rule at every capacity).
        let outer = a.loops.iter().find(|l| l.min_capacity.is_none()).unwrap();
        assert!(outer.per_capacity.iter().all(|(_, e)| matches!(e, Eligibility::InnerLoop { .. })));
    }

    #[test]
    fn loop_summaries_sorted_by_head() {
        let p = assemble(
            ".text\na:\n  bne $r2, $r0, a\nb:\n  addi $r3, $r3, -1\n  bne $r3, $r0, b\n  halt\n",
        )
        .unwrap();
        let a = analyze(&p);
        let heads: Vec<u32> = a.loops.iter().map(|l| l.natural.head).collect();
        let mut sorted = heads.clone();
        sorted.sort_unstable();
        assert_eq!(heads, sorted);
    }
}
