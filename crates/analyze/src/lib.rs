//! # riq-analyze — static CFG/loop/reuse-eligibility analysis
//!
//! Static analysis over assembled [`Program`] images, answering the
//! question the dynamic reuse hardware answers at run time: *which loops
//! can the reuse issue queue capture, and why not the others?*
//!
//! The pipeline (see DESIGN.md):
//!
//! 1. **CFG** ([`Cfg`]) — decode the text segment into basic blocks with
//!    intraprocedural and call edges;
//! 2. **Dominators** ([`Dominators`]) — iterative idom over reverse
//!    post-order;
//! 3. **Natural loops** ([`find_loops`]) — back edges whose shape the
//!    hardware loop detector recognizes (backward conditional branch or
//!    direct jump);
//! 4. **Eligibility** ([`classify`]) — mirror the reuse controller's
//!    buffering rules on the contiguous span `[head, tail]` at each queue
//!    capacity in [`CAPACITIES`];
//! 5. **Liveness + lint** ([`Liveness`], [`lint`]) — def-use dataflow
//!    powering a program linter (read-before-write, unreachable code,
//!    control flow or stores escaping their segments);
//! 6. **Agreement** ([`agreement`]) — replay a run's reuse-FSM trace
//!    events and score the static verdicts against actual promotions
//!    (precision/recall), classifying every disagreement.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_asm::assemble;
//! use riq_analyze::{analyze, summary_line};
//!
//! let program = assemble(
//!     ".text\n  li $r2, 3\nloop:\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
//! )?;
//! let analysis = analyze(&program);
//! assert_eq!(analysis.loops.len(), 1);
//! assert!(analysis.lint.is_clean());
//! assert_eq!(
//!     summary_line("demo", &program, &analysis, 64, None),
//!     "riq-analyze: demo: blocks=3 loops=1 eligible@64=1 lint_errors=0 lint_warnings=0",
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cfg;
mod dataflow;
mod dom;
mod dynagree;
mod eligibility;
mod lint;
mod loops;
mod report;

pub use cfg::{BasicBlock, Cfg};
pub use dataflow::{first_exposed_use, reg_bit, regs_in, Liveness, RegSet};
pub use dom::Dominators;
pub use dynagree::{agreement, Agreement, LoopAgreement};
pub use eligibility::{capturable_loop_end, classify, Eligibility, CAPACITIES};
pub use lint::{lint, Diag, LintReport, Severity};
pub use loops::{find_loops, BackKind, NaturalLoop};
pub use report::{human_table, report_json, summary_line, ANALYZE_SCHEMA_VERSION};

use riq_asm::Program;

/// One natural loop with its static eligibility at every capacity in
/// [`CAPACITIES`].
#[derive(Debug, Clone)]
pub struct LoopSummary {
    /// The loop itself.
    pub natural: NaturalLoop,
    /// `(capacity, verdict)` for each capacity, ascending.
    pub per_capacity: Vec<(u32, Eligibility)>,
    /// Smallest analyzed capacity at which the loop is eligible, if any.
    pub min_capacity: Option<u32>,
}

/// The full static analysis of one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree over the CFG.
    pub doms: Dominators,
    /// Natural loops with per-capacity eligibility, sorted by `(head, tail)`.
    pub loops: Vec<LoopSummary>,
    /// Liveness solution.
    pub liveness: Liveness,
    /// Lint diagnostics.
    pub lint: LintReport,
}

/// Runs the whole static pipeline over `program`.
#[must_use]
pub fn analyze(program: &Program) -> Analysis {
    let cfg = Cfg::build(program);
    let doms = Dominators::compute(&cfg);
    let liveness = Liveness::compute(&cfg);
    let lint = lint::lint(program, &cfg, &liveness);
    let loops = find_loops(&cfg, &doms)
        .into_iter()
        .map(|natural| {
            let per_capacity: Vec<(u32, Eligibility)> = CAPACITIES
                .iter()
                .map(|&cap| (cap, classify(program, &cfg, &natural, cap)))
                .collect();
            let min_capacity =
                per_capacity.iter().find(|(_, e)| e.is_eligible()).map(|&(cap, _)| cap);
            LoopSummary { natural, per_capacity, min_capacity }
        })
        .collect();
    Analysis { cfg, doms, loops, liveness, lint }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    #[test]
    fn analyze_ties_the_pipeline_together() {
        let p = assemble(
            ".text\n  li $r2, 3\nouter:\n  li $r3, 4\ninner:\n  addi $r3, $r3, -1\n  bne $r3, $r0, inner\n  addi $r2, $r2, -1\n  bne $r2, $r0, outer\n  halt\n",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.loops.len(), 2);
        assert!(a.lint.is_clean());
        // The inner loop is tiny: eligible from the smallest capacity on.
        let inner = a.loops.iter().find(|l| l.min_capacity == Some(16)).unwrap();
        assert!(inner.per_capacity.iter().all(|(_, e)| e.is_eligible()));
        // The outer loop never is (inner-loop rule at every capacity).
        let outer = a.loops.iter().find(|l| l.min_capacity.is_none()).unwrap();
        assert!(outer.per_capacity.iter().all(|(_, e)| matches!(e, Eligibility::InnerLoop { .. })));
    }

    #[test]
    fn loop_summaries_sorted_by_head() {
        let p = assemble(
            ".text\na:\n  bne $r2, $r0, a\nb:\n  addi $r3, $r3, -1\n  bne $r3, $r0, b\n  halt\n",
        )
        .unwrap();
        let a = analyze(&p);
        let heads: Vec<u32> = a.loops.iter().map(|l| l.natural.head).collect();
        let mut sorted = heads.clone();
        sorted.sort_unstable();
        assert_eq!(heads, sorted);
    }
}
