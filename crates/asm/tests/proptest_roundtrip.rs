//! Property tests for the assembler: disassembled programs re-assemble to
//! the same image, labels resolve consistently between the text assembler
//! and the programmatic builder, and data layout is deterministic.

use proptest::prelude::*;
use riq_asm::{assemble, ProgramBuilder};
use riq_isa::{disassemble, AluImmOp, AluOp, Inst, IntReg};

fn wreg() -> impl Strategy<Value = IntReg> {
    (2u8..26).prop_map(IntReg::new)
}

/// Straight-line instructions whose `Display` form is valid assembler
/// input (everything except PC-relative branches, whose Display prints a
/// raw offset rather than a label).
fn textable_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        (
            wreg(),
            wreg(),
            wreg(),
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::Mul),
                Just(AluOp::And),
                Just(AluOp::Or),
                Just(AluOp::Xor),
                Just(AluOp::Slt),
            ]
        )
            .prop_map(|(rd, rs, rt, op)| Inst::Alu { op, rd, rs, rt }),
        (wreg(), wreg(), any::<i16>(), prop_oneof![Just(AluImmOp::Addi), Just(AluImmOp::Slti),])
            .prop_map(|(rt, rs, imm, op)| Inst::AluImm { op, rt, rs, imm }),
        (wreg(), wreg(), -64i16..64).prop_map(|(rt, base, w)| Inst::Lw { rt, base, off: w * 4 }),
        (wreg(), wreg(), -64i16..64).prop_map(|(rt, base, w)| Inst::Sw { rt, base, off: w * 4 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn display_reassembles_identically(insts in prop::collection::vec(textable_inst(), 1..40)) {
        // Build a program from Inst values, print each instruction, feed
        // the text back through the assembler, and compare images.
        let mut builder = ProgramBuilder::new();
        for i in &insts {
            builder.push(*i);
        }
        builder.push(Inst::Halt);
        let direct = builder.finish().expect("builds");

        let mut src = String::from(".text\n");
        for (pc, inst) in direct.iter_insts() {
            src.push_str("    ");
            src.push_str(&disassemble(&inst, pc));
            src.push('\n');
        }
        let reassembled = assemble(&src).expect("round-trip source assembles");
        prop_assert_eq!(direct.text(), reassembled.text());
    }

    #[test]
    fn builder_and_assembler_agree_on_branches(
        body_len in 1usize..20,
        trips in 1i16..50,
    ) {
        // Same loop built both ways must produce identical encodings.
        let r2 = IntReg::new(2);
        let r3 = IntReg::new(3);
        let mut b = ProgramBuilder::new();
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: IntReg::ZERO, imm: trips });
        b.label("top");
        for _ in 0..body_len {
            b.push(Inst::Alu { op: AluOp::Add, rd: r3, rs: r3, rt: r2 });
        }
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: r2, imm: -1 });
        b.bne(r2, IntReg::ZERO, "top");
        b.push(Inst::Halt);
        let built = b.finish().expect("builds");

        let mut src = format!("    addi $r2, $r0, {trips}\ntop:\n");
        for _ in 0..body_len {
            src.push_str("    add $r3, $r3, $r2\n");
        }
        src.push_str("    addi $r2, $r2, -1\n    bne $r2, $r0, top\n    halt\n");
        let assembled = assemble(&src).expect("assembles");
        prop_assert_eq!(built.text(), assembled.text());
    }

    #[test]
    fn data_layout_is_deterministic(words in prop::collection::vec(any::<u32>(), 1..64)) {
        let mk = || {
            let mut b = ProgramBuilder::new();
            b.data_words("w", &words);
            b.data_doubles("d", &[1.5, 2.5]);
            b.push(Inst::Halt);
            b.finish().expect("builds")
        };
        let p1 = mk();
        let p2 = mk();
        prop_assert_eq!(p1.data(), p2.data());
        prop_assert_eq!(p1.symbol("w"), p2.symbol("w"));
        prop_assert_eq!(p1.symbol("d"), p2.symbol("d"));
        // Doubles are 8-aligned regardless of the word count before them.
        prop_assert_eq!(p1.symbol("d").expect("defined") % 8, 0);
    }

    #[test]
    fn comments_and_whitespace_are_invisible(pad in 0usize..8) {
        let spaces = " ".repeat(pad);
        let plain = assemble("  addi $r2, $r0, 7\n  halt\n").expect("assembles");
        let noisy = assemble(&format!(
            "{spaces}# leading comment\n{spaces}addi $r2, $r0, 7 ; trailing\n\n{spaces}halt\n"
        ))
        .expect("assembles");
        prop_assert_eq!(plain.text(), noisy.text());
    }
}
