//! Error-path coverage for the riq-asm text assembler.
//!
//! Every case asserts a specific [`AsmErrorKind`] (and the source line it is
//! tagged with) rather than grepping message text, so the assembler can
//! reword diagnostics without breaking these tests. None of these inputs may
//! panic — a panic here is itself a bug the fuzzer would have to shrink.

use riq_asm::{assemble, AsmErrorKind};

fn kind_of(src: &str) -> AsmErrorKind {
    assemble(src).expect_err("source was expected to be rejected").kind
}

fn line_of(src: &str) -> usize {
    assemble(src).expect_err("source was expected to be rejected").line
}

// ---- malformed and unknown directives ----

#[test]
fn unknown_data_directive() {
    assert_eq!(kind_of(".data\nx: .quad 1\n.text\n halt\n"), AsmErrorKind::UnknownDirective);
}

#[test]
fn space_with_negative_count() {
    assert_eq!(kind_of(".data\nb: .space -4\n.text\n halt\n"), AsmErrorKind::MalformedDirective);
}

#[test]
fn space_with_symbol_argument() {
    assert_eq!(kind_of(".data\nb: .space b\n.text\n halt\n"), AsmErrorKind::MalformedDirective);
}

#[test]
fn align_exponent_out_of_bounds() {
    assert_eq!(kind_of(".data\n.align 20\n.text\n halt\n"), AsmErrorKind::MalformedDirective);
}

#[test]
fn entry_without_label() {
    assert_eq!(kind_of(".entry 7\n halt\n"), AsmErrorKind::MalformedDirective);
}

#[test]
fn word_with_float_argument() {
    assert_eq!(kind_of(".data\nx: .word 1.5\n.text\n halt\n"), AsmErrorKind::MalformedDirective);
}

#[test]
fn double_with_register_argument() {
    assert_eq!(kind_of(".data\nx: .double $r2\n.text\n halt\n"), AsmErrorKind::MalformedDirective);
}

#[test]
fn segment_base_must_be_literal() {
    assert_eq!(kind_of(".text foo\n halt\n"), AsmErrorKind::MalformedDirective);
}

#[test]
fn data_directive_in_text_segment() {
    assert_eq!(kind_of(".text\n .word 1\n halt\n"), AsmErrorKind::Layout);
}

#[test]
fn instructions_in_data_segment() {
    assert_eq!(kind_of(".data\n addi $r2, $r2, 1\n"), AsmErrorKind::Layout);
}

// ---- out-of-range immediates ----

#[test]
fn addi_immediate_overflow() {
    let src = " addi $r2, $r2, 99999\n halt\n";
    assert_eq!(kind_of(src), AsmErrorKind::OutOfRange);
    assert_eq!(line_of(src), 1);
}

#[test]
fn addi_immediate_underflow() {
    assert_eq!(kind_of(" addi $r2, $r2, -32769\n halt\n"), AsmErrorKind::OutOfRange);
}

#[test]
fn lui_rejects_negative_immediate() {
    assert_eq!(kind_of(" lui $r2, -1\n halt\n"), AsmErrorKind::OutOfRange);
}

#[test]
fn lui_rejects_wide_immediate() {
    assert_eq!(kind_of(" lui $r2, 65536\n halt\n"), AsmErrorKind::OutOfRange);
}

#[test]
fn shift_amount_out_of_range() {
    assert_eq!(kind_of(" sll $r2, $r3, 32\n halt\n"), AsmErrorKind::OutOfRange);
}

#[test]
fn memory_offset_overflow() {
    assert_eq!(kind_of(" lw $r2, 40000($r3)\n halt\n"), AsmErrorKind::OutOfRange);
}

#[test]
fn segment_base_out_of_range() {
    assert_eq!(kind_of(".text -4\n halt\n"), AsmErrorKind::OutOfRange);
}

// ---- labels and symbols ----

#[test]
fn branch_to_undefined_label() {
    let src = " bne $r2, $r0, nowhere\n halt\n";
    assert_eq!(kind_of(src), AsmErrorKind::UndefinedSymbol);
    assert_eq!(line_of(src), 1);
}

#[test]
fn duplicate_label_across_segments() {
    assert_eq!(kind_of(".data\nx: .word 1\n.text\nx: halt\n"), AsmErrorKind::DuplicateLabel);
}

#[test]
fn undefined_entry_label() {
    assert_eq!(kind_of(".entry main\n halt\n"), AsmErrorKind::UndefinedSymbol);
}

// ---- operands, mnemonics, syntax ----

#[test]
fn missing_operand() {
    assert_eq!(kind_of(" addi $r2, $r3\n halt\n"), AsmErrorKind::BadOperand);
}

#[test]
fn fp_register_where_int_expected() {
    assert_eq!(kind_of(" addi $f2, $r3, 1\n halt\n"), AsmErrorKind::BadOperand);
}

#[test]
fn int_register_where_fp_expected() {
    assert_eq!(kind_of(" add.d $r2, $f1, $f2\n halt\n"), AsmErrorKind::BadOperand);
}

#[test]
fn register_number_out_of_bank() {
    assert_eq!(kind_of(" addi $r77, $r0, 1\n halt\n"), AsmErrorKind::BadOperand);
}

#[test]
fn unknown_mnemonic() {
    assert_eq!(kind_of(" frobnicate $r2\n halt\n"), AsmErrorKind::UnknownMnemonic);
}

#[test]
fn tokenizer_garbage_is_syntax() {
    assert_eq!(kind_of(" addi $r2, $r3, @!\n halt\n"), AsmErrorKind::Syntax);
}

#[test]
fn empty_program_is_layout_error() {
    let e = assemble("# just a comment\n").unwrap_err();
    assert_eq!(e.kind, AsmErrorKind::Layout);
    assert_eq!(e.line, 0, "file-level errors carry line 0");
}

// ---- .double alignment semantics (behavior, not error) ----

#[test]
fn double_after_odd_space_is_aligned() {
    // `.double` following an odd-sized `.space` must pad to an 8-byte
    // boundary and the label must point at the aligned datum.
    let p = assemble(".data\npad: .space 3\nd: .double 4.25\n.text\n halt\n").unwrap();
    let d = p.symbol("d").unwrap();
    assert_eq!(d % 8, 0, "label on .double points at aligned address");
    assert_eq!(d, p.data_base() + 8);
    let off = (d - p.data_base()) as usize;
    assert_eq!(&p.data()[off..off + 8], &4.25f64.to_bits().to_le_bytes());
}
