//! # riq-asm — assembler and program images for the riq ISA
//!
//! This crate turns source text or programmatic instruction streams into
//! loadable [`Program`] images consumed by the functional emulator
//! (`riq-emu`) and the cycle-level simulator (`riq-core`). It plays the role
//! of the cross-compiler toolchain in the original paper's SimpleScalar
//! setup.
//!
//! * [`assemble`] — a two-pass text assembler with labels, data directives
//!   (`.word`, `.double`, `.space`, `.align`), pseudo-instructions (`li`,
//!   `la`, `move`, `b`, `blt`/`bge`/`bgt`/`ble`), and located error messages;
//! * [`ProgramBuilder`] — an incremental builder used by code generators;
//! * [`Program`] — the immutable image: encoded text, initialized data,
//!   entry point, symbol table.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     .data
//!     vec:    .double 1.0, 2.0, 3.0
//!     .text
//!         la   $r6, vec
//!         li   $r2, 3
//!     loop:
//!         l.d  $f0, 0($r6)
//!         add.d $f2, $f2, $f0
//!         addi $r6, $r6, 8
//!         addi $r2, $r2, -1
//!         bne  $r2, $r0, loop
//!         halt
//!     "#,
//! )?;
//! assert!(program.text_len() >= 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod assembler;
mod builder;
mod parser;
mod program;

pub use assembler::{assemble, AsmErrorKind, AssembleError, AT};
pub use builder::{BuildProgramError, ProgramBuilder};
pub use parser::{Arg, Body, Line, ParseAsmError};
pub use program::{FetchError, Program, DATA_BASE, STACK_TOP, TEXT_BASE};
