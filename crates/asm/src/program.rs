//! Executable program images.
//!
//! A [`Program`] is what the assembler produces and what both the functional
//! emulator and the cycle simulator consume: an encoded text segment, an
//! initialized data segment, an entry point, and the symbol table.

use riq_isa::{DecodeInstError, Inst, INST_BYTES};
use std::collections::BTreeMap;
use std::fmt;

/// Default base address of the text segment.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Default base address of the data segment.
pub const DATA_BASE: u32 = 0x1000_0000;
/// Initial stack pointer handed to programs at reset.
pub const STACK_TOP: u32 = 0x7fff_fff0;

/// An assembled, loadable program image.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_asm::assemble;
/// let program = assemble(".text\n  addi $r2, $r0, 7\n  halt\n")?;
/// assert_eq!(program.text_len(), 2);
/// assert_eq!(program.entry(), program.text_base());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Program {
    text_base: u32,
    text: Vec<u32>,
    data_base: u32,
    data: Vec<u8>,
    entry: u32,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a program image from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `text_base` or `entry` is not 4-byte aligned.
    #[must_use]
    pub fn from_parts(
        text_base: u32,
        text: Vec<u32>,
        data_base: u32,
        data: Vec<u8>,
        entry: u32,
        symbols: BTreeMap<String, u32>,
    ) -> Program {
        assert_eq!(text_base % INST_BYTES, 0, "text base must be aligned");
        assert_eq!(entry % INST_BYTES, 0, "entry point must be aligned");
        Program { text_base, text, data_base, data, entry, symbols }
    }

    /// Base address of the text segment.
    #[must_use]
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// Encoded instruction words of the text segment.
    #[must_use]
    pub fn text(&self) -> &[u32] {
        &self.text
    }

    /// Number of instructions in the text segment.
    #[must_use]
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Base address of the data segment.
    #[must_use]
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// Initialized bytes of the data segment.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Entry-point address.
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The symbol table (label name → address).
    #[must_use]
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Looks up a symbol's address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// First address past the text segment.
    #[must_use]
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.text.len() as u32) * INST_BYTES
    }

    /// First address past the initialized data segment.
    #[must_use]
    pub fn data_end(&self) -> u32 {
        self.data_base + self.data.len() as u32
    }

    /// Whether `addr` falls inside the initialized data segment.
    #[must_use]
    pub fn contains_data(&self, addr: u32) -> bool {
        addr >= self.data_base && addr < self.data_end()
    }

    /// The label defined exactly at `addr`, if any. When several labels
    /// share an address the lexicographically smallest name is returned,
    /// so the answer is deterministic.
    #[must_use]
    pub fn label_at(&self, addr: u32) -> Option<&str> {
        self.symbols.iter().find(|&(_, &a)| a == addr).map(|(name, _)| name.as_str())
    }

    /// Names `addr` relative to the nearest label at or below it in the
    /// same segment: `"loop"` exactly at the label, `"loop+0x8"` past it,
    /// `None` when no label precedes `addr`. This is what the
    /// symbol-aware disassembler and the linter print for branch targets.
    #[must_use]
    pub fn symbolize(&self, addr: u32) -> Option<String> {
        let (name, base) = self
            .symbols
            .iter()
            .filter(|&(_, &a)| a <= addr)
            // max_by_key keeps the *last* maximum; BTreeMap iterates names
            // in ascending order, so ties pick the lexicographically
            // largest. Invert the comparison on the name to pin the
            // smallest instead.
            .map(|(n, &a)| (n, a))
            .max_by(|x, y| x.1.cmp(&y.1).then(y.0.cmp(x.0)))?;
        // A label only names addresses in its own segment: never describe
        // a text address as "data_label+huge_offset" or vice versa.
        let segment = |a: u32| {
            if a >= self.text_base && a <= self.text_end() {
                1
            } else if a >= self.data_base && a <= self.data_end() {
                2
            } else {
                0
            }
        };
        if segment(addr) == 0 || segment(addr) != segment(base) {
            return None;
        }
        if base == addr {
            Some(name.clone())
        } else {
            Some(format!("{name}+{:#x}", addr - base))
        }
    }

    /// A stable content fingerprint of the whole image (segments, entry
    /// point, and symbol table). Two programs fingerprint equal exactly
    /// when they are `==`; the value is identical across processes and
    /// platforms, so it can key persistent or shared result caches.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        riq_isa::fingerprint_of(self)
    }

    /// Whether `pc` falls inside the text segment.
    #[must_use]
    pub fn contains_pc(&self, pc: u32) -> bool {
        pc >= self.text_base
            && pc < self.text_base + (self.text.len() as u32) * INST_BYTES
            && pc.is_multiple_of(INST_BYTES)
    }

    /// The encoded word at `pc`, or `None` outside the text segment.
    #[must_use]
    pub fn word_at(&self, pc: u32) -> Option<u32> {
        if !self.contains_pc(pc) {
            return None;
        }
        Some(self.text[((pc - self.text_base) / INST_BYTES) as usize])
    }

    /// Decodes the instruction at `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError::OutOfText`] when `pc` is outside the text
    /// segment and [`FetchError::Decode`] when the word does not decode.
    pub fn inst_at(&self, pc: u32) -> Result<Inst, FetchError> {
        let word = self.word_at(pc).ok_or(FetchError::OutOfText(pc))?;
        Inst::decode(word).map_err(FetchError::Decode)
    }

    /// Iterates over `(pc, instruction)` pairs of the text segment, skipping
    /// words that fail to decode (there are none in assembler output).
    pub fn iter_insts(&self) -> impl Iterator<Item = (u32, Inst)> + '_ {
        self.text.iter().enumerate().filter_map(move |(i, &w)| {
            Inst::decode(w).ok().map(|inst| (self.text_base + (i as u32) * INST_BYTES, inst))
        })
    }
}

/// Error fetching an instruction from a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The PC is outside the text segment (or unaligned).
    OutOfText(u32),
    /// The word at the PC does not decode to a valid instruction.
    Decode(DecodeInstError),
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::OutOfText(pc) => write!(f, "pc {pc:#010x} is outside the text segment"),
            FetchError::Decode(e) => write!(f, "undecodable instruction: {e}"),
        }
    }
}

impl std::error::Error for FetchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FetchError::Decode(e) => Some(e),
            FetchError::OutOfText(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_isa::{AluImmOp, IntReg};

    fn sample() -> Program {
        let insts = [
            Inst::AluImm { op: AluImmOp::Addi, rt: IntReg::new(2), rs: IntReg::ZERO, imm: 5 },
            Inst::Halt,
        ];
        let text = insts.iter().map(|i| i.encode().unwrap()).collect();
        Program::from_parts(TEXT_BASE, text, DATA_BASE, vec![1, 2, 3], TEXT_BASE, BTreeMap::new())
    }

    #[test]
    fn pc_containment() {
        let p = sample();
        assert!(p.contains_pc(TEXT_BASE));
        assert!(p.contains_pc(TEXT_BASE + 4));
        assert!(!p.contains_pc(TEXT_BASE + 8));
        assert!(!p.contains_pc(TEXT_BASE + 1), "unaligned pc rejected");
        assert!(!p.contains_pc(TEXT_BASE - 4));
    }

    #[test]
    fn inst_fetch() {
        let p = sample();
        assert_eq!(p.inst_at(TEXT_BASE + 4), Ok(Inst::Halt));
        assert!(matches!(p.inst_at(0), Err(FetchError::OutOfText(0))));
    }

    #[test]
    fn iteration_matches_text() {
        let p = sample();
        let all: Vec<_> = p.iter_insts().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, TEXT_BASE);
        assert_eq!(all[1].1, Inst::Halt);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_entry_rejected() {
        let _ = Program::from_parts(
            TEXT_BASE,
            vec![],
            DATA_BASE,
            vec![],
            TEXT_BASE + 2,
            BTreeMap::new(),
        );
    }
}
