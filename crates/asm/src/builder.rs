//! Programmatic program construction.
//!
//! [`ProgramBuilder`] is the API code generators use (notably the
//! `riq-kernels` loop-nest compiler): push instructions and labels, reserve
//! and initialize data, and let the builder patch label-relative branches
//! and jumps when it finalizes.

use crate::program::{Program, DATA_BASE, TEXT_BASE};
use riq_isa::{BranchCond, Inst, IntReg, INST_BYTES};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced while finalizing a built program.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildProgramError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// A label (text or data) was defined more than once; the program
    /// would silently resolve references to only one of the definitions.
    DuplicateLabel(String),
    /// A branch target was out of the 16-bit word-offset range.
    BranchOutOfRange {
        /// Referencing instruction address.
        pc: u32,
        /// Referenced label.
        label: String,
    },
    /// An instruction could not be encoded.
    Encode(String),
    /// The program contains no instructions.
    Empty,
}

impl fmt::Display for BuildProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProgramError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            BuildProgramError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            BuildProgramError::BranchOutOfRange { pc, label } => {
                write!(f, "branch at {pc:#x} to label {label:?} out of range")
            }
            BuildProgramError::Encode(m) => write!(f, "encode error: {m}"),
            BuildProgramError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl Error for BuildProgramError {}

/// Flavor of a label-resolved conditional branch.
#[derive(Debug, Clone, Copy)]
enum BranchKind {
    /// `beq rs, rt, label`.
    Beq,
    /// `bne rs, rt, label`.
    Bne,
    /// A single-register compare-against-zero branch (`blez`, `bgtz`,
    /// `bltz`, `bgez`); `rt` is ignored.
    Cond(BranchCond),
}

impl BranchKind {
    fn make(self, off: i16, rs: IntReg, rt: IntReg) -> Inst {
        match self {
            BranchKind::Beq => Inst::Beq { rs, rt, off },
            BranchKind::Bne => Inst::Bne { rs, rt, off },
            BranchKind::Cond(cond) => Inst::Bcond { cond, rs, off },
        }
    }
}

/// A pending text-segment element.
#[derive(Debug, Clone)]
enum Slot {
    /// A fully-formed instruction.
    Inst(Inst),
    /// A branch whose offset is patched at finalize time.
    Branch { label: String, kind: BranchKind, rs: IntReg, rt: IntReg },
    /// A direct jump (or call) to a label.
    Jump { label: String, link: bool },
}

/// Incrementally builds a [`Program`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_asm::ProgramBuilder;
/// use riq_isa::{AluImmOp, Inst, IntReg};
///
/// let mut b = ProgramBuilder::new();
/// let r2 = IntReg::new(2);
/// b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: IntReg::ZERO, imm: 3 });
/// b.label("loop");
/// b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: r2, imm: -1 });
/// b.bne(r2, IntReg::ZERO, "loop");
/// b.push(Inst::Halt);
/// let program = b.finish()?;
/// assert_eq!(program.text_len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    slots: Vec<Slot>,
    labels: BTreeMap<String, usize>,
    data: Vec<u8>,
    data_labels: BTreeMap<String, u32>,
    text_base: u32,
    data_base: u32,
    entry_label: Option<String>,
    /// First label defined twice (across the shared text/data namespace);
    /// reported by [`finish`](ProgramBuilder::finish).
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates a builder with the default segment bases.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder { text_base: TEXT_BASE, data_base: DATA_BASE, ..ProgramBuilder::default() }
    }

    /// Number of instructions pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no instructions have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Appends a machine instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.slots.push(Slot::Inst(inst));
        self
    }

    /// Defines a text label at the current position.
    ///
    /// Redefining a label (text or data) is recorded and reported as
    /// [`BuildProgramError::DuplicateLabel`] by
    /// [`finish`](ProgramBuilder::finish) — references to a duplicated
    /// name would otherwise silently resolve to only one definition.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        self.note_duplicate(&name);
        self.labels.insert(name, self.slots.len());
        self
    }

    /// Whether `name` is already defined as a text or data label.
    #[must_use]
    pub fn label_defined(&self, name: &str) -> bool {
        self.labels.contains_key(name) || self.data_labels.contains_key(name)
    }

    /// Records the first duplicate definition across both label namespaces.
    fn note_duplicate(&mut self, name: &str) {
        if self.duplicate.is_none() && self.label_defined(name) {
            self.duplicate = Some(name.to_string());
        }
    }

    /// Address a text label will have once finalized, if already defined.
    #[must_use]
    pub fn label_addr(&self, name: &str) -> Option<u32> {
        self.labels.get(name).map(|&idx| self.text_base + (idx as u32) * INST_BYTES)
    }

    /// Appends `beq rs, rt, label`.
    pub fn beq(&mut self, rs: IntReg, rt: IntReg, label: impl Into<String>) -> &mut Self {
        self.slots.push(Slot::Branch { label: label.into(), kind: BranchKind::Beq, rs, rt });
        self
    }

    /// Appends `bne rs, rt, label`.
    pub fn bne(&mut self, rs: IntReg, rt: IntReg, label: impl Into<String>) -> &mut Self {
        self.slots.push(Slot::Branch { label: label.into(), kind: BranchKind::Bne, rs, rt });
        self
    }

    /// Appends a compare-against-zero branch (`blez`/`bgtz`/`bltz`/`bgez`)
    /// to a label — the building block for loops whose exit condition is
    /// a sign test rather than an equality.
    pub fn bcond(&mut self, cond: BranchCond, rs: IntReg, label: impl Into<String>) -> &mut Self {
        self.slots.push(Slot::Branch {
            label: label.into(),
            kind: BranchKind::Cond(cond),
            rs,
            rt: IntReg::ZERO,
        });
        self
    }

    /// Appends `blez rs, label`.
    pub fn blez(&mut self, rs: IntReg, label: impl Into<String>) -> &mut Self {
        self.bcond(BranchCond::Lez, rs, label)
    }

    /// Appends `bgtz rs, label`.
    pub fn bgtz(&mut self, rs: IntReg, label: impl Into<String>) -> &mut Self {
        self.bcond(BranchCond::Gtz, rs, label)
    }

    /// Appends `bltz rs, label`.
    pub fn bltz(&mut self, rs: IntReg, label: impl Into<String>) -> &mut Self {
        self.bcond(BranchCond::Ltz, rs, label)
    }

    /// Appends `bgez rs, label`.
    pub fn bgez(&mut self, rs: IntReg, label: impl Into<String>) -> &mut Self {
        self.bcond(BranchCond::Gez, rs, label)
    }

    /// Appends an unconditional jump to a label.
    pub fn jump(&mut self, label: impl Into<String>) -> &mut Self {
        self.slots.push(Slot::Jump { label: label.into(), link: false });
        self
    }

    /// Appends a call (`jal`) to a label.
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.slots.push(Slot::Jump { label: label.into(), link: true });
        self
    }

    /// Reserves `len` zeroed bytes in the data segment under `name`,
    /// returning the address the block will have.
    pub fn reserve_data(&mut self, name: impl Into<String>, len: u32) -> u32 {
        // Keep doubles aligned: all blocks are 8-byte aligned.
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u32;
        let name = name.into();
        self.note_duplicate(&name);
        self.data_labels.insert(name, addr);
        self.data.extend(std::iter::repeat_n(0u8, len as usize));
        addr
    }

    /// Appends initialized doubles to the data segment under `name`,
    /// returning their address.
    pub fn data_doubles(&mut self, name: impl Into<String>, values: &[f64]) -> u32 {
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u32;
        let name = name.into();
        self.note_duplicate(&name);
        self.data_labels.insert(name, addr);
        for v in values {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    /// Appends initialized words to the data segment under `name`,
    /// returning their address.
    pub fn data_words(&mut self, name: impl Into<String>, values: &[u32]) -> u32 {
        while !self.data.len().is_multiple_of(4) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u32;
        let name = name.into();
        self.note_duplicate(&name);
        self.data_labels.insert(name, addr);
        for v in values {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Address of a named data block, if defined.
    #[must_use]
    pub fn data_addr(&self, name: &str) -> Option<u32> {
        self.data_labels.get(name).copied()
    }

    /// Sets the entry point to a text label (defaults to the first
    /// instruction).
    pub fn entry(&mut self, label: impl Into<String>) -> &mut Self {
        self.entry_label = Some(label.into());
        self
    }

    /// Finalizes the program, resolving all label references.
    ///
    /// # Errors
    ///
    /// Returns an error for undefined or duplicated labels, out-of-range
    /// branches, or unencodable instructions.
    pub fn finish(&self) -> Result<Program, BuildProgramError> {
        if self.slots.is_empty() {
            return Err(BuildProgramError::Empty);
        }
        if let Some(name) = &self.duplicate {
            return Err(BuildProgramError::DuplicateLabel(name.clone()));
        }
        let addr_of = |label: &str| -> Result<u32, BuildProgramError> {
            self.labels
                .get(label)
                .map(|&idx| self.text_base + (idx as u32) * INST_BYTES)
                .or_else(|| self.data_labels.get(label).copied())
                .ok_or_else(|| BuildProgramError::UndefinedLabel(label.to_string()))
        };
        let mut text = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let pc = self.text_base + (idx as u32) * INST_BYTES;
            let inst = match slot {
                Slot::Inst(i) => *i,
                Slot::Branch { label, kind, rs, rt } => {
                    let target = addr_of(label)?;
                    let delta = (i64::from(target) - i64::from(pc) - 4) / 4;
                    let off = i16::try_from(delta).map_err(|_| {
                        BuildProgramError::BranchOutOfRange { pc, label: label.clone() }
                    })?;
                    kind.make(off, *rs, *rt)
                }
                Slot::Jump { label, link } => {
                    let target = addr_of(label)?;
                    if *link {
                        Inst::Jal { target }
                    } else {
                        Inst::J { target }
                    }
                }
            };
            let word = inst.encode().map_err(|e| BuildProgramError::Encode(e.to_string()))?;
            text.push(word);
        }
        let entry = match &self.entry_label {
            Some(l) => addr_of(l)?,
            None => self.text_base,
        };
        let mut symbols: BTreeMap<String, u32> = self.data_labels.clone();
        for (name, &idx) in &self.labels {
            symbols.insert(name.clone(), self.text_base + (idx as u32) * INST_BYTES);
        }
        Ok(Program::from_parts(
            self.text_base,
            text,
            self.data_base,
            self.data.clone(),
            entry,
            symbols,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_isa::{AluImmOp, FpReg};

    #[test]
    fn builds_loop_with_backward_branch() {
        let mut b = ProgramBuilder::new();
        let r2 = IntReg::new(2);
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: IntReg::ZERO, imm: 3 });
        b.label("top");
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: r2, imm: -1 });
        b.bne(r2, IntReg::ZERO, "top");
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(
            p.inst_at(p.text_base() + 8).unwrap(),
            Inst::Bne { rs: r2, rt: IntReg::ZERO, off: -2 }
        );
    }

    #[test]
    fn data_blocks_are_aligned_and_named() {
        let mut b = ProgramBuilder::new();
        b.data_words("n", &[5]);
        let a = b.data_doubles("vec", &[1.0, 2.0]);
        assert_eq!(a % 8, 0);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.symbol("vec"), Some(a));
        assert_eq!(&p.data()[(a - p.data_base()) as usize..][..8], &1.0f64.to_bits().to_le_bytes());
    }

    #[test]
    fn reserve_returns_stable_addresses() {
        let mut b = ProgramBuilder::new();
        let a1 = b.reserve_data("a", 24);
        let a2 = b.reserve_data("b", 8);
        assert!(a2 >= a1 + 24);
        assert_eq!(b.data_addr("a"), Some(a1));
    }

    #[test]
    fn undefined_label_detected() {
        let mut b = ProgramBuilder::new();
        b.bne(IntReg::new(2), IntReg::ZERO, "missing");
        assert!(matches!(
            b.finish(),
            Err(BuildProgramError::UndefinedLabel(l)) if l == "missing"
        ));
    }

    #[test]
    fn calls_and_entry() {
        let mut b = ProgramBuilder::new();
        b.entry("main");
        b.label("fun");
        b.push(Inst::Jr { rs: IntReg::RA });
        b.label("main");
        b.call("fun");
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.entry(), p.symbol("main").unwrap());
        assert_eq!(
            p.inst_at(p.symbol("main").unwrap()).unwrap(),
            Inst::Jal { target: p.symbol("fun").unwrap() }
        );
    }

    #[test]
    fn duplicate_text_label_rejected() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.push(Inst::Nop);
        b.label("x");
        b.push(Inst::Halt);
        assert!(matches!(
            b.finish(),
            Err(BuildProgramError::DuplicateLabel(l)) if l == "x"
        ));
    }

    #[test]
    fn duplicate_across_text_and_data_rejected() {
        // A text label shadowing a data label used to silently win the
        // shared symbol namespace; now it is an error.
        let mut b = ProgramBuilder::new();
        b.data_words("buf", &[1]);
        b.label("buf");
        b.push(Inst::Halt);
        assert!(matches!(
            b.finish(),
            Err(BuildProgramError::DuplicateLabel(l)) if l == "buf"
        ));
    }

    #[test]
    fn duplicate_data_label_rejected() {
        let mut b = ProgramBuilder::new();
        b.reserve_data("buf", 8);
        b.data_doubles("buf", &[1.0]);
        b.push(Inst::Halt);
        assert!(matches!(
            b.finish(),
            Err(BuildProgramError::DuplicateLabel(l)) if l == "buf"
        ));
        assert!(b.label_defined("buf"));
    }

    #[test]
    fn first_duplicate_is_reported() {
        let mut b = ProgramBuilder::new();
        b.label("a");
        b.label("a");
        b.label("b");
        b.label("b");
        b.push(Inst::Halt);
        assert!(matches!(
            b.finish(),
            Err(BuildProgramError::DuplicateLabel(l)) if l == "a"
        ));
    }

    #[test]
    fn bcond_builders_resolve_labels() {
        use riq_isa::BranchCond;
        let r2 = IntReg::new(2);
        let mut b = ProgramBuilder::new();
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: IntReg::ZERO, imm: 3 });
        b.label("top");
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: r2, imm: -1 });
        b.bgtz(r2, "top");
        b.blez(r2, "end");
        b.bltz(r2, "end");
        b.bgez(r2, "end");
        b.label("end");
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(
            p.inst_at(p.text_base() + 8).unwrap(),
            Inst::Bcond { cond: BranchCond::Gtz, rs: r2, off: -2 }
        );
        assert_eq!(
            p.inst_at(p.text_base() + 12).unwrap(),
            Inst::Bcond { cond: BranchCond::Lez, rs: r2, off: 2 }
        );
        assert_eq!(
            p.inst_at(p.text_base() + 20).unwrap(),
            Inst::Bcond { cond: BranchCond::Gez, rs: r2, off: 0 }
        );
    }

    #[test]
    fn nested_loops_via_bcond() {
        // A two-deep counted nest built entirely with builder branch
        // helpers must assemble with correctly resolved back-edges.
        let outer = IntReg::new(2);
        let inner = IntReg::new(3);
        let acc = IntReg::new(4);
        let mut b = ProgramBuilder::new();
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: outer, rs: IntReg::ZERO, imm: 3 });
        b.label("outer");
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: inner, rs: IntReg::ZERO, imm: 4 });
        b.label("inner");
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: acc, rs: acc, imm: 1 });
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: inner, rs: inner, imm: -1 });
        b.bgtz(inner, "inner");
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: outer, rs: outer, imm: -1 });
        b.bgtz(outer, "outer");
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.text_len(), 8);
        // Inner back-edge: bgtz at word 4 targets word 2.
        assert_eq!(
            p.inst_at(p.text_base() + 16).unwrap(),
            Inst::Bcond { cond: riq_isa::BranchCond::Gtz, rs: inner, off: -3 }
        );
        // Outer back-edge: bgtz at word 6 targets word 1.
        assert_eq!(
            p.inst_at(p.text_base() + 24).unwrap(),
            Inst::Bcond { cond: riq_isa::BranchCond::Gtz, rs: outer, off: -6 }
        );
    }

    #[test]
    fn fp_data_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.data_doubles("v", &[3.25]);
        b.push(Inst::Ld { ft: FpReg::new(0), base: IntReg::new(6), off: 0 });
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let off = (p.symbol("v").unwrap() - p.data_base()) as usize;
        let bits = u64::from_le_bytes(p.data()[off..off + 8].try_into().unwrap());
        assert_eq!(f64::from_bits(bits), 3.25);
    }
}
