//! Programmatic program construction.
//!
//! [`ProgramBuilder`] is the API code generators use (notably the
//! `riq-kernels` loop-nest compiler): push instructions and labels, reserve
//! and initialize data, and let the builder patch label-relative branches
//! and jumps when it finalizes.

use crate::program::{Program, DATA_BASE, TEXT_BASE};
use riq_isa::{Inst, IntReg, INST_BYTES};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced while finalizing a built program.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildProgramError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// A branch target was out of the 16-bit word-offset range.
    BranchOutOfRange {
        /// Referencing instruction address.
        pc: u32,
        /// Referenced label.
        label: String,
    },
    /// An instruction could not be encoded.
    Encode(String),
    /// The program contains no instructions.
    Empty,
}

impl fmt::Display for BuildProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProgramError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            BuildProgramError::BranchOutOfRange { pc, label } => {
                write!(f, "branch at {pc:#x} to label {label:?} out of range")
            }
            BuildProgramError::Encode(m) => write!(f, "encode error: {m}"),
            BuildProgramError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl Error for BuildProgramError {}

/// A pending text-segment element.
#[derive(Debug, Clone)]
enum Slot {
    /// A fully-formed instruction.
    Inst(Inst),
    /// A branch whose offset is patched at finalize time. The `make`
    /// callback receives the resolved word offset.
    Branch { label: String, make: fn(i16, IntReg, IntReg) -> Inst, rs: IntReg, rt: IntReg },
    /// A direct jump (or call) to a label.
    Jump { label: String, link: bool },
}

/// Incrementally builds a [`Program`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_asm::ProgramBuilder;
/// use riq_isa::{AluImmOp, Inst, IntReg};
///
/// let mut b = ProgramBuilder::new();
/// let r2 = IntReg::new(2);
/// b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: IntReg::ZERO, imm: 3 });
/// b.label("loop");
/// b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: r2, imm: -1 });
/// b.bne(r2, IntReg::ZERO, "loop");
/// b.push(Inst::Halt);
/// let program = b.finish()?;
/// assert_eq!(program.text_len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    slots: Vec<Slot>,
    labels: BTreeMap<String, usize>,
    data: Vec<u8>,
    data_labels: BTreeMap<String, u32>,
    text_base: u32,
    data_base: u32,
    entry_label: Option<String>,
}

impl ProgramBuilder {
    /// Creates a builder with the default segment bases.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder { text_base: TEXT_BASE, data_base: DATA_BASE, ..ProgramBuilder::default() }
    }

    /// Number of instructions pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no instructions have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Appends a machine instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.slots.push(Slot::Inst(inst));
        self
    }

    /// Defines a text label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.slots.len());
        assert!(prev.is_none(), "duplicate text label {name:?}");
        self
    }

    /// Address a text label will have once finalized, if already defined.
    #[must_use]
    pub fn label_addr(&self, name: &str) -> Option<u32> {
        self.labels.get(name).map(|&idx| self.text_base + (idx as u32) * INST_BYTES)
    }

    /// Appends `beq rs, rt, label`.
    pub fn beq(&mut self, rs: IntReg, rt: IntReg, label: impl Into<String>) -> &mut Self {
        self.slots.push(Slot::Branch {
            label: label.into(),
            make: |off, rs, rt| Inst::Beq { rs, rt, off },
            rs,
            rt,
        });
        self
    }

    /// Appends `bne rs, rt, label`.
    pub fn bne(&mut self, rs: IntReg, rt: IntReg, label: impl Into<String>) -> &mut Self {
        self.slots.push(Slot::Branch {
            label: label.into(),
            make: |off, rs, rt| Inst::Bne { rs, rt, off },
            rs,
            rt,
        });
        self
    }

    /// Appends an unconditional jump to a label.
    pub fn jump(&mut self, label: impl Into<String>) -> &mut Self {
        self.slots.push(Slot::Jump { label: label.into(), link: false });
        self
    }

    /// Appends a call (`jal`) to a label.
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.slots.push(Slot::Jump { label: label.into(), link: true });
        self
    }

    /// Reserves `len` zeroed bytes in the data segment under `name`,
    /// returning the address the block will have.
    pub fn reserve_data(&mut self, name: impl Into<String>, len: u32) -> u32 {
        // Keep doubles aligned: all blocks are 8-byte aligned.
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u32;
        self.data_labels.insert(name.into(), addr);
        self.data.extend(std::iter::repeat_n(0u8, len as usize));
        addr
    }

    /// Appends initialized doubles to the data segment under `name`,
    /// returning their address.
    pub fn data_doubles(&mut self, name: impl Into<String>, values: &[f64]) -> u32 {
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u32;
        self.data_labels.insert(name.into(), addr);
        for v in values {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    /// Appends initialized words to the data segment under `name`,
    /// returning their address.
    pub fn data_words(&mut self, name: impl Into<String>, values: &[u32]) -> u32 {
        while !self.data.len().is_multiple_of(4) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u32;
        self.data_labels.insert(name.into(), addr);
        for v in values {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Address of a named data block, if defined.
    #[must_use]
    pub fn data_addr(&self, name: &str) -> Option<u32> {
        self.data_labels.get(name).copied()
    }

    /// Sets the entry point to a text label (defaults to the first
    /// instruction).
    pub fn entry(&mut self, label: impl Into<String>) -> &mut Self {
        self.entry_label = Some(label.into());
        self
    }

    /// Finalizes the program, resolving all label references.
    ///
    /// # Errors
    ///
    /// Returns an error for undefined labels, out-of-range branches, or
    /// unencodable instructions.
    pub fn finish(&self) -> Result<Program, BuildProgramError> {
        if self.slots.is_empty() {
            return Err(BuildProgramError::Empty);
        }
        let addr_of = |label: &str| -> Result<u32, BuildProgramError> {
            self.labels
                .get(label)
                .map(|&idx| self.text_base + (idx as u32) * INST_BYTES)
                .or_else(|| self.data_labels.get(label).copied())
                .ok_or_else(|| BuildProgramError::UndefinedLabel(label.to_string()))
        };
        let mut text = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let pc = self.text_base + (idx as u32) * INST_BYTES;
            let inst = match slot {
                Slot::Inst(i) => *i,
                Slot::Branch { label, make, rs, rt } => {
                    let target = addr_of(label)?;
                    let delta = (i64::from(target) - i64::from(pc) - 4) / 4;
                    let off = i16::try_from(delta).map_err(|_| {
                        BuildProgramError::BranchOutOfRange { pc, label: label.clone() }
                    })?;
                    make(off, *rs, *rt)
                }
                Slot::Jump { label, link } => {
                    let target = addr_of(label)?;
                    if *link {
                        Inst::Jal { target }
                    } else {
                        Inst::J { target }
                    }
                }
            };
            let word = inst.encode().map_err(|e| BuildProgramError::Encode(e.to_string()))?;
            text.push(word);
        }
        let entry = match &self.entry_label {
            Some(l) => addr_of(l)?,
            None => self.text_base,
        };
        let mut symbols: BTreeMap<String, u32> = self.data_labels.clone();
        for (name, &idx) in &self.labels {
            symbols.insert(name.clone(), self.text_base + (idx as u32) * INST_BYTES);
        }
        Ok(Program::from_parts(
            self.text_base,
            text,
            self.data_base,
            self.data.clone(),
            entry,
            symbols,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_isa::{AluImmOp, FpReg};

    #[test]
    fn builds_loop_with_backward_branch() {
        let mut b = ProgramBuilder::new();
        let r2 = IntReg::new(2);
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: IntReg::ZERO, imm: 3 });
        b.label("top");
        b.push(Inst::AluImm { op: AluImmOp::Addi, rt: r2, rs: r2, imm: -1 });
        b.bne(r2, IntReg::ZERO, "top");
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(
            p.inst_at(p.text_base() + 8).unwrap(),
            Inst::Bne { rs: r2, rt: IntReg::ZERO, off: -2 }
        );
    }

    #[test]
    fn data_blocks_are_aligned_and_named() {
        let mut b = ProgramBuilder::new();
        b.data_words("n", &[5]);
        let a = b.data_doubles("vec", &[1.0, 2.0]);
        assert_eq!(a % 8, 0);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.symbol("vec"), Some(a));
        assert_eq!(&p.data()[(a - p.data_base()) as usize..][..8], &1.0f64.to_bits().to_le_bytes());
    }

    #[test]
    fn reserve_returns_stable_addresses() {
        let mut b = ProgramBuilder::new();
        let a1 = b.reserve_data("a", 24);
        let a2 = b.reserve_data("b", 8);
        assert!(a2 >= a1 + 24);
        assert_eq!(b.data_addr("a"), Some(a1));
    }

    #[test]
    fn undefined_label_detected() {
        let mut b = ProgramBuilder::new();
        b.bne(IntReg::new(2), IntReg::ZERO, "missing");
        assert!(matches!(
            b.finish(),
            Err(BuildProgramError::UndefinedLabel(l)) if l == "missing"
        ));
    }

    #[test]
    fn calls_and_entry() {
        let mut b = ProgramBuilder::new();
        b.entry("main");
        b.label("fun");
        b.push(Inst::Jr { rs: IntReg::RA });
        b.label("main");
        b.call("fun");
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.entry(), p.symbol("main").unwrap());
        assert_eq!(
            p.inst_at(p.symbol("main").unwrap()).unwrap(),
            Inst::Jal { target: p.symbol("fun").unwrap() }
        );
    }

    #[test]
    #[should_panic(expected = "duplicate text label")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.label("x");
    }

    #[test]
    fn fp_data_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.data_doubles("v", &[3.25]);
        b.push(Inst::Ld { ft: FpReg::new(0), base: IntReg::new(6), off: 0 });
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let off = (p.symbol("v").unwrap() - p.data_base()) as usize;
        let bits = u64::from_le_bytes(p.data()[off..off + 8].try_into().unwrap());
        assert_eq!(f64::from_bits(bits), 3.25);
    }
}
