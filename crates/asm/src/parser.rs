//! Line-oriented parser for riq assembly source.
//!
//! The parser turns source text into a list of [`Line`]s — labels,
//! directives, and mnemonic+operand instructions — without resolving
//! symbols or encoding anything; that is the assembler's second pass.
//!
//! Syntax summary:
//!
//! ```text
//! # comment                     ; '#' or ';' to end of line
//! label:  addi $r4, $r4, -8
//!         lw   $r5, 12($r29)
//!         beq  $r1, $r2, label
//!         .data 0x10000000
//! vec:    .double 1.0, 2.5
//! n:      .word 100
//!         .space 64
//! ```

use std::error::Error;
use std::fmt;

/// A parsed operand, still symbolic.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A register reference such as `$r4` or `$f0` (name without the `$`).
    Reg(String),
    /// An integer literal (decimal or `0x` hex, optionally negative).
    Imm(i64),
    /// A floating-point literal (only valid in `.double`).
    Float(f64),
    /// A symbol reference (label).
    Sym(String),
    /// A memory operand `off(base)`; the base is a register name.
    Mem {
        /// Byte offset (literal only; symbolic offsets are not supported).
        off: i64,
        /// Base register name without the `$`.
        base: String,
    },
}

impl fmt::Display for Arg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arg::Reg(r) => write!(f, "${r}"),
            Arg::Imm(v) => write!(f, "{v}"),
            Arg::Float(v) => write!(f, "{v}"),
            Arg::Sym(s) => write!(f, "{s}"),
            Arg::Mem { off, base } => write!(f, "{off}(${base})"),
        }
    }
}

/// The content of a source line after the optional label.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// An assembler directive, e.g. `.word 1, 2` (name without the dot).
    Directive {
        /// Directive name, lower-cased, without the leading dot.
        name: String,
        /// Directive arguments.
        args: Vec<Arg>,
    },
    /// A machine or pseudo instruction.
    Inst {
        /// Mnemonic, lower-cased.
        mnemonic: String,
        /// Operands in source order.
        args: Vec<Arg>,
    },
}

/// One parsed source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Line {
    /// 1-based source line number (for diagnostics).
    pub number: usize,
    /// Label defined on this line, if any.
    pub label: Option<String>,
    /// Directive or instruction on this line, if any.
    pub body: Option<Body>,
}

/// Parse error with a source line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError { line, message: message.into() }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Reg(String),
    Num(i64),
    Float(f64),
    LParen,
    RParen,
    Comma,
    Colon,
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$'
}

fn tokenize(line: usize, s: &str) -> Result<Vec<Token>, ParseAsmError> {
    let mut out = Vec::new();
    let mut chars = s.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            '#' | ';' => break,
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            ':' => {
                chars.next();
                out.push(Token::Colon);
            }
            '$' => {
                chars.next();
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(err(line, "empty register name after '$'"));
                }
                out.push(Token::Reg(name.to_ascii_lowercase()));
            }
            c if c == '-' || c == '+' || c.is_ascii_digit() => {
                let start = i;
                chars.next();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '+' {
                        // Allow hex digits, exponents ('e-5') and decimals.
                        chars.next();
                    } else {
                        break;
                    }
                }
                let end = chars.peek().map_or(s.len(), |&(j, _)| j);
                let text = &s[start..end];
                out.push(parse_number(line, text)?);
            }
            c if is_word_char(c) => {
                let start = i;
                chars.next();
                while let Some(&(_, c)) = chars.peek() {
                    if is_word_char(c) {
                        chars.next();
                    } else {
                        break;
                    }
                }
                let end = chars.peek().map_or(s.len(), |&(j, _)| j);
                out.push(Token::Word(s[start..end].to_string()));
            }
            other => return Err(err(line, format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

fn parse_number(line: usize, text: &str) -> Result<Token, ParseAsmError> {
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text.strip_prefix('+').unwrap_or(text)),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
            .map_err(|e| err(line, format!("bad hex literal {text:?}: {e}")))
            .map(Token::Num)
    } else if body.contains('.') || body.contains('e') || body.contains('E') {
        body.parse::<f64>()
            .map_err(|e| err(line, format!("bad float literal {text:?}: {e}")))
            .map(Token::Float)
    } else {
        body.parse::<i64>()
            .map_err(|e| err(line, format!("bad integer literal {text:?}: {e}")))
            .map(Token::Num)
    }?;
    Ok(match (neg, value) {
        (false, v) => v,
        (true, Token::Num(v)) => Token::Num(-v),
        (true, Token::Float(v)) => Token::Float(-v),
        (true, t) => t,
    })
}

fn tokens_to_args(line: usize, tokens: &[Token]) -> Result<Vec<Arg>, ParseAsmError> {
    let mut args = Vec::new();
    let mut it = tokens.iter().peekable();
    loop {
        match it.next() {
            None => break,
            Some(Token::Reg(r)) => args.push(Arg::Reg(r.clone())),
            Some(Token::Float(v)) => args.push(Arg::Float(*v)),
            Some(Token::Num(v)) => {
                // `off(base)` memory operand?
                if matches!(it.peek(), Some(Token::LParen)) {
                    it.next();
                    let base = match it.next() {
                        Some(Token::Reg(r)) => r.clone(),
                        _ => return Err(err(line, "expected register inside memory operand")),
                    };
                    if !matches!(it.next(), Some(Token::RParen)) {
                        return Err(err(line, "expected ')' after memory operand base"));
                    }
                    args.push(Arg::Mem { off: *v, base });
                } else {
                    args.push(Arg::Imm(*v));
                }
            }
            Some(Token::Word(w)) => args.push(Arg::Sym(w.clone())),
            Some(Token::LParen) => {
                // `(base)` with implicit zero offset.
                let base = match it.next() {
                    Some(Token::Reg(r)) => r.clone(),
                    _ => return Err(err(line, "expected register inside memory operand")),
                };
                if !matches!(it.next(), Some(Token::RParen)) {
                    return Err(err(line, "expected ')' after memory operand base"));
                }
                args.push(Arg::Mem { off: 0, base });
            }
            Some(t) => return Err(err(line, format!("unexpected token {t:?}"))),
        }
        match it.next() {
            None => break,
            Some(Token::Comma) => continue,
            Some(t) => return Err(err(line, format!("expected ',' between operands, got {t:?}"))),
        }
    }
    Ok(args)
}

/// Parses assembly source into lines.
///
/// # Errors
///
/// Returns the first lexical or structural error, tagged with its line
/// number. Symbol resolution errors are reported later by the assembler.
pub fn parse(source: &str) -> Result<Vec<Line>, ParseAsmError> {
    let mut lines = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let mut tokens = tokenize(number, raw)?;
        let mut label = None;
        // `ident :` prefix is a label definition.
        if tokens.len() >= 2 {
            if let (Token::Word(w), Token::Colon) = (&tokens[0], &tokens[1]) {
                if !w.starts_with('.') {
                    label = Some(w.clone());
                    tokens.drain(..2);
                }
            }
        }
        let body = if tokens.is_empty() {
            None
        } else {
            match &tokens[0] {
                Token::Word(w) if w.starts_with('.') => {
                    let name = w[1..].to_ascii_lowercase();
                    let args = tokens_to_args(number, &tokens[1..])?;
                    Some(Body::Directive { name, args })
                }
                Token::Word(w) => {
                    let mnemonic = w.to_ascii_lowercase();
                    let args = tokens_to_args(number, &tokens[1..])?;
                    Some(Body::Inst { mnemonic, args })
                }
                t => return Err(err(number, format!("expected mnemonic or directive, got {t:?}"))),
            }
        };
        lines.push(Line { number, label, body });
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_labels_and_instructions() {
        let lines = parse("loop: addi $r4, $r4, -8\n  bne $r4, $r0, loop\n").unwrap();
        assert_eq!(lines[0].label.as_deref(), Some("loop"));
        match lines[0].body.as_ref().unwrap() {
            Body::Inst { mnemonic, args } => {
                assert_eq!(mnemonic, "addi");
                assert_eq!(args, &vec![Arg::Reg("r4".into()), Arg::Reg("r4".into()), Arg::Imm(-8)]);
            }
            other => panic!("unexpected body {other:?}"),
        }
        match lines[1].body.as_ref().unwrap() {
            Body::Inst { mnemonic, args } => {
                assert_eq!(mnemonic, "bne");
                assert_eq!(args[2], Arg::Sym("loop".into()));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn parses_memory_operands() {
        let lines = parse("lw $r5, 12($r29)\nsw $r5, ($r29)\nl.d $f0, -8($r6)").unwrap();
        let mem = |l: &Line| match l.body.as_ref().unwrap() {
            Body::Inst { args, .. } => args[1].clone(),
            _ => panic!(),
        };
        assert_eq!(mem(&lines[0]), Arg::Mem { off: 12, base: "r29".into() });
        assert_eq!(mem(&lines[1]), Arg::Mem { off: 0, base: "r29".into() });
        assert_eq!(mem(&lines[2]), Arg::Mem { off: -8, base: "r6".into() });
    }

    #[test]
    fn parses_directives_and_literals() {
        let src = ".data 0x10000000\nvec: .double 1.0, -2.5, 3e2\nn: .word 100, -1\n.space 64\n";
        let lines = parse(src).unwrap();
        match lines[0].body.as_ref().unwrap() {
            Body::Directive { name, args } => {
                assert_eq!(name, "data");
                assert_eq!(args, &vec![Arg::Imm(0x1000_0000)]);
            }
            _ => panic!(),
        }
        match lines[1].body.as_ref().unwrap() {
            Body::Directive { name, args } => {
                assert_eq!(name, "double");
                assert_eq!(args, &vec![Arg::Float(1.0), Arg::Float(-2.5), Arg::Float(300.0)]);
            }
            _ => panic!(),
        }
        assert_eq!(lines[1].label.as_deref(), Some("vec"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let lines = parse("# header\n\n  nop  # trailing\n; alt comment\n").unwrap();
        assert!(lines[0].body.is_none());
        assert!(lines[1].body.is_none());
        assert!(matches!(lines[2].body, Some(Body::Inst { .. })));
        assert!(lines[3].body.is_none());
    }

    #[test]
    fn rejects_bad_tokens() {
        assert!(parse("addi $r1, $r2, @").is_err());
        assert!(parse("lw $r1, 4($r2").is_err());
        assert!(parse("addi $r1 $r2, 3").is_err());
        assert!(parse("li $, 3").is_err());
    }

    #[test]
    fn hex_and_negative_literals() {
        let lines = parse("ori $r1, $r0, 0xff\naddi $r1, $r1, -0x10\n").unwrap();
        let imm = |l: &Line| match l.body.as_ref().unwrap() {
            Body::Inst { args, .. } => args[2].clone(),
            _ => panic!(),
        };
        assert_eq!(imm(&lines[0]), Arg::Imm(255));
        assert_eq!(imm(&lines[1]), Arg::Imm(-16));
    }
}
