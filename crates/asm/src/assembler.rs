//! The two-pass assembler.
//!
//! Pass 1 walks the parsed lines, sizing every (possibly pseudo)
//! instruction and assigning addresses to labels. Pass 2 expands and
//! encodes instructions with the now-complete symbol table and emits the
//! data segment.
//!
//! Pseudo-instructions expand deterministically so label addresses never
//! depend on symbol values: `li` is one instruction when its immediate fits
//! (16-bit signed, or a `lui`-shaped constant) and two otherwise; `la` is
//! always two; the compare-and-branch pseudos (`blt`/`bge`/`bgt`/`ble`) are
//! always two and clobber the assembler temporary `$r1` (`$at`).

use crate::parser::{parse, Arg, Body, Line};
use crate::program::{Program, DATA_BASE, TEXT_BASE};
use riq_isa::{
    AluImmOp, AluOp, BranchCond, FpAluOp, FpCond, FpReg, FpUnaryOp, Inst, IntReg, ShiftOp,
    INST_BYTES,
};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Machine-checkable classification of an [`AssembleError`].
///
/// Tests (and the fuzzer's oracle) match on this instead of grepping the
/// human-readable message, so wording can change without breaking them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// The tokenizer/parser rejected the line before assembly began.
    Syntax,
    /// Mnemonic is not part of the ISA or pseudo-instruction set.
    UnknownMnemonic,
    /// Directive name is not recognized.
    UnknownDirective,
    /// A recognized directive has the wrong argument shape.
    MalformedDirective,
    /// An operand has the wrong type, count, or register bank.
    BadOperand,
    /// An immediate, shift amount, offset, or address does not fit its field.
    OutOfRange,
    /// A label was defined more than once.
    DuplicateLabel,
    /// A referenced symbol has no definition.
    UndefinedSymbol,
    /// Segment or layout violation: rebase after emit, misaligned base,
    /// code in `.data`, data directives in `.text`, empty program.
    Layout,
    /// A structurally valid instruction could not be encoded.
    Encode,
}

/// Error produced while assembling a source file.
#[derive(Debug, Clone, PartialEq)]
pub struct AssembleError {
    /// 1-based source line number (0 for file-level errors).
    pub line: usize,
    /// Machine-checkable error category.
    pub kind: AsmErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for AssembleError {}

fn err(line: usize, kind: AsmErrorKind, message: impl Into<String>) -> AssembleError {
    AssembleError { line, kind, message: message.into() }
}

/// Assembler temporary register clobbered by compare-and-branch pseudos.
pub const AT: IntReg = IntReg::new(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

#[derive(Debug, Clone, Copy)]
enum RegRef {
    Int(IntReg),
    Fp(FpReg),
}

fn parse_reg(line: usize, name: &str) -> Result<RegRef, AssembleError> {
    let alias = match name {
        "zero" => Some(0u8),
        "at" => Some(1),
        "sp" => Some(29),
        "fp" => Some(30),
        "ra" => Some(31),
        _ => None,
    };
    if let Some(n) = alias {
        return Ok(RegRef::Int(IntReg::new(n)));
    }
    let (bank, num) = name.split_at(1);
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, AsmErrorKind::BadOperand, format!("bad register name ${name}")))?;
    match bank {
        "r" => IntReg::try_new(n).map(RegRef::Int).ok_or_else(|| {
            err(line, AsmErrorKind::BadOperand, format!("integer register out of range: ${name}"))
        }),
        "f" => FpReg::try_new(n).map(RegRef::Fp).ok_or_else(|| {
            err(line, AsmErrorKind::BadOperand, format!("fp register out of range: ${name}"))
        }),
        _ => Err(err(line, AsmErrorKind::BadOperand, format!("unknown register bank in ${name}"))),
    }
}

fn int_reg(line: usize, arg: &Arg) -> Result<IntReg, AssembleError> {
    match arg {
        Arg::Reg(name) => match parse_reg(line, name)? {
            RegRef::Int(r) => Ok(r),
            RegRef::Fp(_) => Err(err(
                line,
                AsmErrorKind::BadOperand,
                format!("expected integer register, got ${name}"),
            )),
        },
        other => {
            Err(err(line, AsmErrorKind::BadOperand, format!("expected register, got {other}")))
        }
    }
}

fn fp_reg(line: usize, arg: &Arg) -> Result<FpReg, AssembleError> {
    match arg {
        Arg::Reg(name) => match parse_reg(line, name)? {
            RegRef::Fp(r) => Ok(r),
            RegRef::Int(_) => Err(err(
                line,
                AsmErrorKind::BadOperand,
                format!("expected fp register, got ${name}"),
            )),
        },
        other => {
            Err(err(line, AsmErrorKind::BadOperand, format!("expected register, got {other}")))
        }
    }
}

fn imm16(line: usize, arg: &Arg) -> Result<i16, AssembleError> {
    match arg {
        Arg::Imm(v) => i16::try_from(*v).map_err(|_| {
            err(line, AsmErrorKind::OutOfRange, format!("immediate {v} does not fit in 16 bits"))
        }),
        other => {
            Err(err(line, AsmErrorKind::BadOperand, format!("expected immediate, got {other}")))
        }
    }
}

fn uimm16(line: usize, arg: &Arg) -> Result<u16, AssembleError> {
    match arg {
        Arg::Imm(v) if (0..=0xffff).contains(v) => Ok(*v as u16),
        Arg::Imm(v) => Err(err(
            line,
            AsmErrorKind::OutOfRange,
            format!("immediate {v} does not fit in unsigned 16 bits"),
        )),
        other => {
            Err(err(line, AsmErrorKind::BadOperand, format!("expected immediate, got {other}")))
        }
    }
}

fn shamt(line: usize, arg: &Arg) -> Result<u8, AssembleError> {
    match arg {
        Arg::Imm(v) if (0..32).contains(v) => Ok(*v as u8),
        Arg::Imm(v) => {
            Err(err(line, AsmErrorKind::OutOfRange, format!("shift amount {v} out of range 0..32")))
        }
        other => {
            Err(err(line, AsmErrorKind::BadOperand, format!("expected shift amount, got {other}")))
        }
    }
}

fn mem_operand(line: usize, arg: &Arg) -> Result<(IntReg, i16), AssembleError> {
    match arg {
        Arg::Mem { off, base } => {
            let base = match parse_reg(line, base)? {
                RegRef::Int(r) => r,
                RegRef::Fp(_) => {
                    return Err(err(
                        line,
                        AsmErrorKind::BadOperand,
                        "memory base must be an integer register",
                    ))
                }
            };
            let off = i16::try_from(*off).map_err(|_| {
                err(
                    line,
                    AsmErrorKind::OutOfRange,
                    format!("memory offset {off} does not fit in 16 bits"),
                )
            })?;
            Ok((base, off))
        }
        other => Err(err(
            line,
            AsmErrorKind::BadOperand,
            format!("expected memory operand, got {other}"),
        )),
    }
}

/// Symbol lookup used during expansion. Pass 1 maps every symbol to 0 so
/// that sizes can be computed before addresses are known.
type Lookup<'a> = &'a dyn Fn(&str) -> Option<u32>;

fn resolve(line: usize, arg: &Arg, lookup: Lookup<'_>) -> Result<u32, AssembleError> {
    match arg {
        Arg::Sym(s) => lookup(s).ok_or_else(|| {
            err(line, AsmErrorKind::UndefinedSymbol, format!("undefined symbol {s:?}"))
        }),
        Arg::Imm(v) => u32::try_from(*v)
            .map_err(|_| err(line, AsmErrorKind::OutOfRange, format!("address {v} out of range"))),
        other => Err(err(
            line,
            AsmErrorKind::BadOperand,
            format!("expected label or address, got {other}"),
        )),
    }
}

fn branch_off(line: usize, pc: u32, target: u32) -> Result<i16, AssembleError> {
    let delta = i64::from(target) - i64::from(pc) - 4;
    if delta % 4 != 0 {
        return Err(err(
            line,
            AsmErrorKind::Layout,
            format!("branch target {target:#x} is not aligned"),
        ));
    }
    i16::try_from(delta / 4).map_err(|_| {
        err(
            line,
            AsmErrorKind::OutOfRange,
            format!("branch target {target:#x} out of 16-bit range"),
        )
    })
}

/// Number of machine instructions `li` expands to for a given literal.
fn li_len(v: i64) -> usize {
    let bits = v as u32;
    if i16::try_from(v).is_ok() || bits & 0xffff == 0 {
        1
    } else {
        2
    }
}

fn expand_li(rt: IntReg, v: i64) -> Vec<Inst> {
    if let Ok(imm) = i16::try_from(v) {
        return vec![Inst::AluImm { op: AluImmOp::Addi, rt, rs: IntReg::ZERO, imm }];
    }
    let bits = v as u32;
    let hi = (bits >> 16) as u16;
    let lo = (bits & 0xffff) as u16;
    if lo == 0 {
        vec![Inst::Lui { rt, imm: hi }]
    } else {
        vec![
            Inst::Lui { rt, imm: hi },
            Inst::AluImm { op: AluImmOp::Ori, rt, rs: rt, imm: lo as i16 },
        ]
    }
}

/// Sizes an instruction (in machine instructions) without resolving symbols.
fn inst_len(line: usize, mnemonic: &str, args: &[Arg]) -> Result<usize, AssembleError> {
    Ok(match mnemonic {
        "li" => match args.get(1) {
            Some(Arg::Imm(v)) => li_len(*v),
            _ => {
                return Err(err(
                    line,
                    AsmErrorKind::BadOperand,
                    "li expects a register and an integer literal",
                ))
            }
        },
        "la" => 2,
        "blt" | "bge" | "bgt" | "ble" => 2,
        _ => 1,
    })
}

/// Expands and encodes one source instruction at `pc`.
fn expand(
    line: usize,
    mnemonic: &str,
    args: &[Arg],
    pc: u32,
    lookup: Lookup<'_>,
) -> Result<Vec<Inst>, AssembleError> {
    let argc = |n: usize| -> Result<(), AssembleError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                AsmErrorKind::BadOperand,
                format!("{mnemonic} expects {n} operands, got {}", args.len()),
            ))
        }
    };
    let alu3 = |op: AluOp| -> Result<Vec<Inst>, AssembleError> {
        argc(3)?;
        Ok(vec![Inst::Alu {
            op,
            rd: int_reg(line, &args[0])?,
            rs: int_reg(line, &args[1])?,
            rt: int_reg(line, &args[2])?,
        }])
    };
    let alui = |op: AluImmOp| -> Result<Vec<Inst>, AssembleError> {
        argc(3)?;
        Ok(vec![Inst::AluImm {
            op,
            rt: int_reg(line, &args[0])?,
            rs: int_reg(line, &args[1])?,
            imm: imm16(line, &args[2])?,
        }])
    };
    let shift = |op: ShiftOp| -> Result<Vec<Inst>, AssembleError> {
        argc(3)?;
        Ok(vec![Inst::Shift {
            op,
            rd: int_reg(line, &args[0])?,
            rt: int_reg(line, &args[1])?,
            shamt: shamt(line, &args[2])?,
        }])
    };
    let fp3 = |op: FpAluOp| -> Result<Vec<Inst>, AssembleError> {
        argc(3)?;
        Ok(vec![Inst::FpOp {
            op,
            fd: fp_reg(line, &args[0])?,
            fs: fp_reg(line, &args[1])?,
            ft: fp_reg(line, &args[2])?,
        }])
    };
    let fp1 = |op: FpUnaryOp| -> Result<Vec<Inst>, AssembleError> {
        argc(2)?;
        Ok(vec![Inst::FpUnary { op, fd: fp_reg(line, &args[0])?, fs: fp_reg(line, &args[1])? }])
    };
    let fcmp = |cond: FpCond| -> Result<Vec<Inst>, AssembleError> {
        argc(3)?;
        Ok(vec![Inst::CmpD {
            cond,
            rd: int_reg(line, &args[0])?,
            fs: fp_reg(line, &args[1])?,
            ft: fp_reg(line, &args[2])?,
        }])
    };
    let branch2 = |mk: fn(IntReg, IntReg, i16) -> Inst| -> Result<Vec<Inst>, AssembleError> {
        argc(3)?;
        let target = resolve(line, &args[2], lookup)?;
        Ok(vec![mk(
            int_reg(line, &args[0])?,
            int_reg(line, &args[1])?,
            branch_off(line, pc, target)?,
        )])
    };
    let branch1 = |cond: BranchCond| -> Result<Vec<Inst>, AssembleError> {
        argc(2)?;
        let target = resolve(line, &args[1], lookup)?;
        Ok(vec![Inst::Bcond {
            cond,
            rs: int_reg(line, &args[0])?,
            off: branch_off(line, pc, target)?,
        }])
    };
    // Compare-and-branch pseudos: slt into $at then branch on $at. The
    // branch sits at pc+4.
    let cmp_branch = |swap: bool, taken_if_set: bool| -> Result<Vec<Inst>, AssembleError> {
        argc(3)?;
        let a = int_reg(line, &args[0])?;
        let b = int_reg(line, &args[1])?;
        let (rs, rt) = if swap { (b, a) } else { (a, b) };
        let target = resolve(line, &args[2], lookup)?;
        let off = branch_off(line, pc + 4, target)?;
        let cmp = Inst::Alu { op: AluOp::Slt, rd: AT, rs, rt };
        let br = if taken_if_set {
            Inst::Bne { rs: AT, rt: IntReg::ZERO, off }
        } else {
            Inst::Beq { rs: AT, rt: IntReg::ZERO, off }
        };
        Ok(vec![cmp, br])
    };

    match mnemonic {
        "nop" => {
            argc(0)?;
            Ok(vec![Inst::Nop])
        }
        "halt" => {
            argc(0)?;
            Ok(vec![Inst::Halt])
        }
        "add" => alu3(AluOp::Add),
        "sub" => alu3(AluOp::Sub),
        "mul" => alu3(AluOp::Mul),
        "div" => alu3(AluOp::Div),
        "rem" => alu3(AluOp::Rem),
        "and" => alu3(AluOp::And),
        "or" => alu3(AluOp::Or),
        "xor" => alu3(AluOp::Xor),
        "nor" => alu3(AluOp::Nor),
        "slt" => alu3(AluOp::Slt),
        "sltu" => alu3(AluOp::Sltu),
        "sllv" => alu3(AluOp::Sllv),
        "srlv" => alu3(AluOp::Srlv),
        "srav" => alu3(AluOp::Srav),
        "addi" => alui(AluImmOp::Addi),
        "slti" => alui(AluImmOp::Slti),
        "sltiu" => alui(AluImmOp::Sltiu),
        "andi" => alui(AluImmOp::Andi),
        "ori" => alui(AluImmOp::Ori),
        "xori" => alui(AluImmOp::Xori),
        "sll" => shift(ShiftOp::Sll),
        "srl" => shift(ShiftOp::Srl),
        "sra" => shift(ShiftOp::Sra),
        "lui" => {
            argc(2)?;
            Ok(vec![Inst::Lui { rt: int_reg(line, &args[0])?, imm: uimm16(line, &args[1])? }])
        }
        "lw" => {
            argc(2)?;
            let (base, off) = mem_operand(line, &args[1])?;
            Ok(vec![Inst::Lw { rt: int_reg(line, &args[0])?, base, off }])
        }
        "sw" => {
            argc(2)?;
            let (base, off) = mem_operand(line, &args[1])?;
            Ok(vec![Inst::Sw { rt: int_reg(line, &args[0])?, base, off }])
        }
        "l.d" | "ld" => {
            argc(2)?;
            let (base, off) = mem_operand(line, &args[1])?;
            Ok(vec![Inst::Ld { ft: fp_reg(line, &args[0])?, base, off }])
        }
        "s.d" | "sd" => {
            argc(2)?;
            let (base, off) = mem_operand(line, &args[1])?;
            Ok(vec![Inst::Sd { ft: fp_reg(line, &args[0])?, base, off }])
        }
        "add.d" => fp3(FpAluOp::AddD),
        "sub.d" => fp3(FpAluOp::SubD),
        "mul.d" => fp3(FpAluOp::MulD),
        "div.d" => fp3(FpAluOp::DivD),
        "mov.d" => fp1(FpUnaryOp::MovD),
        "neg.d" => fp1(FpUnaryOp::NegD),
        "sqrt.d" => fp1(FpUnaryOp::SqrtD),
        "cvt.d.w" => fp1(FpUnaryOp::CvtDW),
        "cvt.w.d" => fp1(FpUnaryOp::CvtWD),
        "c.eq.d" => fcmp(FpCond::Eq),
        "c.lt.d" => fcmp(FpCond::Lt),
        "c.le.d" => fcmp(FpCond::Le),
        "mtc1" => {
            argc(2)?;
            Ok(vec![Inst::Mtc1 { rs: int_reg(line, &args[0])?, fd: fp_reg(line, &args[1])? }])
        }
        "mfc1" => {
            argc(2)?;
            Ok(vec![Inst::Mfc1 { rd: int_reg(line, &args[0])?, fs: fp_reg(line, &args[1])? }])
        }
        "beq" => branch2(|rs, rt, off| Inst::Beq { rs, rt, off }),
        "bne" => branch2(|rs, rt, off| Inst::Bne { rs, rt, off }),
        "blez" => branch1(BranchCond::Lez),
        "bgtz" => branch1(BranchCond::Gtz),
        "bltz" => branch1(BranchCond::Ltz),
        "bgez" => branch1(BranchCond::Gez),
        "j" => {
            argc(1)?;
            Ok(vec![Inst::J { target: resolve(line, &args[0], lookup)? }])
        }
        "jal" => {
            argc(1)?;
            Ok(vec![Inst::Jal { target: resolve(line, &args[0], lookup)? }])
        }
        "jr" => {
            argc(1)?;
            Ok(vec![Inst::Jr { rs: int_reg(line, &args[0])? }])
        }
        "jalr" => match args.len() {
            1 => Ok(vec![Inst::Jalr { rd: IntReg::RA, rs: int_reg(line, &args[0])? }]),
            2 => {
                Ok(vec![Inst::Jalr { rd: int_reg(line, &args[0])?, rs: int_reg(line, &args[1])? }])
            }
            n => Err(err(
                line,
                AsmErrorKind::BadOperand,
                format!("jalr expects 1 or 2 operands, got {n}"),
            )),
        },
        // Pseudo-instructions.
        "li" => {
            argc(2)?;
            let rt = int_reg(line, &args[0])?;
            match &args[1] {
                Arg::Imm(v) => Ok(expand_li(rt, *v)),
                other => Err(err(
                    line,
                    AsmErrorKind::BadOperand,
                    format!("li expects an integer literal, got {other}"),
                )),
            }
        }
        "la" => {
            argc(2)?;
            let rt = int_reg(line, &args[0])?;
            let addr = resolve(line, &args[1], lookup)?;
            Ok(vec![
                Inst::Lui { rt, imm: (addr >> 16) as u16 },
                Inst::AluImm { op: AluImmOp::Ori, rt, rs: rt, imm: (addr & 0xffff) as i16 },
            ])
        }
        "move" => {
            argc(2)?;
            Ok(vec![Inst::Alu {
                op: AluOp::Or,
                rd: int_reg(line, &args[0])?,
                rs: int_reg(line, &args[1])?,
                rt: IntReg::ZERO,
            }])
        }
        "neg" => {
            argc(2)?;
            Ok(vec![Inst::Alu {
                op: AluOp::Sub,
                rd: int_reg(line, &args[0])?,
                rs: IntReg::ZERO,
                rt: int_reg(line, &args[1])?,
            }])
        }
        "b" => {
            argc(1)?;
            let target = resolve(line, &args[0], lookup)?;
            Ok(vec![Inst::Beq {
                rs: IntReg::ZERO,
                rt: IntReg::ZERO,
                off: branch_off(line, pc, target)?,
            }])
        }
        "blt" => cmp_branch(false, true),
        "bge" => cmp_branch(false, false),
        "bgt" => cmp_branch(true, true),
        "ble" => cmp_branch(true, false),
        other => {
            Err(err(line, AsmErrorKind::UnknownMnemonic, format!("unknown mnemonic {other:?}")))
        }
    }
}

/// Data-segment layout helper shared by both passes.
fn directive_data_len(
    line: usize,
    name: &str,
    args: &[Arg],
    addr: u32,
) -> Result<u32, AssembleError> {
    match name {
        "word" => Ok(4 * args.len() as u32),
        "double" => {
            let pad = (8 - addr % 8) % 8;
            Ok(pad + 8 * args.len() as u32)
        }
        "space" => match args {
            [Arg::Imm(n)] if *n >= 0 => Ok(*n as u32),
            _ => Err(err(
                line,
                AsmErrorKind::MalformedDirective,
                ".space expects a non-negative byte count",
            )),
        },
        "align" => match args {
            [Arg::Imm(n)] if (0..=16).contains(n) => {
                let a = 1u32 << *n;
                Ok((a - addr % a) % a)
            }
            _ => Err(err(
                line,
                AsmErrorKind::MalformedDirective,
                ".align expects an exponent in 0..=16",
            )),
        },
        _ => Err(err(
            line,
            AsmErrorKind::UnknownDirective,
            format!("unknown data directive .{name}"),
        )),
    }
}

/// Assembles riq assembly source into a [`Program`].
///
/// # Errors
///
/// Returns the first parse, sizing, or encoding error, tagged with its
/// source line.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_asm::assemble;
/// let program = assemble(
///     r#"
///     .data
///     vec:  .double 1.0, 2.0
///     .text
///         la   $r6, vec
///         l.d  $f0, 0($r6)
///         halt
///     "#,
/// )?;
/// assert_eq!(program.symbol("vec"), Some(program.data_base()));
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Program, AssembleError> {
    let lines = parse(source).map_err(|e| err(e.line, AsmErrorKind::Syntax, e.message))?;
    assemble_lines(&lines)
}

fn assemble_lines(lines: &[Line]) -> Result<Program, AssembleError> {
    // ---- Pass 1: addresses and symbols ----
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut segment = Segment::Text;
    let mut text_base = TEXT_BASE;
    let mut data_base = DATA_BASE;
    let mut text_pc = text_base;
    let mut data_addr = data_base;
    let mut text_started = false;
    let mut data_started = false;
    let mut entry_sym: Option<(usize, String)> = None;

    for l in lines {
        {
            if let Some(Body::Directive { name, args }) = &l.body {
                match name.as_str() {
                    "text" | "data" => {
                        let is_text = name == "text";
                        if let Some(a) = args.first() {
                            let base = match a {
                                Arg::Imm(v) => u32::try_from(*v).map_err(|_| {
                                    err(
                                        l.number,
                                        AsmErrorKind::OutOfRange,
                                        format!("segment base {v} out of range"),
                                    )
                                })?,
                                other => {
                                    return Err(err(
                                        l.number,
                                        AsmErrorKind::MalformedDirective,
                                        format!("segment base must be a literal, got {other}"),
                                    ))
                                }
                            };
                            if is_text {
                                if text_started {
                                    return Err(err(
                                        l.number,
                                        AsmErrorKind::Layout,
                                        "cannot rebase .text after emitting code",
                                    ));
                                }
                                if base % INST_BYTES != 0 {
                                    return Err(err(
                                        l.number,
                                        AsmErrorKind::Layout,
                                        "text base must be aligned",
                                    ));
                                }
                                text_base = base;
                                text_pc = base;
                            } else {
                                if data_started {
                                    return Err(err(
                                        l.number,
                                        AsmErrorKind::Layout,
                                        "cannot rebase .data after emitting data",
                                    ));
                                }
                                data_base = base;
                                data_addr = base;
                            }
                        }
                        segment = if is_text { Segment::Text } else { Segment::Data };
                        // Define the label *after* the segment switch so a
                        // label on the directive line lands in the segment.
                    }
                    _ => {}
                }
            }
        }
        if let Some(label) = &l.label {
            let addr = match segment {
                Segment::Text => text_pc,
                Segment::Data => data_addr,
            };
            // `.double` on the same line aligns first; account for that so
            // the label points at the aligned datum.
            let addr = match (&l.body, segment) {
                (Some(Body::Directive { name, .. }), Segment::Data) if name == "double" => {
                    addr + (8 - addr % 8) % 8
                }
                _ => addr,
            };
            if symbols.insert(label.clone(), addr).is_some() {
                return Err(err(
                    l.number,
                    AsmErrorKind::DuplicateLabel,
                    format!("duplicate label {label:?}"),
                ));
            }
        }
        match &l.body {
            None => {}
            Some(Body::Directive { name, args }) => match (name.as_str(), segment) {
                ("text" | "data", _) => {}
                ("global" | "globl", _) => {}
                ("entry", _) => match args.as_slice() {
                    [Arg::Sym(s)] => entry_sym = Some((l.number, s.clone())),
                    _ => {
                        return Err(err(
                            l.number,
                            AsmErrorKind::MalformedDirective,
                            ".entry expects a label",
                        ))
                    }
                },
                (_, Segment::Data) => {
                    data_started = true;
                    data_addr += directive_data_len(l.number, name, args, data_addr)?;
                }
                (_, Segment::Text) => {
                    return Err(err(
                        l.number,
                        AsmErrorKind::Layout,
                        format!("data directive .{name} not allowed in .text"),
                    ))
                }
            },
            Some(Body::Inst { mnemonic, args }) => {
                if segment != Segment::Text {
                    return Err(err(
                        l.number,
                        AsmErrorKind::Layout,
                        "instructions must be in the .text segment",
                    ));
                }
                text_started = true;
                text_pc += INST_BYTES * inst_len(l.number, mnemonic, args)? as u32;
            }
        }
    }

    // ---- Pass 2: encode ----
    let lookup = |s: &str| symbols.get(s).copied();
    let mut text: Vec<u32> = Vec::with_capacity(((text_pc - text_base) / INST_BYTES) as usize);
    let mut data: Vec<u8> = Vec::with_capacity((data_addr - data_base) as usize);
    let mut segment = Segment::Text;
    let mut pc = text_base;
    let mut daddr = data_base;

    for l in lines {
        match &l.body {
            None => {}
            Some(Body::Directive { name, args }) => match name.as_str() {
                "text" => segment = Segment::Text,
                "data" => segment = Segment::Data,
                "global" | "globl" | "entry" => {}
                _ => {
                    debug_assert_eq!(segment, Segment::Data);
                    emit_data(l.number, name, args, &mut data, &mut daddr, data_base, &lookup)?;
                }
            },
            Some(Body::Inst { mnemonic, args }) => {
                let insts = expand(l.number, mnemonic, args, pc, &lookup)?;
                debug_assert_eq!(insts.len(), inst_len(l.number, mnemonic, args)?);
                for inst in insts {
                    let word = inst.encode().map_err(|e| {
                        err(l.number, AsmErrorKind::Encode, format!("cannot encode {inst}: {e}"))
                    })?;
                    text.push(word);
                    pc += INST_BYTES;
                }
            }
        }
    }

    let entry = match entry_sym {
        Some((line, s)) => symbols.get(&s).copied().ok_or_else(|| {
            err(line, AsmErrorKind::UndefinedSymbol, format!("undefined entry label {s:?}"))
        })?,
        None => text_base,
    };
    if text.is_empty() {
        return Err(err(0, AsmErrorKind::Layout, "program has no instructions"));
    }
    Ok(Program::from_parts(text_base, text, data_base, data, entry, symbols))
}

fn emit_data(
    line: usize,
    name: &str,
    args: &[Arg],
    data: &mut Vec<u8>,
    addr: &mut u32,
    base: u32,
    lookup: Lookup<'_>,
) -> Result<(), AssembleError> {
    let pad_to = |data: &mut Vec<u8>, addr: &mut u32, n: u32| {
        while !(*addr).is_multiple_of(n) {
            data.push(0);
            *addr += 1;
        }
    };
    match name {
        "word" => {
            for a in args {
                let v: u32 = match a {
                    Arg::Imm(v) => *v as u32,
                    Arg::Sym(s) => lookup(s).ok_or_else(|| {
                        err(line, AsmErrorKind::UndefinedSymbol, format!("undefined symbol {s:?}"))
                    })?,
                    other => {
                        return Err(err(
                            line,
                            AsmErrorKind::MalformedDirective,
                            format!(".word expects integers, got {other}"),
                        ))
                    }
                };
                data.extend_from_slice(&v.to_le_bytes());
                *addr += 4;
            }
        }
        "double" => {
            pad_to(data, addr, 8);
            for a in args {
                let v: f64 = match a {
                    Arg::Float(v) => *v,
                    Arg::Imm(v) => *v as f64,
                    other => {
                        return Err(err(
                            line,
                            AsmErrorKind::MalformedDirective,
                            format!(".double expects numbers, got {other}"),
                        ))
                    }
                };
                data.extend_from_slice(&v.to_bits().to_le_bytes());
                *addr += 8;
            }
        }
        "space" => {
            let n = directive_data_len(line, name, args, *addr)?;
            data.extend(std::iter::repeat_n(0u8, n as usize));
            *addr += n;
        }
        "align" => {
            let n = directive_data_len(line, name, args, *addr)?;
            data.extend(std::iter::repeat_n(0u8, n as usize));
            *addr += n;
        }
        other => {
            return Err(err(
                line,
                AsmErrorKind::UnknownDirective,
                format!("unknown data directive .{other}"),
            ))
        }
    }
    debug_assert_eq!(*addr - base, data.len() as u32);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_isa::Inst;

    #[test]
    fn assembles_simple_loop() {
        let p = assemble(
            "  addi $r2, $r0, 10\nloop: addi $r3, $r3, 1\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        )
        .unwrap();
        assert_eq!(p.text_len(), 5);
        // The bne at index 3 must target index 1 => offset -3.
        let bne = p.inst_at(p.text_base() + 12).unwrap();
        assert_eq!(bne, Inst::Bne { rs: IntReg::new(2), rt: IntReg::ZERO, off: -3 });
    }

    #[test]
    fn li_expansion_sizes() {
        assert_eq!(li_len(0), 1);
        assert_eq!(li_len(-32768), 1);
        assert_eq!(li_len(32767), 1);
        assert_eq!(li_len(0x10000), 1); // lui only
        assert_eq!(li_len(0x12345), 2);
        assert_eq!(li_len(-40000), 2);
    }

    #[test]
    fn li_and_la_semantics() {
        let p = assemble(".data\nv: .word 1\n.text\n  li $r4, 0x12345678\n  la $r5, v\n  halt\n")
            .unwrap();
        assert_eq!(p.text_len(), 5);
        assert_eq!(
            p.inst_at(p.text_base()).unwrap(),
            Inst::Lui { rt: IntReg::new(4), imm: 0x1234 }
        );
        assert_eq!(p.symbol("v"), Some(p.data_base()));
    }

    #[test]
    fn forward_references_resolve() {
        let p = assemble("  beq $r0, $r0, end\n  nop\nend: halt\n").unwrap();
        let b = p.inst_at(p.text_base()).unwrap();
        assert_eq!(b, Inst::Beq { rs: IntReg::ZERO, rt: IntReg::ZERO, off: 1 });
    }

    #[test]
    fn cmp_branch_pseudos() {
        let p = assemble("loop: addi $r2, $r2, 1\n  blt $r2, $r9, loop\n  halt\n").unwrap();
        assert_eq!(p.text_len(), 4);
        let slt = p.inst_at(p.text_base() + 4).unwrap();
        assert_eq!(
            slt,
            Inst::Alu { op: AluOp::Slt, rd: AT, rs: IntReg::new(2), rt: IntReg::new(9) }
        );
        let bne = p.inst_at(p.text_base() + 8).unwrap();
        assert_eq!(bne, Inst::Bne { rs: AT, rt: IntReg::ZERO, off: -3 });
    }

    #[test]
    fn data_layout_and_alignment() {
        let p = assemble(
            ".data\nn: .word 7\nd: .double 2.5\nbuf: .space 3\nm: .word 9\n.text\n  halt\n",
        )
        .unwrap();
        let base = p.data_base();
        assert_eq!(p.symbol("n"), Some(base));
        assert_eq!(p.symbol("d"), Some(base + 8), ".double aligns to 8");
        assert_eq!(p.symbol("buf"), Some(base + 16));
        assert_eq!(p.symbol("m"), Some(base + 19));
        assert_eq!(&p.data()[0..4], &7u32.to_le_bytes());
        assert_eq!(&p.data()[8..16], &2.5f64.to_bits().to_le_bytes());
    }

    #[test]
    fn word_can_hold_symbols() {
        let p = assemble(".data\nptr: .word tgt\n.text\ntgt: halt\n").unwrap();
        assert_eq!(&p.data()[0..4], &p.symbol("tgt").unwrap().to_le_bytes());
    }

    #[test]
    fn entry_directive() {
        let p = assemble(".entry main\n  nop\nmain: halt\n").unwrap();
        assert_eq!(p.entry(), p.text_base() + 4);
    }

    #[test]
    fn errors_are_located() {
        let e = assemble("  addi $r1, $r2\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = assemble("  bne $r1, $r0, nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined symbol"), "{e}");
        let e = assemble("nop\nx: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate label"), "{e}");
        let e = assemble("  addi $r1, $r1, 99999\n").unwrap_err();
        assert!(e.message.contains("16 bits"), "{e}");
    }

    #[test]
    fn empty_program_rejected() {
        assert!(assemble("# nothing\n").is_err());
        assert!(assemble(".data\nx: .word 1\n").is_err());
    }

    #[test]
    fn register_aliases() {
        let p = assemble("  addi $sp, $sp, -16\n  jr $ra\n  halt\n").unwrap();
        assert_eq!(
            p.inst_at(p.text_base()).unwrap(),
            Inst::AluImm { op: AluImmOp::Addi, rt: IntReg::SP, rs: IntReg::SP, imm: -16 }
        );
        assert_eq!(p.inst_at(p.text_base() + 4).unwrap(), Inst::Jr { rs: IntReg::RA });
    }
}
