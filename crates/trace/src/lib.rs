//! # riq-trace — cycle-accurate telemetry for the riq simulator
//!
//! Observability layer for the reuse-capable issue-queue model: typed
//! [`TraceEvent`]s covering the reuse FSM (loop detection, NBLT hits,
//! buffering, code reuse), front-end clock-gating windows, per-cycle
//! pipeline samples, cache/branch-predictor misses, and epoch-delta
//! summaries; pluggable [`TraceSink`]s (null, in-memory ring buffer,
//! `Vec`, JSONL writer); and a dependency-free [`json`] layer used both
//! for the JSONL trace format and the machine-readable run reports the
//! `riq_repro` binary emits.
//!
//! This is a leaf crate: it depends on nothing in the workspace, so every
//! simulator crate (core, mem, bpred, power, bench) can depend on it.
//!
//! ## Zero cost when disabled
//!
//! Instrumentation sites receive a `&mut dyn TraceSink` and consult
//! [`TraceSink::enabled`] before constructing events. The default
//! [`NullSink`] reports `false`, so an untraced run skips event
//! construction entirely — the only residual cost is one boolean check per
//! instrumented region per cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod sink;

pub use events::{CacheLevel, EventKind, GateEndReason, RevokeReason, TraceEvent};
pub use json::{parse, JsonValue, ParseError, ToJson};
pub use sink::{parse_jsonl, JsonlSink, NullSink, RingBufferSink, TraceSink, VecSink};
