//! Pluggable trace consumers.
//!
//! The simulator hands every event to a `&mut dyn TraceSink`. The
//! [`NullSink`] reports itself disabled, which lets instrumentation sites
//! skip event construction entirely — tracing costs nothing unless a real
//! sink is attached.

use std::collections::VecDeque;
use std::io::{self, Write};

use crate::events::TraceEvent;
use crate::json::ToJson;

/// Consumer of trace events.
pub trait TraceSink {
    /// Whether the producer should bother constructing events. Callers are
    /// expected to check this once per instrumentation region, not per event.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);

    /// Flushes buffered output; called once at end of run.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards everything and reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// Keeps the last `capacity` events in memory, counting overwrites.
#[derive(Debug)]
pub struct RingBufferSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingBufferSink {
        let capacity = capacity.max(1);
        RingBufferSink { buf: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the ring, oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

/// Collects every event into a `Vec` — the test workhorse.
#[derive(Debug, Default)]
pub struct VecSink {
    /// Recorded events in arrival order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Writes each event as one compact JSON object per line (JSONL).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: io::BufWriter<W>,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer; output is buffered internally.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink { writer: io::BufWriter::new(writer), written: 0, error: None }
    }

    /// Lines successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the inner writer, or the first I/O error
    /// encountered while recording.
    pub fn into_inner(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        self.writer.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json().to_compact();
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

/// Parses a JSONL trace back into events. Lines that are blank are skipped;
/// malformed lines produce an error naming the 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = crate::json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let event = TraceEvent::from_json(&value)
            .ok_or_else(|| format!("line {}: not a valid trace event", idx + 1))?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let mut ring = RingBufferSink::new(3);
        assert!(ring.is_empty());
        for cycle in 0..10 {
            ring.record(TraceEvent::new(cycle, EventKind::GateOn));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let cycles: Vec<u64> = ring.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9], "oldest events evicted first");
        assert_eq!(ring.into_events().len(), 3);
    }

    #[test]
    fn ring_buffer_capacity_floor_is_one() {
        let mut ring = RingBufferSink::new(0);
        ring.record(TraceEvent::new(1, EventKind::GateOn));
        ring.record(TraceEvent::new(2, EventKind::GateOn));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn ring_buffer_below_capacity_drops_nothing() {
        let mut ring = RingBufferSink::new(8);
        for cycle in 0..5 {
            ring.record(TraceEvent::new(cycle, EventKind::GateOn));
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn jsonl_round_trips_every_event_variant() {
        let examples = TraceEvent::examples();
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        for event in &examples {
            sink.record(event.clone());
        }
        sink.finish().expect("flush");
        assert_eq!(sink.written(), examples.len() as u64);
        let bytes = sink.into_inner().expect("into_inner");
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(text.lines().count(), examples.len(), "one line per event");
        let back = parse_jsonl(&text).expect("parse_jsonl");
        assert_eq!(back, examples);
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let err =
            parse_jsonl("{\"cycle\":1,\"kind\":\"gate_on\"}\nnot json\n").expect_err("should fail");
        assert!(err.starts_with("line 2:"), "got: {err}");
    }

    #[test]
    fn parse_jsonl_skips_blank_lines() {
        let events = parse_jsonl("\n{\"cycle\":1,\"kind\":\"gate_on\"}\n\n").expect("parse");
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        sink.record(TraceEvent::new(5, EventKind::GateOn));
        sink.record(TraceEvent::new(
            9,
            EventKind::GateOff { span: 4, reason: crate::events::GateEndReason::Drained },
        ));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].cycle, 5);
    }
}
