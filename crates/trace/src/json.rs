//! A dependency-free JSON layer: a value tree, a compact writer, a strict
//! parser, and the [`ToJson`] trait implemented by every stats struct that
//! appears in a run report.
//!
//! The build environment has no network access, so `serde`/`serde_json`
//! cannot be pulled in; this module covers the subset the simulator needs
//! (reports and JSONL traces are flat, modest-sized documents).
//!
//! Numbers are kept in three lanes — [`JsonValue::UInt`], [`JsonValue::Int`],
//! and [`JsonValue::Num`] — so `u64` counters (e.g. memory digests) survive a
//! round trip without passing through `f64` and losing bits above 2^53.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer that fits in `u64` (preferred lane for counters).
    UInt(u64),
    /// Negative integer that fits in `i64`.
    Int(i64),
    /// Any other number (fractional or out of integer range).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object. `BTreeMap` keeps key order deterministic across runs.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I>(pairs: I) -> JsonValue
    where
        I: IntoIterator<Item = (&'static str, JsonValue)>,
    {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `u64` if it is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(n) => Some(n),
            JsonValue::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::UInt(n) => i64::try_from(n).ok(),
            JsonValue::Int(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::UInt(n) => Some(n as f64),
            JsonValue::Int(n) => Some(n as f64),
            JsonValue::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact (single-line) JSON.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, None, 0);
        out
    }

    /// Serializes to pretty-printed JSON with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Num(n) => write_f64(out, *n),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write_into(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            JsonValue::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write_into(out, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Keep whole-valued floats readable and round-trippable.
            let _ = write!(out, "{:.1}", n);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`JsonValue`]; implemented by every stats struct that
/// appears in a run report or trace line.
pub trait ToJson {
    /// Renders `self` as a JSON value tree.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::UInt(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> JsonValue {
        JsonValue::UInt(u64::from(*self))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> JsonValue {
        JsonValue::UInt(*self as u64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Num(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

/// Parse error: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs (rare in our data) are decoded;
                            // a lone surrogate becomes the replacement char.
                            let c = if (0xd800..0xdc00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let low = self.hex4()?;
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined).unwrap_or('\u{fffd}')
                            } else {
                                char::from_u32(code).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| ParseError { offset: start, message: "invalid number".to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_writer_basics() {
        let v = JsonValue::obj([
            ("b", JsonValue::Bool(true)),
            ("a", JsonValue::Arr(vec![JsonValue::UInt(1), JsonValue::Int(-2), JsonValue::Null])),
            ("s", JsonValue::Str("hi\n\"there\"".into())),
        ]);
        // BTreeMap sorts keys, so output order is deterministic.
        assert_eq!(v.to_compact(), r#"{"a":[1,-2,null],"b":true,"s":"hi\n\"there\""}"#);
    }

    #[test]
    fn u64_counters_survive_round_trip() {
        let big = u64::MAX - 3;
        let v = JsonValue::obj([("digest", JsonValue::UInt(big))]);
        let back = parse(&v.to_compact()).expect("parse");
        assert_eq!(back.get("digest").and_then(JsonValue::as_u64), Some(big));
    }

    #[test]
    fn negative_and_float_numbers() {
        let back = parse(r#"{"i":-42,"f":2.5,"e":1e3}"#).expect("parse");
        assert_eq!(back.get("i").and_then(JsonValue::as_i64), Some(-42));
        assert_eq!(back.get("f").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(back.get("e").and_then(JsonValue::as_f64), Some(1000.0));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(JsonValue::Num(3.0).to_compact(), "3.0");
        assert_eq!(JsonValue::Num(0.25).to_compact(), "0.25");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_compact(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\t newline\n quote\" backslash\\ control\u{1} unicode→";
        let v = JsonValue::Str(original.to_string());
        let back = parse(&v.to_compact()).expect("parse");
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn unicode_escape_and_surrogate_pair() {
        let back = parse(r#""A😀""#).expect("parse");
        assert_eq!(back.as_str(), Some("A\u{1f600}"));
    }

    #[test]
    fn pretty_printer_indents() {
        let v = JsonValue::obj([("x", JsonValue::Arr(vec![JsonValue::UInt(1)]))]);
        assert_eq!(v.to_pretty(), "{\n  \"x\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").expect("parse"), JsonValue::Arr(vec![]));
        assert_eq!(parse("{}").expect("parse"), JsonValue::Obj(BTreeMap::new()));
        assert_eq!(JsonValue::Arr(vec![]).to_compact(), "[]");
    }
}
