//! Typed trace events: reuse-FSM transitions, front-end gating windows,
//! per-cycle pipeline samples, cache/branch-predictor misses, and epoch
//! boundaries.
//!
//! Every variant serializes to a flat JSON object with a `"kind"` tag and
//! parses back losslessly, so JSONL traces can be post-processed by any
//! language without a schema file.

use crate::json::{JsonValue, ToJson};

/// One timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulator cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Convenience constructor.
    pub fn new(cycle: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { cycle, kind }
    }
}

/// Why buffered loop state was discarded before reaching code reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevokeReason {
    /// A different backward branch was seen while buffering (nested loop).
    InnerLoop,
    /// Control flow left the buffered region (loop exit / not-taken tail).
    LoopExit,
    /// A call/return crossed the buffered region boundary.
    UnpairedReturn,
    /// The issue queue filled before the loop tail arrived.
    QueueFull,
    /// A branch misprediction recovery squashed the buffered instructions.
    Recovery,
}

impl RevokeReason {
    /// Stable string tag used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            RevokeReason::InnerLoop => "inner_loop",
            RevokeReason::LoopExit => "loop_exit",
            RevokeReason::UnpairedReturn => "unpaired_return",
            RevokeReason::QueueFull => "queue_full",
            RevokeReason::Recovery => "recovery",
        }
    }

    fn from_str(s: &str) -> Option<RevokeReason> {
        Some(match s {
            "inner_loop" => RevokeReason::InnerLoop,
            "loop_exit" => RevokeReason::LoopExit,
            "unpaired_return" => RevokeReason::UnpairedReturn,
            "queue_full" => RevokeReason::QueueFull,
            "recovery" => RevokeReason::Recovery,
            _ => return None,
        })
    }
}

/// Why a front-end gating window ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateEndReason {
    /// The reused loop mispredicted its exit and recovery reopened the
    /// front end.
    Recovery,
    /// The reuse window completed normally and the front end resumed.
    Drained,
    /// The program finished while the gate was still closed.
    RunEnd,
}

impl GateEndReason {
    /// Stable string tag used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            GateEndReason::Recovery => "recovery",
            GateEndReason::Drained => "drained",
            GateEndReason::RunEnd => "run_end",
        }
    }

    fn from_str(s: &str) -> Option<GateEndReason> {
        Some(match s {
            "recovery" => GateEndReason::Recovery,
            "drained" => GateEndReason::Drained,
            "run_end" => GateEndReason::RunEnd,
            _ => return None,
        })
    }
}

/// Which cache recorded a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// Level-1 instruction cache.
    L1I,
    /// Level-1 data cache.
    L1D,
    /// Unified level-2 cache.
    L2,
}

impl CacheLevel {
    /// Stable string tag used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheLevel::L1I => "l1i",
            CacheLevel::L1D => "l1d",
            CacheLevel::L2 => "l2",
        }
    }

    fn from_str(s: &str) -> Option<CacheLevel> {
        Some(match s {
            "l1i" => CacheLevel::L1I,
            "l1d" => CacheLevel::L1D,
            "l2" => CacheLevel::L2,
            _ => return None,
        })
    }
}

/// The event payload. Field names match the JSON keys one-to-one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The NBLT/detector identified a backward branch closing a loop body
    /// small enough to fit in the issue queue.
    LoopDetected {
        /// Address of the first instruction of the loop body.
        head: u64,
        /// Address of the backward branch closing the loop.
        tail: u64,
        /// Static instruction count of the body.
        size: u64,
    },
    /// A dispatched branch hit in the Non-Blocking Loop Table.
    NbltHit {
        /// Address of the matching backward branch.
        tail: u64,
    },
    /// A loop tail was inserted into the Non-Blocking Loop Table.
    NbltInsert {
        /// Address of the inserted backward branch.
        tail: u64,
    },
    /// The issue queue began retaining instructions of a candidate loop.
    BufferingStarted {
        /// Loop body head address.
        head: u64,
        /// Loop tail (backward branch) address.
        tail: u64,
    },
    /// Buffered state was discarded before reaching code reuse.
    BufferingRevoked {
        /// Why the buffer was dropped.
        reason: RevokeReason,
        /// Whether the loop was still registered in the NBLT afterwards.
        registered: bool,
    },
    /// The queue captured a full iteration and entered code-reuse mode; the
    /// front end gates off.
    CodeReuseEntered {
        /// Loop body head address.
        head: u64,
        /// Loop tail address.
        tail: u64,
    },
    /// Code-reuse mode ended and normal dispatch resumed.
    CodeReuseExited {
        /// Instructions supplied from the reuse buffer during this episode.
        reused_insts: u64,
    },
    /// The front-end clock gate closed (fetch/decode/dispatch idle).
    GateOn,
    /// The front-end clock gate reopened.
    GateOff {
        /// Number of cycles the gate was closed (the window includes the
        /// cycle the gate closed, excludes the cycle it reopened).
        span: u64,
        /// What ended the window.
        reason: GateEndReason,
    },
    /// Per-cycle pipeline snapshot (emitted only when sampling is on).
    PipelineSample {
        /// Instructions fetched this cycle.
        fetched: u64,
        /// Instructions dispatched this cycle.
        dispatched: u64,
        /// Instructions issued this cycle.
        issued: u64,
        /// Instructions committed this cycle.
        committed: u64,
        /// Issue-queue occupancy after this cycle.
        iq_occupancy: u64,
        /// Reorder-buffer occupancy after this cycle.
        rob_occupancy: u64,
    },
    /// A cache access missed.
    CacheMiss {
        /// Which cache missed.
        level: CacheLevel,
        /// Accessed address.
        addr: u64,
        /// Total latency of the access in cycles.
        latency: u64,
    },
    /// A conditional branch resolved against its prediction.
    BranchMispredict {
        /// Address of the branch.
        pc: u64,
        /// Address execution actually continued at.
        actual_next: u64,
    },
    /// The simulator started from a checkpoint instead of instruction zero.
    Resumed {
        /// Instructions the fast-forward had already retired at the snapshot.
        retired: u64,
        /// Warm-window events replayed into caches/TLBs/predictor on restore.
        warmed: u64,
    },
    /// Host nanoseconds spent per pipeline stage on one sampled cycle
    /// (emitted only by profiled runs with tracing attached; `execute` is
    /// nested inside `dispatch` — consumers subtract it to partition the
    /// cycle).
    StageNanos {
        /// Fetch-stage host nanoseconds.
        fetch: u64,
        /// Decode-stage host nanoseconds.
        decode: u64,
        /// Dispatch-stage host nanoseconds (includes `execute`).
        dispatch: u64,
        /// Functional-execution host nanoseconds (inside `dispatch`).
        execute: u64,
        /// Issue-stage host nanoseconds.
        issue: u64,
        /// Writeback/recovery host nanoseconds.
        writeback: u64,
        /// Commit-stage host nanoseconds.
        commit: u64,
        /// End-of-cycle accounting host nanoseconds.
        accounting: u64,
    },
    /// An epoch boundary: deltas of headline counters over the epoch.
    Epoch {
        /// Zero-based epoch index.
        index: u64,
        /// First cycle of the epoch.
        start_cycle: u64,
        /// Cycles in the epoch (the final epoch may be short).
        cycles: u64,
        /// Instructions committed during the epoch.
        committed: u64,
        /// Front-end-gated cycles during the epoch.
        gated: u64,
        /// Instructions dispatched from the reuse buffer during the epoch.
        reused: u64,
    },
    /// A simulation job entered the service queue. For job-lifecycle
    /// events the `cycle` field carries the daemon's monotonic event
    /// sequence number rather than a simulated cycle.
    JobQueued {
        /// Daemon-assigned job id.
        job: u64,
        /// Owning sweep id (`0` for direct submissions).
        sweep: u64,
    },
    /// A worker leased a queued job.
    JobLeased {
        /// Daemon-assigned job id.
        job: u64,
        /// Numeric id of the leasing worker.
        worker: u64,
        /// One-based lease attempt (re-leases after expiry increment it).
        attempt: u64,
    },
    /// A leased job completed and its result was journaled.
    JobCompleted {
        /// Daemon-assigned job id.
        job: u64,
        /// Worker-reported wall nanoseconds spent simulating.
        wall_nanos: u64,
    },
    /// A lease expired or its worker died; the job went back in the queue.
    JobRequeued {
        /// Daemon-assigned job id.
        job: u64,
        /// Lease attempts consumed so far.
        attempts: u64,
    },
    /// A job exhausted its retries (or failed deterministically) and was
    /// marked failed; its sweep fails with the message.
    JobFailed {
        /// Daemon-assigned job id.
        job: u64,
        /// Lease attempts consumed.
        attempts: u64,
    },
    /// The issue stage selected an entry under a non-default scheduling
    /// policy (one event per selected entry).
    PolicySelected {
        /// Stable policy tag (e.g. `"load-delay"`).
        policy: String,
        /// Age of the selected instruction instance.
        seq: u64,
        /// Expected slack at selection: the predicted operand-ready cycle
        /// minus the current cycle (0 once the prediction has passed).
        slack: u64,
    },
    /// The load-delay tracker fixed a load's predicted completion cycle
    /// and broadcast it to waiting consumers.
    SlackComputed {
        /// Age of the load instance.
        seq: u64,
        /// Predicted completion cycle.
        pred_ready: u64,
        /// Predicted remaining latency (completion minus current cycle).
        slack: u64,
    },
}

impl EventKind {
    /// Stable `"kind"` tag for this variant.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::LoopDetected { .. } => "loop_detected",
            EventKind::NbltHit { .. } => "nblt_hit",
            EventKind::NbltInsert { .. } => "nblt_insert",
            EventKind::BufferingStarted { .. } => "buffering_started",
            EventKind::BufferingRevoked { .. } => "buffering_revoked",
            EventKind::CodeReuseEntered { .. } => "code_reuse_entered",
            EventKind::CodeReuseExited { .. } => "code_reuse_exited",
            EventKind::GateOn => "gate_on",
            EventKind::GateOff { .. } => "gate_off",
            EventKind::PipelineSample { .. } => "pipeline_sample",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::BranchMispredict { .. } => "branch_mispredict",
            EventKind::Resumed { .. } => "resumed",
            EventKind::StageNanos { .. } => "stage_nanos",
            EventKind::Epoch { .. } => "epoch",
            EventKind::JobQueued { .. } => "job_queued",
            EventKind::JobLeased { .. } => "job_leased",
            EventKind::JobCompleted { .. } => "job_completed",
            EventKind::JobRequeued { .. } => "job_requeued",
            EventKind::JobFailed { .. } => "job_failed",
            EventKind::PolicySelected { .. } => "policy_selected",
            EventKind::SlackComputed { .. } => "slack_computed",
        }
    }
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> JsonValue {
        let mut pairs: Vec<(&'static str, JsonValue)> = vec![
            ("cycle", JsonValue::UInt(self.cycle)),
            ("kind", JsonValue::Str(self.kind.tag().to_string())),
        ];
        match &self.kind {
            EventKind::LoopDetected { head, tail, size } => {
                pairs.push(("head", JsonValue::UInt(*head)));
                pairs.push(("tail", JsonValue::UInt(*tail)));
                pairs.push(("size", JsonValue::UInt(*size)));
            }
            EventKind::NbltHit { tail } | EventKind::NbltInsert { tail } => {
                pairs.push(("tail", JsonValue::UInt(*tail)));
            }
            EventKind::BufferingStarted { head, tail }
            | EventKind::CodeReuseEntered { head, tail } => {
                pairs.push(("head", JsonValue::UInt(*head)));
                pairs.push(("tail", JsonValue::UInt(*tail)));
            }
            EventKind::BufferingRevoked { reason, registered } => {
                pairs.push(("reason", JsonValue::Str(reason.as_str().to_string())));
                pairs.push(("registered", JsonValue::Bool(*registered)));
            }
            EventKind::CodeReuseExited { reused_insts } => {
                pairs.push(("reused_insts", JsonValue::UInt(*reused_insts)));
            }
            EventKind::GateOn => {}
            EventKind::GateOff { span, reason } => {
                pairs.push(("span", JsonValue::UInt(*span)));
                pairs.push(("reason", JsonValue::Str(reason.as_str().to_string())));
            }
            EventKind::PipelineSample {
                fetched,
                dispatched,
                issued,
                committed,
                iq_occupancy,
                rob_occupancy,
            } => {
                pairs.push(("fetched", JsonValue::UInt(*fetched)));
                pairs.push(("dispatched", JsonValue::UInt(*dispatched)));
                pairs.push(("issued", JsonValue::UInt(*issued)));
                pairs.push(("committed", JsonValue::UInt(*committed)));
                pairs.push(("iq_occupancy", JsonValue::UInt(*iq_occupancy)));
                pairs.push(("rob_occupancy", JsonValue::UInt(*rob_occupancy)));
            }
            EventKind::CacheMiss { level, addr, latency } => {
                pairs.push(("level", JsonValue::Str(level.as_str().to_string())));
                pairs.push(("addr", JsonValue::UInt(*addr)));
                pairs.push(("latency", JsonValue::UInt(*latency)));
            }
            EventKind::BranchMispredict { pc, actual_next } => {
                pairs.push(("pc", JsonValue::UInt(*pc)));
                pairs.push(("actual_next", JsonValue::UInt(*actual_next)));
            }
            EventKind::Resumed { retired, warmed } => {
                pairs.push(("retired", JsonValue::UInt(*retired)));
                pairs.push(("warmed", JsonValue::UInt(*warmed)));
            }
            EventKind::StageNanos {
                fetch,
                decode,
                dispatch,
                execute,
                issue,
                writeback,
                commit,
                accounting,
            } => {
                pairs.push(("fetch", JsonValue::UInt(*fetch)));
                pairs.push(("decode", JsonValue::UInt(*decode)));
                pairs.push(("dispatch", JsonValue::UInt(*dispatch)));
                pairs.push(("execute", JsonValue::UInt(*execute)));
                pairs.push(("issue", JsonValue::UInt(*issue)));
                pairs.push(("writeback", JsonValue::UInt(*writeback)));
                pairs.push(("commit", JsonValue::UInt(*commit)));
                pairs.push(("accounting", JsonValue::UInt(*accounting)));
            }
            EventKind::Epoch { index, start_cycle, cycles, committed, gated, reused } => {
                pairs.push(("index", JsonValue::UInt(*index)));
                pairs.push(("start_cycle", JsonValue::UInt(*start_cycle)));
                pairs.push(("cycles", JsonValue::UInt(*cycles)));
                pairs.push(("committed", JsonValue::UInt(*committed)));
                pairs.push(("gated", JsonValue::UInt(*gated)));
                pairs.push(("reused", JsonValue::UInt(*reused)));
            }
            EventKind::JobQueued { job, sweep } => {
                pairs.push(("job", JsonValue::UInt(*job)));
                pairs.push(("sweep", JsonValue::UInt(*sweep)));
            }
            EventKind::JobLeased { job, worker, attempt } => {
                pairs.push(("job", JsonValue::UInt(*job)));
                pairs.push(("worker", JsonValue::UInt(*worker)));
                pairs.push(("attempt", JsonValue::UInt(*attempt)));
            }
            EventKind::JobCompleted { job, wall_nanos } => {
                pairs.push(("job", JsonValue::UInt(*job)));
                pairs.push(("wall_nanos", JsonValue::UInt(*wall_nanos)));
            }
            EventKind::JobRequeued { job, attempts } | EventKind::JobFailed { job, attempts } => {
                pairs.push(("job", JsonValue::UInt(*job)));
                pairs.push(("attempts", JsonValue::UInt(*attempts)));
            }
            EventKind::PolicySelected { policy, seq, slack } => {
                pairs.push(("policy", JsonValue::Str(policy.clone())));
                pairs.push(("seq", JsonValue::UInt(*seq)));
                pairs.push(("slack", JsonValue::UInt(*slack)));
            }
            EventKind::SlackComputed { seq, pred_ready, slack } => {
                pairs.push(("seq", JsonValue::UInt(*seq)));
                pairs.push(("pred_ready", JsonValue::UInt(*pred_ready)));
                pairs.push(("slack", JsonValue::UInt(*slack)));
            }
        }
        JsonValue::obj(pairs)
    }
}

impl TraceEvent {
    /// Reconstructs an event from a parsed JSON object; `None` on missing or
    /// mistyped fields.
    pub fn from_json(value: &JsonValue) -> Option<TraceEvent> {
        let cycle = value.get("cycle")?.as_u64()?;
        let u = |key: &str| value.get(key).and_then(JsonValue::as_u64);
        let kind = match value.get("kind")?.as_str()? {
            "loop_detected" => {
                EventKind::LoopDetected { head: u("head")?, tail: u("tail")?, size: u("size")? }
            }
            "nblt_hit" => EventKind::NbltHit { tail: u("tail")? },
            "nblt_insert" => EventKind::NbltInsert { tail: u("tail")? },
            "buffering_started" => {
                EventKind::BufferingStarted { head: u("head")?, tail: u("tail")? }
            }
            "buffering_revoked" => EventKind::BufferingRevoked {
                reason: RevokeReason::from_str(value.get("reason")?.as_str()?)?,
                registered: value.get("registered")?.as_bool()?,
            },
            "code_reuse_entered" => {
                EventKind::CodeReuseEntered { head: u("head")?, tail: u("tail")? }
            }
            "code_reuse_exited" => EventKind::CodeReuseExited { reused_insts: u("reused_insts")? },
            "gate_on" => EventKind::GateOn,
            "gate_off" => EventKind::GateOff {
                span: u("span")?,
                reason: GateEndReason::from_str(value.get("reason")?.as_str()?)?,
            },
            "pipeline_sample" => EventKind::PipelineSample {
                fetched: u("fetched")?,
                dispatched: u("dispatched")?,
                issued: u("issued")?,
                committed: u("committed")?,
                iq_occupancy: u("iq_occupancy")?,
                rob_occupancy: u("rob_occupancy")?,
            },
            "cache_miss" => EventKind::CacheMiss {
                level: CacheLevel::from_str(value.get("level")?.as_str()?)?,
                addr: u("addr")?,
                latency: u("latency")?,
            },
            "branch_mispredict" => {
                EventKind::BranchMispredict { pc: u("pc")?, actual_next: u("actual_next")? }
            }
            "resumed" => EventKind::Resumed { retired: u("retired")?, warmed: u("warmed")? },
            "stage_nanos" => EventKind::StageNanos {
                fetch: u("fetch")?,
                decode: u("decode")?,
                dispatch: u("dispatch")?,
                execute: u("execute")?,
                issue: u("issue")?,
                writeback: u("writeback")?,
                commit: u("commit")?,
                accounting: u("accounting")?,
            },
            "epoch" => EventKind::Epoch {
                index: u("index")?,
                start_cycle: u("start_cycle")?,
                cycles: u("cycles")?,
                committed: u("committed")?,
                gated: u("gated")?,
                reused: u("reused")?,
            },
            "job_queued" => EventKind::JobQueued { job: u("job")?, sweep: u("sweep")? },
            "job_leased" => EventKind::JobLeased {
                job: u("job")?,
                worker: u("worker")?,
                attempt: u("attempt")?,
            },
            "job_completed" => {
                EventKind::JobCompleted { job: u("job")?, wall_nanos: u("wall_nanos")? }
            }
            "job_requeued" => EventKind::JobRequeued { job: u("job")?, attempts: u("attempts")? },
            "job_failed" => EventKind::JobFailed { job: u("job")?, attempts: u("attempts")? },
            "policy_selected" => EventKind::PolicySelected {
                policy: value.get("policy")?.as_str()?.to_string(),
                seq: u("seq")?,
                slack: u("slack")?,
            },
            "slack_computed" => EventKind::SlackComputed {
                seq: u("seq")?,
                pred_ready: u("pred_ready")?,
                slack: u("slack")?,
            },
            _ => return None,
        };
        Some(TraceEvent { cycle, kind })
    }

    /// Every variant once, with distinctive field values — shared by the
    /// round-trip tests here and the JSONL tests in `sink`.
    #[doc(hidden)]
    pub fn examples() -> Vec<TraceEvent> {
        use EventKind::*;
        vec![
            TraceEvent::new(10, LoopDetected { head: 0x100, tail: 0x13c, size: 16 }),
            TraceEvent::new(11, NbltHit { tail: 0x13c }),
            TraceEvent::new(12, NbltInsert { tail: 0x2c0 }),
            TraceEvent::new(20, BufferingStarted { head: 0x100, tail: 0x13c }),
            TraceEvent::new(
                25,
                BufferingRevoked { reason: RevokeReason::InnerLoop, registered: true },
            ),
            TraceEvent::new(
                26,
                BufferingRevoked { reason: RevokeReason::QueueFull, registered: false },
            ),
            TraceEvent::new(
                27,
                BufferingRevoked { reason: RevokeReason::LoopExit, registered: true },
            ),
            TraceEvent::new(
                28,
                BufferingRevoked { reason: RevokeReason::UnpairedReturn, registered: false },
            ),
            TraceEvent::new(
                29,
                BufferingRevoked { reason: RevokeReason::Recovery, registered: true },
            ),
            TraceEvent::new(40, CodeReuseEntered { head: 0x100, tail: 0x13c }),
            TraceEvent::new(90, CodeReuseExited { reused_insts: 7 }),
            TraceEvent::new(41, GateOn),
            TraceEvent::new(91, GateOff { span: 50, reason: GateEndReason::Recovery }),
            TraceEvent::new(92, GateOff { span: 1, reason: GateEndReason::Drained }),
            TraceEvent::new(93, GateOff { span: 2, reason: GateEndReason::RunEnd }),
            TraceEvent::new(
                100,
                PipelineSample {
                    fetched: 4,
                    dispatched: 3,
                    issued: 2,
                    committed: 1,
                    iq_occupancy: 12,
                    rob_occupancy: 31,
                },
            ),
            TraceEvent::new(
                110,
                CacheMiss { level: CacheLevel::L1I, addr: 0xdead_beef, latency: 12 },
            ),
            TraceEvent::new(111, CacheMiss { level: CacheLevel::L1D, addr: 0x40, latency: 6 }),
            TraceEvent::new(
                112,
                CacheMiss { level: CacheLevel::L2, addr: u64::MAX - 1, latency: 120 },
            ),
            TraceEvent::new(120, BranchMispredict { pc: 0x13c, actual_next: 0x140 }),
            TraceEvent::new(0, Resumed { retired: 1_000_000, warmed: 2_000 }),
            TraceEvent::new(
                160,
                StageNanos {
                    fetch: 120,
                    decode: 35,
                    dispatch: 400,
                    execute: 180,
                    issue: 310,
                    writeback: 90,
                    commit: 60,
                    accounting: 45,
                },
            ),
            TraceEvent::new(
                10_000,
                Epoch {
                    index: 0,
                    start_cycle: 0,
                    cycles: 10_000,
                    committed: 8_123,
                    gated: 4_000,
                    reused: 3_900,
                },
            ),
            TraceEvent::new(1, JobQueued { job: 17, sweep: 3 }),
            TraceEvent::new(2, JobLeased { job: 17, worker: 2, attempt: 1 }),
            TraceEvent::new(3, JobCompleted { job: 17, wall_nanos: 5_000_000 }),
            TraceEvent::new(4, JobRequeued { job: 18, attempts: 2 }),
            TraceEvent::new(5, JobFailed { job: 18, attempts: 3 }),
            TraceEvent::new(
                210,
                PolicySelected { policy: "load-delay".to_string(), seq: 96, slack: 4 },
            ),
            TraceEvent::new(205, SlackComputed { seq: 95, pred_ready: 217, slack: 12 }),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn every_variant_round_trips_through_json() {
        let examples = TraceEvent::examples();
        // Ensure the example set actually covers every variant tag.
        let tags: std::collections::BTreeSet<&str> =
            examples.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags.len(), 22, "examples must cover all 22 variants");
        for event in examples {
            let line = event.to_json().to_compact();
            let back = TraceEvent::from_json(&parse(&line).expect("parse")).expect("from_json");
            assert_eq!(back, event, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn from_json_rejects_unknown_and_incomplete() {
        assert!(TraceEvent::from_json(&parse(r#"{"cycle":1,"kind":"bogus"}"#).unwrap()).is_none());
        assert!(TraceEvent::from_json(&parse(r#"{"kind":"gate_on"}"#).unwrap()).is_none());
        assert!(
            TraceEvent::from_json(&parse(r#"{"cycle":1,"kind":"nblt_hit"}"#).unwrap()).is_none(),
            "missing tail field must be rejected"
        );
    }

    #[test]
    fn reason_tags_are_stable() {
        assert_eq!(RevokeReason::QueueFull.as_str(), "queue_full");
        assert_eq!(GateEndReason::Drained.as_str(), "drained");
        assert_eq!(CacheLevel::L1I.as_str(), "l1i");
    }
}
