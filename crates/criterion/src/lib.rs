//! # riq-criterion — an offline, drop-in subset of [Criterion.rs]
//!
//! The workspace's benches were written against the real `criterion`
//! crate, which cannot be fetched in this offline build environment. This
//! crate implements the API subset those benches use — [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size`/`throughput`/`bench_function`/
//! `finish`, [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with simple
//! wall-clock measurement and plain-text reporting.
//!
//! Statistics are deliberately simple: after one warm-up iteration, each
//! benchmark runs `sample_size` timed iterations and reports min / mean /
//! max, plus elements-per-second when a [`Throughput`] was declared.
//!
//! [Criterion.rs]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver, handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 10, throughput: None }
    }
}

/// Declared per-iteration workload, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing sample-count and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration workload for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One warm-up pass, unmeasured.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let (min, mean, max) = summarize(&b.samples);
        print!(
            "  {}/{id:<34} min {} mean {} max {}",
            self.name,
            fmt_dur(min),
            fmt_dur(mean),
            fmt_dur(max)
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                print!("  ({:.3} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6);
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                print!("  ({:.3} MiB/s)", n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0));
            }
            _ => {}
        }
        println!();
        self
    }

    /// Ends the group (accepted for source compatibility).
    pub fn finish(&mut self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures one sample: the wall-clock time of a single `f()` call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        drop(out);
    }
}

fn summarize(samples: &[Duration]) -> (Duration, Duration, Duration) {
    if samples.is_empty() {
        return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    }
    let min = *samples.iter().min().expect("nonempty");
    let max = *samples.iter().max().expect("nonempty");
    let total: Duration = samples.iter().sum();
    let mean = total / u32::try_from(samples.len()).unwrap_or(1);
    (min, mean, max)
}

fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Defines a function running each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main()` for a bench binary (extra CLI args from `cargo bench`
/// are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_pipeline_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        g.bench_function("counting", |b| b.iter(|| count += 1));
        g.finish();
        assert_eq!(count, 4, "one warmup + three samples");
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_dur(Duration::from_secs(2)).ends_with('s'));
        assert!(fmt_dur(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_micros(7)).ends_with("µs"));
    }
}
