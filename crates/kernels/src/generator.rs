//! Seeded random-workload generator.
//!
//! Produces arbitrary-but-valid loop kernels for stress and fuzz testing
//! beyond the fixed Table 2 suite: random statement mixes, nesting,
//! procedure calls, and trip counts, deterministically from a seed (the
//! same seed always yields the same kernel, so failures are reproducible
//! by quoting one integer).

use crate::codegen::GUARD_ELEMS;
use crate::ir::{BinOp, Expr, InnerLoop, Kernel, Stmt};

/// Bounds for [`random_kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorParams {
    /// Maximum arrays (2..=8).
    pub max_arrays: u32,
    /// Maximum loop nests.
    pub max_nests: u32,
    /// Maximum inner loops per nest.
    pub max_inners: u32,
    /// Maximum statements per inner loop.
    pub max_stmts: u32,
    /// Maximum inner trip count.
    pub max_trip: u32,
    /// Maximum outer trip count.
    pub max_outer: u32,
    /// Whether loops may call a generated leaf procedure.
    pub allow_calls: bool,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            max_arrays: 6,
            max_nests: 2,
            max_inners: 3,
            max_stmts: 8,
            max_trip: 48,
            max_outer: 6,
            allow_calls: true,
        }
    }
}

/// A tiny deterministic PRNG (xorshift64*), good enough for workload
/// shuffling and dependency-free.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    /// Uniform in `[0, n)`; `n` must be non-zero.
    fn below(&mut self, n: u32) -> u32 {
        (self.next() % u64::from(n)) as u32
    }
    /// Uniform in `[lo, hi]`.
    fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below(hi - lo + 1)
    }
    fn chance(&mut self, percent: u32) -> bool {
        self.below(100) < percent
    }
}

/// Generates a random valid kernel from a seed.
///
/// The result always passes [`Kernel::validate`] and compiles; constants
/// are drawn from a fixed pool of four values so the code generator's
/// constant registers can never overflow.
///
/// # Examples
///
/// ```
/// use riq_kernels::{compile, random_kernel, GeneratorParams};
/// let k = random_kernel(42, GeneratorParams::default());
/// assert!(k.validate().is_ok());
/// assert!(compile(&k).is_ok());
/// // Deterministic: same seed, same kernel.
/// assert_eq!(k, random_kernel(42, GeneratorParams::default()));
/// ```
#[must_use]
pub fn random_kernel(seed: u64, params: GeneratorParams) -> Kernel {
    let mut rng = Rng::new(seed);
    let mut k = Kernel::new(format!("rand{seed}"), "generated");
    let max_trip = params.max_trip.clamp(2, 2000);
    let n_arrays = rng.range(2, params.max_arrays.clamp(2, 8));
    for i in 0..n_arrays {
        k.array(format!("g{i}"), max_trip + 2 * GUARD_ELEMS);
    }
    // A fixed literal pool keeps the codegen constant registers bounded.
    const LITS: [f64; 4] = [0.25, 0.5, 0.75, 1.5];
    let mut lit = {
        let mut r = Rng::new(seed ^ 0x9e37_79b9);
        move || Expr::Lit(LITS[r.below(4) as usize])
    };

    let proc = params.allow_calls.then(|| {
        k.proc(
            "leaf",
            vec![Stmt::new(
                0,
                0,
                Expr::bin(BinOp::Add, Expr::bin(BinOp::Mul, Expr::a(0, 0), lit()), lit()),
            )],
        )
    });

    let n_nests = rng.range(1, params.max_nests.max(1));
    for _ in 0..n_nests {
        let outer = rng.range(1, params.max_outer.max(1));
        let n_inners = rng.range(1, params.max_inners.max(1));
        let mut inners = Vec::new();
        for _ in 0..n_inners {
            let trip = rng.range(2, max_trip);
            let n_stmts = rng.range(1, params.max_stmts.max(1));
            let mut stmts = Vec::new();
            for _ in 0..n_stmts {
                let target = rng.below(n_arrays) as usize;
                let toff = rng.range(0, 2) as i32 - 1;
                let mut rhs = Expr::a(rng.below(n_arrays) as usize, rng.range(0, 2) as i32 - 1);
                for _ in 0..rng.below(3) {
                    let op = match rng.below(3) {
                        0 => BinOp::Add,
                        1 => BinOp::Sub,
                        _ => BinOp::Mul,
                    };
                    let operand = if rng.chance(40) {
                        lit()
                    } else {
                        Expr::a(rng.below(n_arrays) as usize, rng.range(0, 2) as i32 - 1)
                    };
                    rhs = Expr::bin(op, rhs, operand);
                }
                stmts.push(Stmt::new(target, toff, rhs));
            }
            let mut inner = InnerLoop::new(trip, stmts);
            if let Some(p) = proc {
                if rng.chance(25) {
                    inner = inner.with_call(p);
                }
            }
            inners.push(inner);
        }
        k.nest(outer, inners);
    }
    debug_assert!(k.validate().is_ok(), "generator produced an invalid kernel");
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;

    #[test]
    fn deterministic_per_seed() {
        let p = GeneratorParams::default();
        assert_eq!(random_kernel(7, p), random_kernel(7, p));
        assert_ne!(random_kernel(7, p), random_kernel(8, p));
    }

    #[test]
    fn always_valid_and_compilable() {
        for seed in 0..200 {
            let k = random_kernel(seed, GeneratorParams::default());
            assert!(k.validate().is_ok(), "seed {seed}");
            assert!(compile(&k).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn respects_bounds() {
        let p = GeneratorParams {
            max_arrays: 3,
            max_nests: 1,
            max_inners: 1,
            max_stmts: 2,
            max_trip: 8,
            max_outer: 2,
            allow_calls: false,
        };
        for seed in 0..50 {
            let k = random_kernel(seed, p);
            assert!(k.arrays.len() <= 3, "seed {seed}");
            assert_eq!(k.nests.len(), 1);
            assert!(k.nests[0].inners.len() == 1);
            assert!(k.nests[0].inners[0].stmts.len() <= 2);
            assert!(k.nests[0].inners[0].trip <= 8);
            assert!(k.nests[0].inners[0].call.is_none());
        }
    }

    #[test]
    fn calls_appear_when_allowed() {
        let p = GeneratorParams { allow_calls: true, ..GeneratorParams::default() };
        let any_call = (0..100).any(|seed| {
            random_kernel(seed, p).nests.iter().any(|n| n.inners.iter().any(|l| l.call.is_some()))
        });
        assert!(any_call, "25% call probability must fire within 100 seeds");
    }
}
