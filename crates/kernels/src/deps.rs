//! Data-dependence analysis for innermost loops.
//!
//! For stride-1 affine accesses `A[i + c]` the dependence test is exact:
//! a write at offset `cw` and another access at offset `c2` touch the same
//! location in iterations separated by `cw - c2`. The sign of that
//! distance (plus program order for distance 0) orients a precedence edge
//! between the statements; statements in a dependence cycle must stay in
//! one loop, which is exactly what the Kennedy–McKinley distribution pass
//! in [`crate::distribute`] enforces via strongly connected components.

use crate::ir::{InnerLoop, Stmt};

/// Why two statements are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write.
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
}

/// A precedence edge `from → to`: in any legal distribution, the loop
/// containing `from` must not run after the loop containing `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source statement index.
    pub from: usize,
    /// Sink statement index.
    pub to: usize,
    /// Dependence kind.
    pub kind: DepKind,
    /// Iteration distance (0 = loop-independent).
    pub distance: i32,
}

/// Computes all precedence edges between the statements of `stmts`.
#[must_use]
pub fn dependence_edges(stmts: &[Stmt]) -> Vec<DepEdge> {
    let mut edges = Vec::new();
    for (i, si) in stmts.iter().enumerate() {
        for (j, sj) in stmts.iter().enumerate() {
            if i == j {
                continue;
            }
            // Write of si vs reads of sj (flow/anti).
            for (a, cr) in sj.reads() {
                if a == si.target {
                    push_edge(&mut edges, i, j, si.offset - cr, i < j, DepKind::Flow);
                }
            }
            // Write-write, counted once per unordered pair.
            if i < j && si.target == sj.target {
                push_edge(&mut edges, i, j, si.offset - sj.offset, true, DepKind::Output);
            }
        }
    }
    edges
}

/// Orients one (writer `w`, other access `o`) pair with location distance
/// `d = cw - co` into a precedence edge, if any.
fn push_edge(edges: &mut Vec<DepEdge>, w: usize, o: usize, d: i32, w_first: bool, kind: DepKind) {
    let edge = if d > 0 {
        // The other access in a *later* iteration touches what the writer
        // wrote: writer's loop must come first.
        Some(DepEdge { from: w, to: o, kind, distance: d })
    } else if d < 0 {
        // The other access in an *earlier* iteration must happen before
        // the writer overwrites the location (anti direction).
        let kind = if kind == DepKind::Flow { DepKind::Anti } else { kind };
        Some(DepEdge { from: o, to: w, kind, distance: -d })
    } else {
        // Same iteration: program order decides.
        let (from, to) = if w_first { (w, o) } else { (o, w) };
        Some(DepEdge { from, to, kind, distance: 0 })
    };
    if let Some(e) = edge {
        if !edges.contains(&e) {
            edges.push(e);
        }
    }
}

/// Strongly connected components of the statement dependence graph, in a
/// topological order of the condensation (sources first). Within the
/// output, each component lists statement indices in program order.
#[must_use]
pub fn dependence_sccs(loop_: &InnerLoop) -> Vec<Vec<usize>> {
    let n = loop_.stmts.len();
    let edges = dependence_edges(&loop_.stmts);
    let mut adj = vec![Vec::new(); n];
    for e in &edges {
        adj[e.from].push(e.to);
    }
    let sccs = tarjan(n, &adj);
    // Tarjan emits SCCs in reverse topological order of the condensation.
    let mut ordered: Vec<Vec<usize>> = sccs.into_iter().rev().collect();
    for c in &mut ordered {
        c.sort_unstable();
    }
    // Stabilize ties: sort components by their smallest statement index
    // wherever the partial order allows (simple stable pass: the reverse
    // Tarjan order is already topological; we only normalize adjacent
    // independent components).
    stabilize(&mut ordered, &edges);
    ordered
}

fn stabilize(components: &mut [Vec<usize>], edges: &[DepEdge]) {
    let depends =
        |a: &[usize], b: &[usize]| edges.iter().any(|e| a.contains(&e.from) && b.contains(&e.to));
    // Bubble adjacent independent components into program order.
    let n = components.len();
    for _ in 0..n {
        for i in 0..n.saturating_sub(1) {
            let (l, r) = (i, i + 1);
            if components[l][0] > components[r][0] && !depends(&components[l], &components[r]) {
                components.swap(l, r);
            }
        }
    }
}

/// Iterative Tarjan SCC over a small graph.
fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: i32,
        lowlink: i32,
        on_stack: bool,
    }
    let mut state = vec![NodeState { index: -1, lowlink: -1, on_stack: false }; n];
    let mut stack = Vec::new();
    let mut next_index = 0;
    let mut out = Vec::new();

    // Explicit DFS stack: (node, edge cursor).
    for root in 0..n {
        if state[root].index != -1 {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, cursor)) = dfs.last() {
            if cursor == 0 {
                state[v].index = next_index;
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            if cursor < adj[v].len() {
                dfs.last_mut().expect("non-empty").1 += 1;
                let w = adj[v][cursor];
                if state[w].index == -1 {
                    dfs.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(low);
                }
                if state[v].lowlink == state[v].index {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack non-empty inside SCC pop");
                        state[w].on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Expr, InnerLoop};

    fn st(target: usize, off: i32, reads: &[(usize, i32)]) -> Stmt {
        let mut rhs = Expr::Lit(1.0);
        for &(a, c) in reads {
            rhs = Expr::bin(BinOp::Add, rhs, Expr::a(a, c));
        }
        Stmt::new(target, off, rhs)
    }

    #[test]
    fn forward_flow_edge() {
        // S0: A[i] = ...; S1: B[i] = A[i-1] → S0 writes what S1 reads one
        // iteration later: edge S0→S1, distance 1.
        let stmts = vec![st(0, 0, &[]), st(1, 0, &[(0, -1)])];
        let edges = dependence_edges(&stmts);
        assert_eq!(edges, vec![DepEdge { from: 0, to: 1, kind: DepKind::Flow, distance: 1 }]);
    }

    #[test]
    fn backward_anti_edge() {
        // S0: A[i] = ...; S1: B[i] = A[i+1] → S1 reads the location S0
        // writes in a later iteration: S1 must stay before S0.
        let stmts = vec![st(0, 0, &[]), st(1, 0, &[(0, 1)])];
        let edges = dependence_edges(&stmts);
        assert_eq!(edges, vec![DepEdge { from: 1, to: 0, kind: DepKind::Anti, distance: 1 }]);
    }

    #[test]
    fn loop_independent_edge_follows_program_order() {
        let stmts = vec![st(0, 0, &[]), st(1, 0, &[(0, 0)])];
        let edges = dependence_edges(&stmts);
        assert_eq!(edges, vec![DepEdge { from: 0, to: 1, kind: DepKind::Flow, distance: 0 }]);
    }

    #[test]
    fn independent_statements_have_no_edges() {
        let stmts = vec![st(0, 0, &[(1, 0)]), st(2, 0, &[(3, 0)])];
        assert!(dependence_edges(&stmts).is_empty());
    }

    #[test]
    fn recurrence_forms_a_cycle() {
        // S0: A[i] = B[i-1]; S1: B[i] = A[i-1] → mutual carried flow.
        let stmts = vec![st(0, 0, &[(1, -1)]), st(1, 0, &[(0, -1)])];
        let l = InnerLoop::new(10, stmts);
        let sccs = dependence_sccs(&l);
        assert_eq!(sccs, vec![vec![0, 1]], "cycle collapses into one component");
    }

    #[test]
    fn chain_distributes_in_order() {
        // S0 → S1 → S2 via distance-1 flow deps.
        let stmts = vec![st(0, 0, &[]), st(1, 0, &[(0, -1)]), st(2, 0, &[(1, -1)])];
        let l = InnerLoop::new(10, stmts);
        assert_eq!(dependence_sccs(&l), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn independent_components_keep_program_order() {
        let stmts = vec![st(0, 0, &[(4, 0)]), st(1, 0, &[(5, 0)]), st(2, 0, &[(6, 0)])];
        let l = InnerLoop::new(10, stmts);
        assert_eq!(dependence_sccs(&l), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn output_dependence_orders_writers() {
        let stmts = vec![st(0, 0, &[]), st(0, 1, &[])];
        let edges = dependence_edges(&stmts);
        // S0 writes A[i], S1 writes A[i+1]: S1's location is rewritten by
        // S0 one iteration later -> S1 before S0... distance = 0 - 1 = -1,
        // so the edge is S1 -> S0.
        assert!(edges.iter().any(|e| e.from == 1 && e.to == 0 && e.kind == DepKind::Output));
    }

    #[test]
    fn self_recurrence_is_single_component() {
        // A[i] = A[i-1] + 1: self-edge territory; component of one.
        let stmts = vec![st(0, 0, &[(0, -1)])];
        let l = InnerLoop::new(10, stmts);
        assert_eq!(dependence_sccs(&l), vec![vec![0]]);
    }
}
