//! Code generation: loop-nest IR → riq machine code.
//!
//! A deliberately simple, predictable compiler — the point is that the
//! *shape* of the emitted inner loops (body size, single backward branch
//! at the bottom, pointer-strength-reduced array accesses, one `jal` per
//! modeled call) matches what the paper's gcc-compiled Fortran kernels
//! look like to the loop detector.
//!
//! Register convention:
//!
//! | registers  | use                                             |
//! |------------|-------------------------------------------------|
//! | `$r8–$r15` | array base registers (guard-adjusted, set once)  |
//! | `$r16–$r23`| moving array pointers of the current inner loop |
//! | `$r24`     | inner-loop counter                              |
//! | `$r25`     | outer-loop counter                              |
//! | `$r4`      | procedure pointer argument                      |
//! | `$f0–$f7`  | expression evaluation stack                     |
//! | `$f16–$f19`| procedure-local evaluation stack                |
//! | `$f24–$f31`| pooled literal constants                        |

use crate::ir::{Expr, InnerLoop, Kernel, Procedure, Stmt};
use riq_asm::{BuildProgramError, Program, ProgramBuilder};
use riq_isa::{AluImmOp, AluOp, FpAluOp, FpReg, Inst, IntReg};
use std::error::Error;
use std::fmt;

/// Guard band, in elements, on both sides of every array (so negative and
/// positive reference offsets stay in bounds).
pub const GUARD_ELEMS: u32 = 8;

const BASE_REG0: u8 = 8;
const PTR_REG0: u8 = 16;
const INNER_CTR: u8 = 24;
const OUTER_CTR: u8 = 25;
const PROC_PTR: u8 = 4;
const CONST_REG0: u8 = 24; // $f24..$f31
const PROC_STACK0: u8 = 16; // $f16..

/// Error producing machine code from a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileKernelError {
    /// The kernel failed semantic validation.
    Invalid(String),
    /// More than 8 arrays in one kernel (base-register file exhausted).
    TooManyArrays(usize),
    /// More than 8 arrays referenced by a single inner loop.
    TooManyLoopArrays(usize),
    /// More than 8 distinct literal constants.
    TooManyConstants(usize),
    /// An expression needs more than the 8 evaluation registers.
    ExpressionTooDeep(usize),
    /// Trip count does not fit the immediate loader.
    TripTooLarge(u32),
    /// Label/branch resolution failed while building the image.
    Build(String),
}

impl fmt::Display for CompileKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileKernelError::Invalid(m) => write!(f, "invalid kernel: {m}"),
            CompileKernelError::TooManyArrays(n) => write!(f, "kernel uses {n} arrays, max 8"),
            CompileKernelError::TooManyLoopArrays(n) => {
                write!(f, "inner loop touches {n} arrays, max 8")
            }
            CompileKernelError::TooManyConstants(n) => {
                write!(f, "kernel uses {n} distinct constants, max 8")
            }
            CompileKernelError::ExpressionTooDeep(d) => {
                write!(f, "expression needs depth {d}, max 8")
            }
            CompileKernelError::TripTooLarge(t) => write!(f, "trip count {t} exceeds 32767"),
            CompileKernelError::Build(m) => write!(f, "program build failed: {m}"),
        }
    }
}

impl Error for CompileKernelError {}

impl From<BuildProgramError> for CompileKernelError {
    fn from(e: BuildProgramError) -> Self {
        CompileKernelError::Build(e.to_string())
    }
}

/// Value every array element is initialized to by the generated init loops.
pub const INIT_VALUE: f64 = 0.5;

struct Codegen<'k> {
    kernel: &'k Kernel,
    b: ProgramBuilder,
    consts: Vec<u64>, // f64 bit patterns, index = const register offset
    label_seq: u32,
}

impl<'k> Codegen<'k> {
    fn new(kernel: &'k Kernel) -> Codegen<'k> {
        Codegen { kernel, b: ProgramBuilder::new(), consts: Vec::new(), label_seq: 0 }
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.label_seq += 1;
        format!("{}_{}_{}", self.kernel.name, stem, self.label_seq)
    }

    fn const_reg(&mut self, v: f64) -> Result<FpReg, CompileKernelError> {
        let bits = v.to_bits();
        let idx = match self.consts.iter().position(|&b| b == bits) {
            Some(i) => i,
            None => {
                self.consts.push(bits);
                self.consts.len() - 1
            }
        };
        if idx >= 8 {
            return Err(CompileKernelError::TooManyConstants(self.consts.len()));
        }
        Ok(FpReg::new(CONST_REG0 + idx as u8))
    }

    fn base_reg(array: usize) -> IntReg {
        IntReg::new(BASE_REG0 + array as u8)
    }

    fn addi(&mut self, rt: IntReg, rs: IntReg, imm: i16) {
        self.b.push(Inst::AluImm { op: AluImmOp::Addi, rt, rs, imm });
    }

    fn move_reg(&mut self, rd: IntReg, rs: IntReg) {
        self.b.push(Inst::Alu { op: AluOp::Or, rd, rs, rt: IntReg::ZERO });
    }

    fn li(&mut self, rt: IntReg, v: u32) -> Result<(), CompileKernelError> {
        let imm = i16::try_from(v).map_err(|_| CompileKernelError::TripTooLarge(v))?;
        self.addi(rt, IntReg::ZERO, imm);
        Ok(())
    }

    /// Evaluates `expr` into `$f{depth}` using `ptr_of` to map arrays to
    /// their moving-pointer registers.
    fn eval(
        &mut self,
        expr: &Expr,
        depth: u8,
        stack0: u8,
        ptr_of: &dyn Fn(usize) -> IntReg,
    ) -> Result<(), CompileKernelError> {
        if usize::from(depth) >= 8 {
            return Err(CompileKernelError::ExpressionTooDeep(usize::from(depth) + 1));
        }
        let dst = FpReg::new(stack0 + depth);
        match expr {
            Expr::Lit(v) => {
                let c = self.const_reg(*v)?;
                self.b.push(Inst::FpUnary { op: riq_isa::FpUnaryOp::MovD, fd: dst, fs: c });
            }
            Expr::Ref(a, off) => {
                self.b.push(Inst::Ld { ft: dst, base: ptr_of(*a), off: (*off * 8) as i16 });
            }
            Expr::Bin(op, l, r) => {
                self.eval(l, depth, stack0, ptr_of)?;
                // Fold constant / single-ref right operands without an
                // extra stack slot.
                let rhs_reg = match r.as_ref() {
                    Expr::Lit(v) => self.const_reg(*v)?,
                    Expr::Ref(a, off) => {
                        let tmp = FpReg::new(stack0 + depth + 1);
                        self.b.push(Inst::Ld { ft: tmp, base: ptr_of(*a), off: (*off * 8) as i16 });
                        tmp
                    }
                    _ => {
                        self.eval(r, depth + 1, stack0, ptr_of)?;
                        FpReg::new(stack0 + depth + 1)
                    }
                };
                let fop = match op {
                    crate::ir::BinOp::Add => FpAluOp::AddD,
                    crate::ir::BinOp::Sub => FpAluOp::SubD,
                    crate::ir::BinOp::Mul => FpAluOp::MulD,
                    crate::ir::BinOp::Div => FpAluOp::DivD,
                };
                self.b.push(Inst::FpOp { op: fop, fd: dst, fs: dst, ft: rhs_reg });
            }
        }
        Ok(())
    }

    fn emit_stmt(
        &mut self,
        s: &Stmt,
        stack0: u8,
        ptr_of: &dyn Fn(usize) -> IntReg,
    ) -> Result<(), CompileKernelError> {
        self.eval(&s.rhs, 0, stack0, ptr_of)?;
        self.b.push(Inst::Sd {
            ft: FpReg::new(stack0),
            base: ptr_of(s.target),
            off: (s.offset * 8) as i16,
        });
        Ok(())
    }

    fn emit_inner_loop(
        &mut self,
        l: &InnerLoop,
        label_stem: &str,
    ) -> Result<(), CompileKernelError> {
        let arrays = l.arrays();
        if arrays.len() > 8 {
            return Err(CompileKernelError::TooManyLoopArrays(arrays.len()));
        }
        if l.call.is_some() && arrays.is_empty() {
            return Err(CompileKernelError::Invalid(
                "a loop with a procedure call must reference at least one array \
                 (the call receives the first array's moving pointer)"
                    .to_string(),
            ));
        }
        // Pointer setup: one moving pointer per used array.
        for (j, &a) in arrays.iter().enumerate() {
            self.move_reg(IntReg::new(PTR_REG0 + j as u8), Self::base_reg(a));
        }
        let ctr = IntReg::new(INNER_CTR);
        self.li(ctr, l.trip)?;
        let top = self.fresh_label(label_stem);
        self.b.label(top.clone());
        let ptr_of = {
            let arrays = arrays.clone();
            move |a: usize| {
                let j = arrays.iter().position(|&x| x == a).expect("array used in loop");
                IntReg::new(PTR_REG0 + j as u8)
            }
        };
        for s in &l.stmts {
            self.emit_stmt(s, 0, &ptr_of)?;
        }
        if let Some(p) = l.call {
            // The procedure works on the loop's first array at the current
            // iteration: pass its moving pointer.
            self.move_reg(IntReg::new(PROC_PTR), IntReg::new(PTR_REG0));
            self.b.call(proc_label(self.kernel, p));
        }
        let step_bytes = (l.step.max(1) * 8) as i16;
        for j in 0..arrays.len() {
            let ptr = IntReg::new(PTR_REG0 + j as u8);
            self.addi(ptr, ptr, step_bytes);
        }
        self.addi(ctr, ctr, -1);
        self.b.bne(ctr, IntReg::ZERO, top);
        Ok(())
    }

    fn emit_init_loops(&mut self) -> Result<(), CompileKernelError> {
        let init = self.const_reg(INIT_VALUE)?;
        for (a, decl) in self.kernel.arrays.iter().enumerate() {
            let ptr = IntReg::new(PTR_REG0);
            self.move_reg(ptr, Self::base_reg(a));
            let ctr = IntReg::new(INNER_CTR);
            self.li(ctr, decl.len)?;
            let top = self.fresh_label("init");
            self.b.label(top.clone());
            self.b.push(Inst::Sd { ft: init, base: ptr, off: 0 });
            self.addi(ptr, ptr, 8);
            self.addi(ctr, ctr, -1);
            self.b.bne(ctr, IntReg::ZERO, top);
        }
        Ok(())
    }

    fn emit_la(&mut self, rt: IntReg, addr: u32) {
        self.b.push(Inst::Lui { rt, imm: (addr >> 16) as u16 });
        self.b.push(Inst::AluImm { op: AluImmOp::Ori, rt, rs: rt, imm: (addr & 0xffff) as i16 });
    }

    fn emit_procedure(&mut self, p: &Procedure, label: String) -> Result<(), CompileKernelError> {
        self.b.label(label);
        let ptr_of = |_a: usize| IntReg::new(PROC_PTR);
        for s in &p.stmts {
            self.eval(&s.rhs, 0, PROC_STACK0, &ptr_of)?;
            self.b.push(Inst::Sd {
                ft: FpReg::new(PROC_STACK0),
                base: IntReg::new(PROC_PTR),
                off: (s.offset * 8) as i16,
            });
        }
        self.b.push(Inst::Jr { rs: IntReg::RA });
        Ok(())
    }
}

fn proc_label(k: &Kernel, p: usize) -> String {
    format!("{}_proc_{}", k.name, k.procs[p].name)
}

/// Compiles a kernel to an executable [`Program`].
///
/// # Errors
///
/// Returns a [`CompileKernelError`] for kernels exceeding the simple
/// register convention (too many arrays/constants, too-deep expressions)
/// or failing validation.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_kernels::{compile, Expr, InnerLoop, Kernel, Stmt};
/// let mut k = Kernel::new("demo", "synthetic");
/// let a = k.array("a", 64);
/// let b = k.array("b", 64);
/// k.nest(2, vec![InnerLoop::new(32, vec![Stmt::new(a, 0, Expr::a(b, 0))])]);
/// let program = compile(&k)?;
/// assert!(program.text_len() > 10);
/// # Ok(())
/// # }
/// ```
pub fn compile(k: &Kernel) -> Result<Program, CompileKernelError> {
    k.validate().map_err(CompileKernelError::Invalid)?;
    if k.arrays.len() > 8 {
        return Err(CompileKernelError::TooManyArrays(k.arrays.len()));
    }
    let mut cg = Codegen::new(k);

    // Reserve array storage with guard bands; remember base addresses.
    let mut bases = Vec::new();
    for decl in &k.arrays {
        let bytes = (decl.len + 2 * GUARD_ELEMS) * 8;
        let addr = cg.b.reserve_data(format!("{}_{}", k.name, decl.name), bytes);
        bases.push(addr + GUARD_ELEMS * 8);
    }

    // ---- Pre-pass: collect every literal so the constant pool layout is
    // known before any code referencing it is emitted. ----
    cg.const_reg(INIT_VALUE)?;
    for nest in &k.nests {
        for inner in &nest.inners {
            for s in &inner.stmts {
                let mut lits = Vec::new();
                s.rhs.lits(&mut lits);
                for v in lits {
                    cg.const_reg(v)?;
                }
            }
        }
    }
    for p in &k.procs {
        for s in &p.stmts {
            let mut lits = Vec::new();
            s.rhs.lits(&mut lits);
            for v in lits {
                cg.const_reg(v)?;
            }
        }
    }
    let pool_values: Vec<f64> = cg.consts.iter().map(|&b| f64::from_bits(b)).collect();
    let pool_addr = cg.b.data_doubles(format!("{}_consts", k.name), &pool_values);

    // ---- Prologue: array bases and constant registers. ----
    for (a, &base) in bases.iter().enumerate() {
        cg.emit_la(Codegen::base_reg(a), base);
    }
    let tmp = IntReg::new(PTR_REG0);
    cg.emit_la(tmp, pool_addr);
    for i in 0..pool_values.len() {
        cg.b.push(Inst::Ld {
            ft: FpReg::new(CONST_REG0 + i as u8),
            base: tmp,
            off: (i * 8) as i16,
        });
    }

    // ---- Init loops (small, tightly bufferable). ----
    cg.emit_init_loops()?;

    // ---- Loop nests. ----
    for (ni, nest) in k.nests.iter().enumerate() {
        if nest.outer_trip > 1 {
            let octr = IntReg::new(OUTER_CTR);
            cg.li(octr, nest.outer_trip)?;
            let top = cg.fresh_label(&format!("n{ni}_outer"));
            cg.b.label(top.clone());
            for (li, inner) in nest.inners.iter().enumerate() {
                cg.emit_inner_loop(inner, &format!("n{ni}_l{li}"))?;
            }
            cg.addi(octr, octr, -1);
            cg.b.bne(octr, IntReg::ZERO, top);
        } else {
            for (li, inner) in nest.inners.iter().enumerate() {
                cg.emit_inner_loop(inner, &format!("n{ni}_l{li}"))?;
            }
        }
    }
    cg.b.push(Inst::Halt);

    // ---- Procedures. ----
    for (pi, p) in k.procs.iter().enumerate() {
        let label = proc_label(k, pi);
        cg.emit_procedure(p, label)?;
    }

    Ok(cg.b.finish()?)
}

/// Static instruction count of the inner-loop *body* as emitted (loop-head
/// to backward branch inclusive) — what the reuse detector compares with
/// the issue-queue size.
#[must_use]
pub fn inner_loop_span(l: &InnerLoop) -> u32 {
    let mut n = 0u32;
    for s in &l.stmts {
        n += expr_insts(&s.rhs) + 1; // + store
    }
    if l.call.is_some() {
        n += 2; // move $r4 + jal
    }
    n += l.arrays().len() as u32; // pointer increments
    n += 2; // counter decrement + bne
    n
}

fn expr_insts(e: &Expr) -> u32 {
    match e {
        Expr::Lit(_) => 1,
        Expr::Ref(..) => 1,
        Expr::Bin(_, l, r) => {
            let rhs = match r.as_ref() {
                Expr::Lit(_) => 0, // folded into the op
                Expr::Ref(..) => 1,
                _ => expr_insts(r),
            };
            expr_insts(l) + rhs + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Expr, InnerLoop, Kernel, Stmt};
    use riq_emu::Machine;
    use riq_isa::FpReg;

    fn simple_kernel() -> Kernel {
        let mut k = Kernel::new("cgt", "synthetic");
        let a = k.array("a", 32);
        let b = k.array("b", 32);
        k.nest(
            1,
            vec![InnerLoop::new(
                16,
                vec![Stmt::new(a, 0, Expr::bin(BinOp::Add, Expr::a(b, 0), Expr::Lit(1.25)))],
            )],
        );
        k
    }

    #[test]
    fn compiles_and_runs_functionally() {
        let k = simple_kernel();
        let p = compile(&k).unwrap();
        let mut m = Machine::new(&p);
        m.run(1_000_000).unwrap();
        // b initialized to INIT_VALUE; a[i] = b[i] + 1.25 = 1.75.
        let a_base = p.symbol("cgt_a").unwrap() + GUARD_ELEMS * 8;
        let bits = m.memory().load_u64(a_base).unwrap();
        assert_eq!(f64::from_bits(bits), INIT_VALUE + 1.25);
        let bits = m.memory().load_u64(a_base + 15 * 8).unwrap();
        assert_eq!(f64::from_bits(bits), INIT_VALUE + 1.25, "last iteration ran");
    }

    #[test]
    fn negative_offsets_stay_in_guard() {
        let mut k = Kernel::new("cgt2", "synthetic");
        let a = k.array("a", 32);
        let b = k.array("b", 32);
        k.nest(
            1,
            vec![InnerLoop::new(
                16,
                vec![Stmt::new(a, 0, Expr::bin(BinOp::Add, Expr::a(b, -2), Expr::a(b, 2)))],
            )],
        );
        let p = compile(&k).unwrap();
        let mut m = Machine::new(&p);
        m.run(1_000_000).unwrap();
        let a_base = p.symbol("cgt2_a").unwrap() + GUARD_ELEMS * 8;
        let v = f64::from_bits(m.memory().load_u64(a_base + 8 * 8).unwrap());
        assert_eq!(v, 2.0 * INIT_VALUE, "interior element sums two inits");
    }

    #[test]
    fn nested_loops_execute_outer_times() {
        let mut k = Kernel::new("cgt3", "synthetic");
        let a = k.array("a", 16);
        // a[i] = a[i] + 1 executed outer(5) * inner(8) times.
        k.nest(
            5,
            vec![InnerLoop::new(
                8,
                vec![Stmt::new(a, 0, Expr::bin(BinOp::Add, Expr::a(a, 0), Expr::Lit(1.0)))],
            )],
        );
        let p = compile(&k).unwrap();
        let mut m = Machine::new(&p);
        m.run(1_000_000).unwrap();
        let base = p.symbol("cgt3_a").unwrap() + GUARD_ELEMS * 8;
        let v = f64::from_bits(m.memory().load_u64(base).unwrap());
        assert_eq!(v, INIT_VALUE + 5.0);
    }

    #[test]
    fn procedures_execute_per_iteration() {
        let mut k = Kernel::new("cgt4", "synthetic");
        let a = k.array("a", 16);
        let p = k.proc(
            "boost",
            vec![Stmt::new(0, 0, Expr::bin(BinOp::Mul, Expr::a(0, 0), Expr::Lit(2.0)))],
        );
        // The identity statement makes `a` the loop's first array, so the
        // procedure receives `a`'s moving pointer.
        let ident = Stmt::new(a, 0, Expr::a(a, 0));
        k.nest(1, vec![InnerLoop::new(8, vec![ident]).with_call(p)]);
        let prog = compile(&k).unwrap();
        let mut m = Machine::new(&prog);
        m.run(1_000_000).unwrap();
        let base = prog.symbol("cgt4_a").unwrap() + GUARD_ELEMS * 8;
        let v = f64::from_bits(m.memory().load_u64(base + 3 * 8).unwrap());
        assert_eq!(v, INIT_VALUE * 2.0);
    }

    #[test]
    fn span_estimate_matches_emitted_body() {
        let k = simple_kernel();
        let inner = &k.nests[0].inners[0];
        let est = inner_loop_span(inner);
        // Emitted body: l.d + add.d(lit folded) + s.d + 2 ptr incr + ctr + bne = 7.
        assert_eq!(est, 7);
        // Cross-check against the real program: distance between the
        // backward branch and its target.
        let p = compile(&k).unwrap();
        let span = p.iter_insts().find_map(|(_pc, inst)| match inst {
            riq_isa::Inst::Bne { off, .. } if off < -4 => Some((-(off as i32)) as u32),
            _ => None,
        });
        // At least one loop (init loops have span 4 => off -4).
        assert!(span.is_some());
    }

    #[test]
    fn constant_pool_is_register_resident() {
        let k = simple_kernel();
        let p = compile(&k).unwrap();
        let mut m = Machine::new(&p);
        m.run(1_000_000).unwrap();
        // INIT_VALUE was pooled first -> $f24.
        assert_eq!(m.state().fp_reg(FpReg::new(24)), INIT_VALUE);
        assert_eq!(m.state().fp_reg(FpReg::new(25)), 1.25);
    }

    #[test]
    fn too_many_constants_rejected() {
        let mut k = Kernel::new("cgt5", "synthetic");
        let a = k.array("a", 16);
        let stmts: Vec<Stmt> =
            (0..9).map(|i| Stmt::new(a, 0, Expr::Lit(f64::from(i) + 0.125))).collect();
        k.nest(1, vec![InnerLoop::new(4, stmts)]);
        assert!(matches!(compile(&k), Err(CompileKernelError::TooManyConstants(_))));
    }

    #[test]
    fn trip_too_large_rejected() {
        let mut k = Kernel::new("cgt6", "synthetic");
        let a = k.array("a", 40000);
        k.nest(1, vec![InnerLoop::new(40000, vec![Stmt::new(a, 0, Expr::Lit(1.0))])]);
        assert!(matches!(compile(&k), Err(CompileKernelError::TripTooLarge(_))));
    }
}
