//! The eight array-intensive benchmarks of the paper's Table 2.
//!
//! We do not have the original Livermore / Perfect Club / SPEC92 sources,
//! so each kernel here is a synthetic loop nest named after its paper
//! counterpart and *shaped* like it along the axes that matter to the
//! reuse issue queue (see DESIGN.md, substitution table):
//!
//! | kernel  | innermost span (insts) | capturable at IQ |
//! |---------|------------------------|------------------|
//! | aps     | ~15                    | 32+              |
//! | tsf     | ~11                    | 32+              |
//! | wss     | ~14 (+ procedure)      | 32+              |
//! | eflux   | ~44                    | 64+              |
//! | adi     | ~72                    | 128+             |
//! | btrix   | ~90 (dominant loop)    | 128+             |
//! | tomcat  | ~110                   | 128+             |
//! | vpenta  | ~170                   | 256              |
//!
//! Every kernel also carries the small array-initialization loops real
//! compiled programs have, and two-level nesting so outer loops exercise
//! the Non-Bufferable Loop Table exactly as in the paper's Figure 4.

use crate::ir::{BinOp, Expr, InnerLoop, Kernel, Stmt};

fn lit(v: f64) -> Expr {
    Expr::Lit(v)
}
fn a(id: usize, off: i32) -> Expr {
    Expr::a(id, off)
}
fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::bin(op, l, r)
}

/// `t[i] = b[i] <op> L` — 3 body instructions.
fn s_lit(t: usize, b: usize, op: BinOp, l: f64) -> Stmt {
    Stmt::new(t, 0, bin(op, a(b, 0), lit(l)))
}
/// `t[i] = b[i] <op> c[i]` — 4 body instructions.
fn s_bin(t: usize, b: usize, c: usize, op: BinOp) -> Stmt {
    Stmt::new(t, 0, bin(op, a(b, 0), a(c, 0)))
}
/// `t[i] = b[i]*L + c[i]` — 5 body instructions.
fn s_mac(t: usize, b: usize, c: usize, l: f64) -> Stmt {
    Stmt::new(t, 0, bin(BinOp::Add, bin(BinOp::Mul, a(b, 0), lit(l)), a(c, 0)))
}
/// `t[i] = (b[i] + c[i]) * d[i]` — 6 body instructions.
fn s_tri(t: usize, b: usize, c: usize, d: usize) -> Stmt {
    Stmt::new(t, 0, bin(BinOp::Mul, bin(BinOp::Add, a(b, 0), a(c, 0)), a(d, 0)))
}
/// `t[i] = (b[i-1] + b[i+1]) * L` — 5 body instructions, stencil flavor.
fn s_stencil(t: usize, b: usize, l: f64) -> Stmt {
    Stmt::new(t, 0, bin(BinOp::Mul, bin(BinOp::Add, a(b, -1), a(b, 1)), lit(l)))
}

/// `aps` (Perfect Club): small tight loop, bufferable even at IQ-32.
#[must_use]
pub fn aps() -> Kernel {
    let mut k = Kernel::new("aps", "Perfect Club");
    let x = k.array("x", 256);
    let y = k.array("y", 256);
    let z = k.array("z", 256);
    let w = k.array("w", 256);
    k.nest(45, vec![InnerLoop::new(240, vec![s_mac(x, y, z, 0.75), s_bin(w, x, y, BinOp::Add)])]);
    k
}

/// `tsf` (Perfect Club): the smallest loop in the suite; at large queues
/// multi-iteration buffering delays reuse entry (the paper's observed
/// non-monotonicity).
#[must_use]
pub fn tsf() -> Kernel {
    let mut k = Kernel::new("tsf", "Perfect Club");
    let p = k.array("p", 256);
    let q = k.array("q", 256);
    let r = k.array("r", 256);
    k.nest(
        50,
        vec![InnerLoop::new(
            240,
            vec![s_lit(p, q, BinOp::Mul, 0.5), s_lit(r, p, BinOp::Add, 0.125)],
        )],
    );
    k
}

/// `wss` (Perfect Club): small loop with a leaf procedure call per
/// iteration (exercises §2.2.2 call handling inside buffering).
#[must_use]
pub fn wss() -> Kernel {
    let mut k = Kernel::new("wss", "Perfect Club");
    let u = k.array("u", 256);
    let v = k.array("v", 256);
    let s = k.array("s", 256);
    let damp = k.proc(
        "damp",
        vec![Stmt::new(
            0,
            0,
            bin(BinOp::Add, bin(BinOp::Mul, a(0, 0), lit(0.96875)), lit(0.03125)),
        )],
    );
    // The first statement is a cross-iteration recurrence (u[i] depends
    // on u[i-1]) so both pipelines are latency-bound the same way.
    let chain = Stmt::new(u, 0, bin(BinOp::Add, bin(BinOp::Mul, a(u, -1), lit(0.5)), a(v, 0)));
    k.nest(
        40,
        vec![InnerLoop::new(240, vec![chain, s_lit(s, u, BinOp::Mul, 0.25)]).with_call(damp)],
    );
    k
}

/// `eflux` (Perfect Club): medium body, bufferable from IQ-64.
///
/// Stencil reads come only from the flux arrays `f`/`g`, which the body
/// never writes — the statement dependence graph is acyclic, so the loop
/// fully distributes for Figure 9.
#[must_use]
pub fn eflux() -> Kernel {
    let mut k = Kernel::new("eflux", "Perfect Club");
    let r = k.array("rho", 216);
    let u = k.array("u", 216);
    let v = k.array("v", 216);
    let e = k.array("e", 216);
    let f = k.array("f", 216);
    let g = k.array("g", 216);
    k.nest(
        16,
        vec![InnerLoop::new(
            200,
            vec![
                s_mac(r, u, v, 0.5),
                s_bin(e, r, u, BinOp::Mul),
                s_stencil(u, f, 0.25),
                s_stencil(v, g, 0.25),
                s_tri(r, u, v, e),
                s_mac(e, v, r, 0.5),
                s_bin(u, e, r, BinOp::Add),
                s_lit(v, v, BinOp::Mul, 0.9375),
            ],
        )],
    );
    k
}

/// `adi` (Livermore): alternating-direction-implicit sweep; large body,
/// bufferable from IQ-128. Fully distributable for Figure 9.
#[must_use]
pub fn adi() -> Kernel {
    let mut k = Kernel::new("adi", "Livermore");
    let x = k.array("x", 216);
    let y = k.array("y", 216);
    let z = k.array("z", 216);
    let w = k.array("w", 216);
    let p = k.array("p", 216); // stencil source, read-only in the body
    let q = k.array("q", 216); // stencil source, read-only in the body
    k.nest(
        12,
        vec![InnerLoop::new(
            200,
            vec![
                s_mac(x, y, z, 0.3),
                s_mac(y, z, x, 0.3),
                s_stencil(z, p, 0.5),
                s_tri(w, x, y, z),
                s_bin(x, w, z, BinOp::Mul),
                s_stencil(y, q, 0.5),
                s_tri(z, x, y, w),
                s_mac(w, z, x, 0.4),
                s_bin(x, w, y, BinOp::Add),
                s_bin(y, x, z, BinOp::Sub),
                s_mac(z, y, w, 0.4),
                s_bin(w, x, z, BinOp::Add),
                s_lit(y, y, BinOp::Mul, 0.9375),
            ],
        )],
    );
    k
}

/// `btrix` (Spec92/NASA): block-tridiagonal solve dominated by a
/// ~90-instruction loop — the paper's example of poor queue utilization
/// at IQ-128/256 (only an integer number of iterations fits).
#[must_use]
pub fn btrix() -> Kernel {
    let mut k = Kernel::new("btrix", "Spec92/NASA");
    let ab = k.array("ab", 216);
    let bb = k.array("bb", 216);
    let cb = k.array("cb", 216);
    let db = k.array("db", 216);
    let xb = k.array("xb", 216);
    let yb = k.array("yb", 216);
    let zb = k.array("zb", 216); // stencil source, read-only in the body
    let wb = k.array("wb", 216); // stencil source, read-only in the body
                                 // Statements 1–2 form a genuine cross-iteration recurrence (ab/bb are
                                 // written nowhere else), so loop distribution must keep them together
                                 // — the SCC case of the Section 4 pass.
    k.nest(
        10,
        vec![InnerLoop::new(
            200,
            vec![
                Stmt::new(ab, 0, bin(BinOp::Add, a(bb, -1), a(cb, 0))),
                Stmt::new(bb, 0, bin(BinOp::Mul, a(ab, -1), lit(0.875))),
                s_mac(cb, db, ab, 0.2),
                s_tri(db, ab, bb, cb),
                s_stencil(xb, zb, 0.25),
                s_stencil(yb, wb, 0.25),
                s_tri(cb, xb, yb, db),
                s_mac(xb, cb, db, 0.4),
                s_bin(yb, xb, cb, BinOp::Add),
                s_tri(db, xb, yb, cb),
                s_mac(cb, db, xb, 0.4),
                s_bin(xb, cb, yb, BinOp::Mul),
                s_mac(yb, xb, db, 0.2),
                s_bin(cb, xb, yb, BinOp::Sub),
                s_lit(db, db, BinOp::Mul, 0.875),
                s_bin(xb, cb, db, BinOp::Add),
                s_lit(yb, yb, BinOp::Mul, 0.9375),
            ],
        )],
    );
    k
}

/// `tomcat` (Spec95 `tomcatv`): mesh-generation kernel, ~110-instruction
/// body, bufferable from IQ-128.
#[must_use]
pub fn tomcat() -> Kernel {
    let mut k = Kernel::new("tomcat", "Spec95");
    let xx = k.array("xx", 216);
    let yy = k.array("yy", 216);
    let rx = k.array("rx", 216);
    let ry = k.array("ry", 216);
    let d = k.array("d", 216);
    let aa = k.array("aa", 216);
    let bb = k.array("bb", 216); // stencil source, read-only in the body
    let cc = k.array("cc", 216); // stencil source, read-only in the body
    k.nest(
        9,
        vec![InnerLoop::new(
            200,
            vec![
                s_mac(xx, yy, rx, 0.125),
                s_mac(yy, rx, xx, 0.125),
                s_stencil(rx, bb, 0.5),
                s_stencil(ry, cc, 0.5),
                s_tri(d, xx, yy, rx),
                s_tri(aa, yy, rx, ry),
                s_bin(xx, d, aa, BinOp::Mul),
                s_mac(yy, xx, d, 0.25),
                s_tri(rx, aa, d, xx),
                s_mac(ry, rx, yy, 0.25),
                s_bin(d, ry, xx, BinOp::Add),
                s_tri(aa, d, ry, rx),
                s_mac(xx, aa, ry, 0.0625),
                s_bin(yy, xx, aa, BinOp::Sub),
                s_stencil(d, bb, 0.0625),
                s_tri(ry, xx, yy, d),
                s_mac(rx, ry, aa, 0.5),
                s_bin(aa, rx, ry, BinOp::Add),
                s_lit(d, d, BinOp::Mul, 0.96875),
                s_bin(xx, d, rx, BinOp::Add),
                s_lit(yy, yy, BinOp::Mul, 0.96875),
            ],
        )],
    );
    k
}

/// `vpenta` (Spec92/NASA): pentadiagonal inversion, the fattest loop of
/// the suite (~170 instructions) — bufferable only at IQ-256.
#[must_use]
pub fn vpenta() -> Kernel {
    let mut k = Kernel::new("vpenta", "Spec92/NASA");
    let aa = k.array("a", 216);
    let bb = k.array("b", 216);
    let cc = k.array("c", 216);
    let dd = k.array("d", 216);
    let ee = k.array("e", 216);
    let ff = k.array("f", 216);
    let xs = k.array("x", 216); // stencil source, read-only in the body
    let ys = k.array("y", 216); // stencil source, read-only in the body
                                // 28 statements rotating over six written arrays, stencil-reading only
                                // the read-only sources: an acyclic dependence graph the Section 4
                                // pass can fully distribute.
    let w = [aa, bb, cc, dd, ee, ff];
    let mut body = Vec::with_capacity(28);
    for i in 0..28usize {
        let t = w[i % 6];
        let r1 = w[(i + 1) % 6];
        let r2 = w[(i + 2) % 6];
        let r3 = w[(i + 3) % 6];
        let s = match i % 4 {
            0 => s_tri(t, r1, r2, r3),
            1 => s_tri(t, r2, r3, r1),
            2 => s_mac(t, r1, r2, 0.3),
            _ if i % 8 == 3 => s_stencil(t, if i % 16 == 3 { xs } else { ys }, 0.25),
            _ => s_tri(t, r3, r1, r2),
        };
        body.push(s);
    }
    k.nest(6, vec![InnerLoop::new(200, body)]);
    k
}

/// All eight benchmarks in the paper's Table 2 order.
#[must_use]
pub fn suite() -> Vec<Kernel> {
    vec![adi(), aps(), btrix(), eflux(), tomcat(), tsf(), vpenta(), wss()]
}

/// The suite with every outer trip count scaled by `factor` (≥ 0.01) —
/// used by tests and quick benches to bound run time without changing any
/// loop *body*.
#[must_use]
pub fn suite_scaled(factor: f64) -> Vec<Kernel> {
    let f = factor.max(0.01);
    suite()
        .into_iter()
        .map(|mut k| {
            for nest in &mut k.nests {
                nest.outer_trip = ((f64::from(nest.outer_trip) * f).round() as u32).max(2);
            }
            k
        })
        .collect()
}

/// Looks a benchmark up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Kernel> {
    suite().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::inner_loop_span;
    use crate::distribute::distribute_kernel;

    #[test]
    fn all_kernels_validate() {
        for k in suite() {
            assert!(k.validate().is_ok(), "{}", k.name);
        }
    }

    #[test]
    fn table2_names_and_sources() {
        let names: Vec<String> = suite().iter().map(|k| k.name.clone()).collect();
        assert_eq!(names, vec!["adi", "aps", "btrix", "eflux", "tomcat", "tsf", "vpenta", "wss"]);
        assert_eq!(by_name("btrix").unwrap().source, "Spec92/NASA");
        assert_eq!(by_name("tomcat").unwrap().source, "Spec95");
        assert!(by_name("nope").is_none());
    }

    /// The whole evaluation depends on these spans landing in the right
    /// issue-queue brackets; pin them down.
    #[test]
    fn innermost_spans_match_design_brackets() {
        let span = |k: &Kernel| inner_loop_span(&k.nests[0].inners[0]);
        let in_bracket = |s: u32, lo: u32, hi: u32| s > lo && s <= hi;
        assert!(in_bracket(span(&aps()), 8, 32), "aps span {}", span(&aps()));
        assert!(in_bracket(span(&tsf()), 8, 32), "tsf span {}", span(&tsf()));
        assert!(in_bracket(span(&wss()), 8, 32), "wss span {}", span(&wss()));
        assert!(in_bracket(span(&eflux()), 32, 64), "eflux span {}", span(&eflux()));
        assert!(in_bracket(span(&adi()), 64, 128), "adi span {}", span(&adi()));
        assert!(in_bracket(span(&btrix()), 64, 128), "btrix span {}", span(&btrix()));
        assert!(
            (85..=95).contains(&span(&btrix())),
            "btrix is the paper's ~90-instruction loop, got {}",
            span(&btrix())
        );
        assert!(in_bracket(span(&tomcat()), 64, 128), "tomcat span {}", span(&tomcat()));
        assert!(in_bracket(span(&vpenta()), 128, 256), "vpenta span {}", span(&vpenta()));
    }

    #[test]
    fn fat_kernels_distribute_into_small_loops() {
        for k in [adi(), btrix(), tomcat(), vpenta(), eflux()] {
            let opt = distribute_kernel(&k);
            let pieces = opt.nests[0].inners.len();
            assert!(pieces > 2, "{} distributed into {pieces} pieces", k.name);
            for inner in &opt.nests[0].inners {
                let s = inner_loop_span(inner);
                assert!(s <= 64, "{}: distributed piece span {s} must fit IQ-64", k.name);
            }
            assert!(opt.validate().is_ok());
        }
    }

    #[test]
    fn scaling_preserves_bodies() {
        let full = suite();
        let quick = suite_scaled(0.1);
        for (f, q) in full.iter().zip(&quick) {
            assert_eq!(f.nests[0].inners, q.nests[0].inners, "{}", f.name);
            assert!(q.nests[0].outer_trip < f.nests[0].outer_trip);
            assert!(q.nests[0].outer_trip >= 2);
        }
    }

    #[test]
    fn dynamic_work_is_balanced() {
        for k in suite() {
            let work = k.dynamic_stmts();
            assert!(
                (10_000..2_000_000).contains(&work),
                "{} dynamic statements {work} out of balance",
                k.name
            );
        }
    }
}
