//! Loop-nest intermediate representation.
//!
//! The paper's benchmarks are array-intensive Fortran loop nests. We do
//! not have the original sources or a Fortran front-end, so each benchmark
//! is expressed in this small IR — stride-1 affine statements inside
//! rectangular loop nests — which is rich enough to carry the properties
//! the paper's evaluation depends on: innermost-loop body size relative to
//! the issue queue, nesting (outer loops are non-bufferable), procedure
//! calls inside loops, and the dependences that the Section 4 loop
//! distribution pass must respect.

use std::fmt;

/// Identifies an array declared in a [`Kernel`].
pub type ArrayId = usize;
/// Identifies a procedure declared in a [`Kernel`].
pub type ProcId = usize;

/// Binary floating-point operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (long-latency; use sparingly, as real kernels do).
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// A floating-point expression over the loop index `i`.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant (pooled into FP registers by the code generator).
    Lit(f64),
    /// `A[i + offset]`.
    Ref(ArrayId, i32),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for `A[i + off]`.
    #[must_use]
    pub fn a(array: ArrayId, off: i32) -> Expr {
        Expr::Ref(array, off)
    }

    /// Convenience constructor for a binary node.
    #[must_use]
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// All array references in this expression, in evaluation order.
    pub fn refs(&self, out: &mut Vec<(ArrayId, i32)>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Ref(a, c) => out.push((*a, *c)),
            Expr::Bin(_, l, r) => {
                l.refs(out);
                r.refs(out);
            }
        }
    }

    /// All literal constants, in evaluation order.
    pub fn lits(&self, out: &mut Vec<f64>) {
        match self {
            Expr::Lit(v) => out.push(*v),
            Expr::Ref(..) => {}
            Expr::Bin(_, l, r) => {
                l.lits(out);
                r.lits(out);
            }
        }
    }

    /// Maximum evaluation-stack depth (FP registers the codegen needs).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Ref(..) => 1,
            Expr::Bin(_, l, r) => l.depth().max(r.depth() + 1),
        }
    }
}

/// One statement of an innermost loop: `target_array[i + off] = rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Written array.
    pub target: ArrayId,
    /// Write offset from `i`.
    pub offset: i32,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Stmt {
    /// Builds a statement.
    #[must_use]
    pub fn new(target: ArrayId, offset: i32, rhs: Expr) -> Stmt {
        Stmt { target, offset, rhs }
    }

    /// Reads `(array, offset)` pairs of the right-hand side.
    #[must_use]
    pub fn reads(&self) -> Vec<(ArrayId, i32)> {
        let mut out = Vec::new();
        self.rhs.refs(&mut out);
        out
    }

    /// All arrays the statement touches (write target first).
    #[must_use]
    pub fn arrays(&self) -> Vec<ArrayId> {
        let mut out = vec![self.target];
        for (a, _) in self.reads() {
            if !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }
}

/// An innermost loop executing its body `trip` times; the loop index
/// advances by `step` array elements per iteration (`step > 1` after
/// unrolling: iteration `i` covers original indices `i*step + 0..step`).
#[derive(Debug, Clone, PartialEq)]
pub struct InnerLoop {
    /// Trip count (body executions).
    pub trip: u32,
    /// Elements the moving pointers advance per iteration (1 unless
    /// unrolled).
    pub step: u32,
    /// Loop body statements, in program order.
    pub stmts: Vec<Stmt>,
    /// Optional procedure called once per iteration, after the statements
    /// (exercises the paper's §2.2.2 procedure handling).
    pub call: Option<ProcId>,
}

impl InnerLoop {
    /// A plain stride-1 loop with no call.
    #[must_use]
    pub fn new(trip: u32, stmts: Vec<Stmt>) -> InnerLoop {
        InnerLoop { trip, step: 1, stmts, call: None }
    }

    /// Adds a per-iteration procedure call.
    #[must_use]
    pub fn with_call(mut self, proc: ProcId) -> InnerLoop {
        self.call = Some(proc);
        self
    }

    /// Arrays used anywhere in the loop.
    #[must_use]
    pub fn arrays(&self) -> Vec<ArrayId> {
        let mut out = Vec::new();
        for s in &self.stmts {
            for a in s.arrays() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }
}

/// An outer loop wrapping a sequence of inner loops.
///
/// `outer_trip == 1` models straight-line phases (e.g. array
/// initialization) that run once.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// Outer trip count.
    pub outer_trip: u32,
    /// Inner loops executed in sequence per outer iteration.
    pub inners: Vec<InnerLoop>,
}

/// A leaf procedure: a short statement sequence over a pointer argument,
/// applied at offset 0 (called with the first array's moving pointer).
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    /// Name (label in the generated code).
    pub name: String,
    /// Statements, all interpreted with `i = 0` relative to the pointer.
    pub stmts: Vec<Stmt>,
}

/// A named array with its element count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Name (data label in the generated code).
    pub name: String,
    /// Elements (doubles).
    pub len: u32,
}

/// A whole benchmark kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Benchmark name (Table 2).
    pub name: String,
    /// Benchmark provenance in the paper's Table 2 (e.g. "Perfect Club").
    pub source: String,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Loop nests, executed in sequence.
    pub nests: Vec<LoopNest>,
    /// Leaf procedures callable from inner loops.
    pub procs: Vec<Procedure>,
}

impl Kernel {
    /// Creates an empty kernel.
    #[must_use]
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Kernel {
        Kernel {
            name: name.into(),
            source: source.into(),
            arrays: Vec::new(),
            nests: Vec::new(),
            procs: Vec::new(),
        }
    }

    /// Declares an array, returning its id.
    pub fn array(&mut self, name: impl Into<String>, len: u32) -> ArrayId {
        self.arrays.push(ArrayDecl { name: name.into(), len });
        self.arrays.len() - 1
    }

    /// Declares a procedure, returning its id.
    pub fn proc(&mut self, name: impl Into<String>, stmts: Vec<Stmt>) -> ProcId {
        self.procs.push(Procedure { name: name.into(), stmts });
        self.procs.len() - 1
    }

    /// Appends a loop nest.
    pub fn nest(&mut self, outer_trip: u32, inners: Vec<InnerLoop>) -> &mut Self {
        self.nests.push(LoopNest { outer_trip, inners });
        self
    }

    /// Total dynamic statement executions (a rough work measure used to
    /// balance benchmark run lengths).
    #[must_use]
    pub fn dynamic_stmts(&self) -> u64 {
        self.nests
            .iter()
            .map(|n| {
                u64::from(n.outer_trip)
                    * n.inners
                        .iter()
                        .map(|l| u64::from(l.trip) * (l.stmts.len() as u64).max(1))
                        .sum::<u64>()
            })
            .sum()
    }

    /// Validates that every reference stays within its array (given the
    /// code generator's guard band) and ids are in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (ni, nest) in self.nests.iter().enumerate() {
            for (li, inner) in nest.inners.iter().enumerate() {
                for (si, s) in inner.stmts.iter().enumerate() {
                    let mut refs = vec![(s.target, s.offset)];
                    refs.extend(s.reads());
                    for (a, c) in refs {
                        let Some(decl) = self.arrays.get(a) else {
                            return Err(format!(
                                "nest {ni} loop {li} stmt {si}: unknown array id {a}"
                            ));
                        };
                        if c.unsigned_abs() > crate::codegen::GUARD_ELEMS {
                            return Err(format!(
                                "nest {ni} loop {li} stmt {si}: offset {c} exceeds guard band"
                            ));
                        }
                        if inner.trip * inner.step.max(1) > decl.len {
                            return Err(format!(
                                "nest {ni} loop {li}: trip {} x step {} exceeds array {} length {}",
                                inner.trip, inner.step, decl.name, decl.len
                            ));
                        }
                    }
                }
                if inner.step == 0 {
                    return Err(format!("nest {ni} loop {li}: step must be non-zero"));
                }
                if let Some(p) = inner.call {
                    if p >= self.procs.len() {
                        return Err(format!("nest {ni} loop {li}: unknown procedure {p}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Kernel {
        let mut k = Kernel::new("demo", "synthetic");
        let a = k.array("a", 128);
        let b = k.array("b", 128);
        let s = Stmt::new(a, 0, Expr::bin(BinOp::Add, Expr::a(b, 0), Expr::Lit(1.0)));
        k.nest(10, vec![InnerLoop::new(100, vec![s])]);
        k
    }

    #[test]
    fn expr_refs_and_depth() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::a(0, -1), Expr::Lit(2.0)),
            Expr::a(1, 1),
        );
        let mut refs = Vec::new();
        e.refs(&mut refs);
        assert_eq!(refs, vec![(0, -1), (1, 1)]);
        let mut lits = Vec::new();
        e.lits(&mut lits);
        assert_eq!(lits, vec![2.0]);
        assert_eq!(e.depth(), 2);
        let deep = Expr::bin(BinOp::Add, Expr::a(0, 0), e.clone());
        assert_eq!(deep.depth(), 3);
    }

    #[test]
    fn stmt_accessors() {
        let s = Stmt::new(2, 1, Expr::bin(BinOp::Sub, Expr::a(0, 0), Expr::a(2, -1)));
        assert_eq!(s.reads(), vec![(0, 0), (2, -1)]);
        assert_eq!(s.arrays(), vec![2, 0]);
    }

    #[test]
    fn kernel_builders_and_counts() {
        let k = sample();
        assert_eq!(k.arrays.len(), 2);
        assert_eq!(k.dynamic_stmts(), 1000);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn validation_catches_errors() {
        let mut k = sample();
        k.nests[0].inners[0].stmts[0].target = 9;
        assert!(k.validate().unwrap_err().contains("unknown array"));

        let mut k = sample();
        k.nests[0].inners[0].trip = 4096;
        assert!(k.validate().unwrap_err().contains("exceeds array"));

        let mut k = sample();
        k.nests[0].inners[0].stmts[0].offset = 999;
        assert!(k.validate().unwrap_err().contains("guard band"));

        let mut k = sample();
        k.nests[0].inners[0].call = Some(3);
        assert!(k.validate().unwrap_err().contains("unknown procedure"));
    }
}
