//! # riq-kernels — loop-nest IR, loop distribution, and the benchmark suite
//!
//! The workload side of the reproduction. The paper evaluates on eight
//! array-intensive benchmarks (Table 2) compiled from Fortran; this crate
//! provides:
//!
//! * a small loop-nest [`ir`](crate::Kernel): stride-1 affine statements in
//!   rectangular nests, with leaf procedure calls;
//! * exact [dependence analysis](crate::dependence_edges) for those loops;
//! * the Section 4 compiler optimization, [`distribute_kernel`] —
//!   Kennedy–McKinley loop distribution over dependence-graph SCCs — plus
//!   the complementary [`unroll_kernel`] and [`fuse_kernel`] transforms;
//! * a [code generator](crate::compile) emitting riq machine code whose
//!   inner loops look to the reuse detector exactly like compiled Fortran
//!   loops (single backward branch, pointer-incremented accesses);
//! * the eight [`suite`] kernels, each shaped to its paper counterpart's
//!   innermost-loop size bracket.
//!
//! # Examples
//!
//! Compile a benchmark both ways and observe the distribution effect:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_kernels::{by_name, compile, distribute_kernel, inner_loop_span};
//!
//! let adi = by_name("adi").expect("table 2 kernel");
//! let fat = inner_loop_span(&adi.nests[0].inners[0]);
//! assert!(fat > 64, "original adi does not fit a 64-entry queue");
//!
//! let opt = distribute_kernel(&adi);
//! assert!(opt.nests[0].inners.iter().all(|l| inner_loop_span(l) <= 64));
//!
//! let program = compile(&opt)?;
//! assert!(program.text_len() > 50);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod codegen;
mod deps;
mod distribute;
mod generator;
mod ir;
mod suite;
mod transforms;

pub use codegen::{compile, inner_loop_span, CompileKernelError, GUARD_ELEMS, INIT_VALUE};
pub use deps::{dependence_edges, dependence_sccs, DepEdge, DepKind};
pub use distribute::{distribute_kernel, distribute_loop};
pub use generator::{random_kernel, GeneratorParams};
pub use ir::{
    ArrayDecl, ArrayId, BinOp, Expr, InnerLoop, Kernel, LoopNest, ProcId, Procedure, Stmt,
};
pub use suite::{by_name, suite, suite_scaled};
pub use transforms::{fuse_kernel, fuse_loops, unroll_kernel, unroll_loop};
