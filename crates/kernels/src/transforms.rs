//! Further loop transformations: unrolling and fusion.
//!
//! The paper's conclusion notes that "compiler optimizations (loop
//! transformations) can further gear the code towards a given issue queue
//! size". [`crate::distribute_kernel`] shrinks loop bodies (Section 4);
//! this module provides the two complementary levers:
//!
//! * [`unroll_loop`] **grows** a too-small body so a large queue buffers
//!   fewer, bigger iterations (fewer reuse-pointer wraps);
//! * [`fuse_loops`] merges adjacent compatible loops — the inverse of
//!   distribution — useful as an ablation showing *why* distribution
//!   helps (fusing the distributed kernels back re-creates the fat,
//!   uncapturable bodies).

use crate::deps::dependence_edges;
use crate::ir::{InnerLoop, Kernel, LoopNest, Stmt};

/// Maximum reference offset magnitude allowed after unrolling (must stay
/// within the code generator's guard band).
const MAX_OFFSET: i32 = crate::codegen::GUARD_ELEMS as i32 - 1;

/// Unrolls a loop by `factor`, returning `None` when unrolling is not
/// applicable: factor < 2, a procedure call in the body, a trip count not
/// divisible by the factor, or shifted offsets leaving the guard band.
///
/// Replica `j` of each statement has every offset shifted by `j`; the
/// resulting loop advances `factor × step` elements per iteration, so the
/// memory footprint and semantics are unchanged.
///
/// # Examples
///
/// ```
/// use riq_kernels::{unroll_loop, Expr, InnerLoop, Stmt};
/// let l = InnerLoop::new(32, vec![Stmt::new(0, 0, Expr::a(1, 0))]);
/// let u = unroll_loop(&l, 4).expect("32 % 4 == 0");
/// assert_eq!(u.trip, 8);
/// assert_eq!(u.step, 4);
/// assert_eq!(u.stmts.len(), 4);
/// assert_eq!(u.stmts[3].offset, 3);
/// ```
#[must_use]
pub fn unroll_loop(l: &InnerLoop, factor: u32) -> Option<InnerLoop> {
    if factor < 2 || l.call.is_some() || !l.trip.is_multiple_of(factor) || l.stmts.is_empty() {
        return None;
    }
    let shift_max = factor as i32 - 1;
    // Check every shifted offset stays inside the guard band.
    for s in &l.stmts {
        let mut offs = vec![s.offset];
        offs.extend(s.reads().into_iter().map(|(_, c)| c));
        for c in offs {
            if c + shift_max > MAX_OFFSET || c < -MAX_OFFSET {
                return None;
            }
        }
    }
    let mut stmts = Vec::with_capacity(l.stmts.len() * factor as usize);
    for j in 0..factor as i32 {
        for s in &l.stmts {
            stmts.push(shift_stmt(s, j));
        }
    }
    Some(InnerLoop { trip: l.trip / factor, step: l.step * factor, stmts, call: None })
}

fn shift_stmt(s: &Stmt, by: i32) -> Stmt {
    use crate::ir::Expr;
    fn shift_expr(e: &Expr, by: i32) -> Expr {
        match e {
            Expr::Lit(v) => Expr::Lit(*v),
            Expr::Ref(a, c) => Expr::Ref(*a, c + by),
            Expr::Bin(op, l, r) => {
                Expr::Bin(*op, Box::new(shift_expr(l, by)), Box::new(shift_expr(r, by)))
            }
        }
    }
    Stmt::new(s.target, s.offset + by, shift_expr(&s.rhs, by))
}

/// Applies [`unroll_loop`] with `factor` to every innermost loop where it
/// is legal, leaving the others untouched.
#[must_use]
pub fn unroll_kernel(k: &Kernel, factor: u32) -> Kernel {
    let mut out = k.clone();
    out.nests = k
        .nests
        .iter()
        .map(|nest| LoopNest {
            outer_trip: nest.outer_trip,
            inners: nest
                .inners
                .iter()
                .map(|l| unroll_loop(l, factor).unwrap_or_else(|| l.clone()))
                .collect(),
        })
        .collect();
    out
}

/// Fuses two adjacent loops into one, returning `None` when fusion is
/// illegal: differing trip counts or steps, procedure calls, or a
/// fusion-preventing dependence (any dependence that would point from a
/// second-loop statement back into a first-loop statement once the bodies
/// are interleaved).
///
/// # Examples
///
/// ```
/// use riq_kernels::{fuse_loops, Expr, InnerLoop, Stmt};
/// let a = InnerLoop::new(16, vec![Stmt::new(0, 0, Expr::a(2, 0))]);
/// let b = InnerLoop::new(16, vec![Stmt::new(1, 0, Expr::a(0, 0))]);
/// let fused = fuse_loops(&a, &b).expect("forward dependence fuses fine");
/// assert_eq!(fused.stmts.len(), 2);
/// ```
#[must_use]
pub fn fuse_loops(a: &InnerLoop, b: &InnerLoop) -> Option<InnerLoop> {
    if a.trip != b.trip || a.step != b.step || a.call.is_some() || b.call.is_some() {
        return None;
    }
    let mut stmts = a.stmts.clone();
    stmts.extend(b.stmts.iter().cloned());
    let split = a.stmts.len();
    // Fusion-preventing dependence: in the fused body, an edge from a
    // b-statement to an a-statement means the original "all of A before
    // all of B" order cannot be recovered by the interleaved execution.
    for e in dependence_edges(&stmts) {
        if e.from >= split && e.to < split {
            return None;
        }
    }
    Some(InnerLoop { trip: a.trip, step: a.step, stmts, call: None })
}

/// Greedily fuses adjacent compatible inner loops in every nest — the
/// inverse of [`crate::distribute_kernel`], used by the transform
/// ablation.
#[must_use]
pub fn fuse_kernel(k: &Kernel) -> Kernel {
    let mut out = k.clone();
    out.nests = k
        .nests
        .iter()
        .map(|nest| {
            let mut inners: Vec<InnerLoop> = Vec::new();
            for l in &nest.inners {
                if let Some(last) = inners.last() {
                    if let Some(fused) = fuse_loops(last, l) {
                        *inners.last_mut().expect("non-empty") = fused;
                        continue;
                    }
                }
                inners.push(l.clone());
            }
            LoopNest { outer_trip: nest.outer_trip, inners }
        })
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribute::distribute_kernel;
    use crate::ir::{BinOp, Expr};

    fn st(t: usize, off: i32, reads: &[(usize, i32)]) -> Stmt {
        let mut rhs = Expr::Lit(0.5);
        for &(a, c) in reads {
            rhs = Expr::bin(BinOp::Add, rhs, Expr::a(a, c));
        }
        Stmt::new(t, off, rhs)
    }

    #[test]
    fn unroll_shifts_offsets_per_replica() {
        let l = InnerLoop::new(24, vec![st(0, 0, &[(1, -1)]), st(2, 1, &[(1, 1)])]);
        let u = unroll_loop(&l, 3).expect("24 % 3 == 0");
        assert_eq!(u.trip, 8);
        assert_eq!(u.step, 3);
        assert_eq!(u.stmts.len(), 6);
        // Replica 2 of the second statement: target offset 1+2, read 1+2.
        assert_eq!(u.stmts[5].offset, 3);
        assert_eq!(u.stmts[5].reads(), vec![(1, 3)]);
    }

    #[test]
    fn unroll_rejections() {
        let l = InnerLoop::new(24, vec![st(0, 0, &[])]);
        assert!(unroll_loop(&l, 1).is_none(), "factor 1 is a no-op");
        assert!(unroll_loop(&l, 5).is_none(), "24 % 5 != 0");
        let mut with_call = l.clone();
        with_call.call = Some(0);
        assert!(unroll_loop(&with_call, 2).is_none(), "calls block unrolling");
        // An offset that would leave the guard band.
        let wide = InnerLoop::new(24, vec![st(0, 6, &[])]);
        assert!(unroll_loop(&wide, 4).is_none(), "6+3 exceeds the guard band");
    }

    #[test]
    fn unrolled_kernel_is_semantically_identical() {
        use riq_emu::Machine;
        let mut k = Kernel::new("unr", "synthetic");
        let a = k.array("a", 64);
        let b = k.array("b", 64);
        k.nest(
            3,
            vec![InnerLoop::new(48, vec![st(a, 0, &[(b, -1), (b, 1)]), st(b, 0, &[(a, 0)])])],
        );
        let opt = unroll_kernel(&k, 4);
        assert_eq!(opt.nests[0].inners[0].trip, 12);
        assert!(opt.validate().is_ok());
        let run = |k: &Kernel| {
            let p = crate::codegen::compile(k).expect("compiles");
            let mut m = Machine::new(&p);
            m.run(10_000_000).expect("halts");
            let base = p.symbol(&format!("{}_a", k.name)).expect("symbol")
                + crate::codegen::GUARD_ELEMS * 8;
            (0..48u32)
                .map(|i| m.memory().load_u64(base + 8 * i).expect("aligned"))
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(&k), run(&opt), "unrolling preserves array contents");
    }

    #[test]
    fn fusion_of_forward_dependence_is_legal() {
        let a = InnerLoop::new(16, vec![st(0, 0, &[(3, 0)])]);
        let b = InnerLoop::new(16, vec![st(1, 0, &[(0, 0)])]);
        let fused = fuse_loops(&a, &b).expect("flow at distance 0 fuses");
        assert_eq!(fused.stmts.len(), 2);
    }

    #[test]
    fn fusion_preventing_dependence_rejected() {
        // B reads A's array at i+1: after fusion, iteration i of B would
        // read a location A has not written yet — but in the original, all
        // of A ran first. Edge b->a => illegal.
        let a = InnerLoop::new(16, vec![st(0, 0, &[(3, 0)])]);
        let b = InnerLoop::new(16, vec![st(1, 0, &[(0, 1)])]);
        assert!(fuse_loops(&a, &b).is_none());
    }

    #[test]
    fn fusion_shape_mismatches_rejected() {
        let a = InnerLoop::new(16, vec![st(0, 0, &[])]);
        let b = InnerLoop::new(8, vec![st(1, 0, &[])]);
        assert!(fuse_loops(&a, &b).is_none(), "trip mismatch");
        let mut c = InnerLoop::new(16, vec![st(1, 0, &[])]);
        c.step = 2;
        assert!(fuse_loops(&a, &c).is_none(), "step mismatch");
    }

    #[test]
    fn fusing_a_distributed_kernel_preserves_semantics() {
        use riq_emu::Machine;
        let k = crate::suite::by_name("eflux").expect("table 2 kernel");
        let dist = distribute_kernel(&k);
        let refused = fuse_kernel(&dist);
        assert!(refused.validate().is_ok());
        assert!(
            refused.nests[0].inners.len() < dist.nests[0].inners.len(),
            "fusion must merge at least some adjacent pieces"
        );
        let digest = |k: &Kernel| {
            let p = crate::codegen::compile(k).expect("compiles");
            let mut m = Machine::new(&p);
            m.run(100_000_000).expect("halts");
            // Compare one array's contents (text layout differs).
            let base = p.symbol(&format!("{}_rho", k.name)).expect("symbol")
                + crate::codegen::GUARD_ELEMS * 8;
            (0..16u32)
                .map(|i| m.memory().load_u64(base + 8 * i).expect("aligned"))
                .collect::<Vec<u64>>()
        };
        assert_eq!(digest(&dist), digest(&refused));
    }
}
