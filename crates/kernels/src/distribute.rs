//! Loop distribution (Kennedy–McKinley), the Section 4 compiler
//! optimization.
//!
//! Splits a fat innermost loop into several thinner loops — one per
//! strongly connected component of the statement dependence graph, in a
//! topological order — so that each piece fits a small issue queue and can
//! be buffered/reused. Semantics are preserved because every dependence
//! edge either stays inside one piece (cycles) or points from an earlier
//! piece to a later one.

use crate::deps::dependence_sccs;
use crate::ir::{InnerLoop, Kernel, LoopNest};

/// Distributes one innermost loop into dependence-legal pieces.
///
/// Loops containing a procedure call are returned unchanged (the call is a
/// barrier this simple model does not split around), as are loops that are
/// already minimal.
///
/// # Examples
///
/// ```
/// use riq_kernels::{distribute_loop, Expr, InnerLoop, Stmt};
/// // Two independent statements over disjoint arrays split into two loops.
/// let l = InnerLoop::new(8, vec![
///     Stmt::new(0, 0, Expr::a(1, 0)),
///     Stmt::new(2, 0, Expr::a(3, 0)),
/// ]);
/// let pieces = distribute_loop(&l);
/// assert_eq!(pieces.len(), 2);
/// assert_eq!(pieces[0].stmts.len(), 1);
/// ```
#[must_use]
pub fn distribute_loop(l: &InnerLoop) -> Vec<InnerLoop> {
    // The stride-1 dependence distances below are only exact for step == 1;
    // unrolled loops are left whole.
    if l.call.is_some() || l.stmts.len() <= 1 || l.step != 1 {
        return vec![l.clone()];
    }
    let components = dependence_sccs(l);
    if components.len() <= 1 {
        return vec![l.clone()];
    }
    components
        .into_iter()
        .map(|idxs| InnerLoop {
            trip: l.trip,
            step: l.step,
            stmts: idxs.iter().map(|&i| l.stmts[i].clone()).collect(),
            call: None,
        })
        .collect()
}

/// Applies [`distribute_loop`] to every innermost loop of a kernel,
/// returning the optimized kernel (the "Optimized" bars of Figure 9).
#[must_use]
pub fn distribute_kernel(k: &Kernel) -> Kernel {
    let mut out = k.clone();
    out.nests = k
        .nests
        .iter()
        .map(|nest| LoopNest {
            outer_trip: nest.outer_trip,
            inners: nest.inners.iter().flat_map(distribute_loop).collect(),
        })
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Expr, Stmt};

    fn st(target: usize, off: i32, reads: &[(usize, i32)]) -> Stmt {
        let mut rhs = Expr::Lit(0.5);
        for &(a, c) in reads {
            rhs = Expr::bin(BinOp::Add, rhs, Expr::a(a, c));
        }
        Stmt::new(target, off, rhs)
    }

    #[test]
    fn independent_statements_fully_distribute() {
        let l =
            InnerLoop::new(16, vec![st(0, 0, &[(4, 0)]), st(1, 0, &[(5, 0)]), st(2, 0, &[(6, 0)])]);
        let pieces = distribute_loop(&l);
        assert_eq!(pieces.len(), 3);
        assert!(pieces.iter().all(|p| p.trip == 16 && p.stmts.len() == 1));
        // Program order is preserved.
        assert_eq!(pieces[0].stmts[0].target, 0);
        assert_eq!(pieces[2].stmts[0].target, 2);
    }

    #[test]
    fn recurrence_stays_together() {
        let l = InnerLoop::new(
            16,
            vec![st(0, 0, &[(1, -1)]), st(1, 0, &[(0, -1)]), st(2, 0, &[(5, 0)])],
        );
        let pieces = distribute_loop(&l);
        assert_eq!(pieces.len(), 2);
        let sizes: Vec<usize> = pieces.iter().map(|p| p.stmts.len()).collect();
        assert!(sizes.contains(&2), "the two-statement cycle is one piece");
    }

    #[test]
    fn flow_chain_orders_pieces() {
        // S1 consumes S0's previous-iteration value: S0's loop must come
        // first after distribution.
        let l = InnerLoop::new(16, vec![st(0, 0, &[(9, 0)]), st(1, 0, &[(0, -1)])]);
        let pieces = distribute_loop(&l);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].stmts[0].target, 0);
        assert_eq!(pieces[1].stmts[0].target, 1);
    }

    #[test]
    fn anti_dependence_reverses_piece_order() {
        // S1 reads A[i+1] which S0 (earlier in the body) writes in a later
        // iteration: S1's piece must run before S0's.
        let l = InnerLoop::new(16, vec![st(0, 0, &[(9, 0)]), st(1, 0, &[(0, 1)])]);
        let pieces = distribute_loop(&l);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].stmts[0].target, 1, "anti dep flips the order");
        assert_eq!(pieces[1].stmts[0].target, 0);
    }

    #[test]
    fn calls_are_barriers() {
        let mut l = InnerLoop::new(16, vec![st(0, 0, &[]), st(1, 0, &[])]);
        l.call = Some(0);
        assert_eq!(distribute_loop(&l).len(), 1);
    }

    #[test]
    fn kernel_distribution_multiplies_inner_loops() {
        let mut k = Kernel::new("t", "synthetic");
        let a = k.array("a", 64);
        let b = k.array("b", 64);
        let c = k.array("c", 64);
        let d = k.array("d", 64);
        k.nest(4, vec![InnerLoop::new(32, vec![st(a, 0, &[(c, 0)]), st(b, 0, &[(d, 0)])])]);
        let opt = distribute_kernel(&k);
        assert_eq!(opt.nests[0].inners.len(), 2);
        assert_eq!(opt.nests[0].outer_trip, 4);
        assert!(opt.validate().is_ok());
        // The original kernel is untouched.
        assert_eq!(k.nests[0].inners.len(), 1);
    }
}
