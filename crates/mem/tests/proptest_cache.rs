//! Model-based property tests: the set-associative cache against a naive
//! reference implementation, and metamorphic properties of the hierarchy.

use proptest::prelude::*;
use riq_mem::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy, Tlb, TlbConfig};
use std::collections::VecDeque;

/// A trivially correct LRU set-associative cache.
struct RefCache {
    sets: u32,
    ways: usize,
    line: u32,
    // Per set: most-recent at the back; (tag, dirty).
    content: Vec<VecDeque<(u32, bool)>>,
}

impl RefCache {
    fn new(sets: u32, ways: u32, line: u32) -> RefCache {
        RefCache { sets, ways: ways as usize, line, content: vec![VecDeque::new(); sets as usize] }
    }

    /// Returns (hit, writeback_of).
    fn access(&mut self, addr: u32, is_write: bool) -> (bool, Option<u32>) {
        let lineno = addr / self.line;
        let set = (lineno % self.sets) as usize;
        let tag = lineno / self.sets;
        let q = &mut self.content[set];
        if let Some(pos) = q.iter().position(|&(t, _)| t == tag) {
            let (t, d) = q.remove(pos).expect("present");
            q.push_back((t, d || is_write));
            return (true, None);
        }
        let mut wb = None;
        if q.len() == self.ways {
            let (vt, vd) = q.pop_front().expect("full set");
            if vd {
                wb = Some((vt * self.sets + set as u32) * self.line);
            }
        }
        q.push_back((tag, is_write));
        (false, wb)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn cache_matches_reference_model(
        sets_log in 0u32..6,
        ways in 1u32..5,
        line_log in 2u32..7,
        ops in prop::collection::vec((0u32..0x8000, any::<bool>()), 1..300)
    ) {
        let sets = 1 << sets_log;
        let line = 1 << line_log;
        let mut dut = Cache::new(CacheConfig { sets, ways, line_bytes: line, hit_latency: 1 })
            .expect("valid geometry");
        let mut model = RefCache::new(sets, ways, line);
        for (addr, is_write) in ops {
            let got = dut.access(addr, is_write);
            let (hit, wb) = model.access(addr, is_write);
            prop_assert_eq!(got.hit, hit, "addr {:#x} write {}", addr, is_write);
            prop_assert_eq!(got.writeback_of, wb, "addr {:#x}", addr);
        }
        let s = dut.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses());
    }

    #[test]
    fn repeat_access_always_hits(addr in 0u32..0x10_0000, is_write in any::<bool>()) {
        let mut c = Cache::new(CacheConfig { sets: 64, ways: 2, line_bytes: 32, hit_latency: 1 })
            .expect("valid");
        let _ = c.access(addr, is_write);
        prop_assert!(c.access(addr & !3, false).hit, "immediate re-access must hit");
    }

    #[test]
    fn tlb_penalty_is_all_or_nothing(addrs in prop::collection::vec(0u32..0x100_0000, 1..100)) {
        let mut tlb = Tlb::new(TlbConfig { sets: 16, ways: 4, miss_penalty: 30 }).expect("valid");
        for a in addrs {
            let lat = tlb.translate(a);
            prop_assert!(lat == 0 || lat == 30, "latency {lat}");
        }
    }

    #[test]
    fn hierarchy_latency_bounds(
        accesses in prop::collection::vec((0u32..0x40_0000, any::<bool>()), 1..200)
    ) {
        let cfg = HierarchyConfig::table1();
        let mut h = MemoryHierarchy::new(cfg).expect("valid");
        // Worst case: ITLB/DTLB miss + L1 miss + L2 miss + full line fill.
        let max = 30 + 1 + 8 + cfg.memory.fill_latency(cfg.l2.line_bytes);
        for (addr, w) in accesses {
            let lat = h.data_latency(addr * 4, w);
            prop_assert!(lat >= 1 && lat <= max, "latency {lat} out of [1, {max}]");
        }
        let s = h.stats();
        prop_assert!(s.dl1.misses >= s.l2.reads.saturating_sub(s.dl1.writebacks));
    }

    #[test]
    fn warm_rerun_is_never_slower(block in 0u32..64) {
        // Touching the same small block twice: second pass total latency
        // must be <= the first (caches only help).
        let mut h = MemoryHierarchy::new(HierarchyConfig::table1()).expect("valid");
        let base = block * 4096;
        let pass = |h: &mut MemoryHierarchy| -> u64 {
            (0..32u32).map(|i| h.data_latency(base + i * 8, false)).sum()
        };
        let cold = pass(&mut h);
        let warm = pass(&mut h);
        prop_assert!(warm <= cold, "warm {warm} > cold {cold}");
    }
}
