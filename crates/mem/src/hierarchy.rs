//! The full memory hierarchy: L1 I/D, unified L2, TLBs, main memory.
//!
//! [`MemoryHierarchy`] composes the per-structure models and answers the
//! two questions the pipeline asks: *how long does this instruction fetch
//! take* and *how long does this data access take*. Latencies are returned
//! per access and overlapped by the out-of-order core; MSHR/bandwidth
//! contention below L1 is not modeled (the paper's sim-outorder baseline
//! serializes bus chunks but the evaluation is front-end-bound, so this
//! simplification does not affect any reported trend).

use crate::cache::{Cache, CacheConfig, CacheConfigError, CacheStats};
use crate::tlb::{Tlb, TlbConfig};

/// Main-memory latency parameters (Table 1: 80 cycles for the first chunk,
/// 8 cycles for each following chunk; the OCR of the paper drops the
/// trailing zero of "80").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MainMemoryConfig {
    /// Latency of the first bus chunk of a line fill.
    pub first_chunk: u64,
    /// Latency of each subsequent chunk.
    pub inter_chunk: u64,
    /// Bus chunk width in bytes.
    pub chunk_bytes: u32,
}

impl MainMemoryConfig {
    /// Cycles to transfer `bytes` from memory.
    #[must_use]
    pub fn fill_latency(&self, bytes: u32) -> u64 {
        let chunks = u64::from(bytes.div_ceil(self.chunk_bytes).max(1));
        self.first_chunk + (chunks - 1) * self.inter_chunk
    }
}

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub il1: CacheConfig,
    /// L1 data cache.
    pub dl1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Main memory.
    pub memory: MainMemoryConfig,
}

impl HierarchyConfig {
    /// The paper's Table 1 baseline: 32 KB 2-way L1I (1 cycle), 32 KB 4-way
    /// L1D (1 cycle), 256 KB 4-way unified L2 (8 cycles), 16x4 ITLB, 32x4
    /// DTLB (30-cycle miss penalty), 80/8-cycle memory.
    #[must_use]
    pub fn table1() -> HierarchyConfig {
        HierarchyConfig {
            il1: CacheConfig { sets: 512, ways: 2, line_bytes: 32, hit_latency: 1 },
            dl1: CacheConfig { sets: 256, ways: 4, line_bytes: 32, hit_latency: 1 },
            l2: CacheConfig { sets: 1024, ways: 4, line_bytes: 64, hit_latency: 8 },
            itlb: TlbConfig { sets: 16, ways: 4, miss_penalty: 30 },
            dtlb: TlbConfig { sets: 32, ways: 4, miss_penalty: 30 },
            memory: MainMemoryConfig { first_chunk: 80, inter_chunk: 8, chunk_bytes: 8 },
        }
    }
}

/// Combined activity snapshot for the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 instruction cache counters.
    pub il1: CacheStats,
    /// L1 data cache counters.
    pub dl1: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Instruction TLB counters.
    pub itlb: CacheStats,
    /// Data TLB counters.
    pub dtlb: CacheStats,
    /// Main-memory line fills.
    pub memory_fills: u64,
}

impl riq_trace::ToJson for HierarchyStats {
    fn to_json(&self) -> riq_trace::JsonValue {
        riq_trace::JsonValue::obj([
            ("il1", self.il1.to_json()),
            ("dl1", self.dl1.to_json()),
            ("l2", self.l2.to_json()),
            ("itlb", self.itlb.to_json()),
            ("dtlb", self.dtlb.to_json()),
            ("memory_fills", self.memory_fills.to_json()),
        ])
    }
}

/// The composed memory system.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_mem::{HierarchyConfig, MemoryHierarchy};
/// let mut mem = MemoryHierarchy::new(HierarchyConfig::table1())?;
/// let cold = mem.fetch_latency(0x0040_0000);
/// let warm = mem.fetch_latency(0x0040_0000);
/// assert!(cold > warm, "second fetch hits the L1I");
/// assert_eq!(warm, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    memory: MainMemoryConfig,
    memory_fills: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Errors
    ///
    /// Returns the first invalid structure configuration.
    pub fn new(cfg: HierarchyConfig) -> Result<MemoryHierarchy, CacheConfigError> {
        Ok(MemoryHierarchy {
            il1: Cache::new(cfg.il1)?,
            dl1: Cache::new(cfg.dl1)?,
            l2: Cache::new(cfg.l2)?,
            itlb: Tlb::new(cfg.itlb)?,
            dtlb: Tlb::new(cfg.dtlb)?,
            memory: cfg.memory,
            memory_fills: 0,
        })
    }

    fn l2_fill(&mut self, addr: u32, is_write: bool) -> u64 {
        let res = self.l2.access(addr, is_write);
        if res.hit {
            self.l2.config().hit_latency
        } else {
            self.memory_fills += 1;
            let fill = self.memory.fill_latency(self.l2.config().line_bytes);
            self.l2.config().hit_latency + fill
        }
        // Dirty L2 evictions drain through a write buffer; they cost
        // activity (counted in stats) but no added latency.
    }

    /// Latency of an instruction fetch at `pc` (ITLB + L1I + L2 + memory).
    pub fn fetch_latency(&mut self, pc: u32) -> u64 {
        let tlb = self.itlb.translate(pc);
        let l1 = self.il1.access(pc, false);
        let lat = if l1.hit {
            self.il1.config().hit_latency
        } else {
            self.il1.config().hit_latency + self.l2_fill(pc, false)
        };
        tlb + lat
    }

    /// Latency of a data access (DTLB + L1D + L2 + memory). Dirty L1
    /// evictions additionally access the L2 (activity only).
    pub fn data_latency(&mut self, addr: u32, is_write: bool) -> u64 {
        let tlb = self.dtlb.translate(addr);
        let l1 = self.dl1.access(addr, is_write);
        let mut lat = self.dl1.config().hit_latency;
        if !l1.hit {
            lat += self.l2_fill(addr, false);
        }
        if let Some(victim) = l1.writeback_of {
            // Write-back of the dirty victim into L2: activity, no latency.
            let _ = self.l2.access(victim, true);
        }
        tlb + lat
    }

    /// Warms the instruction-side structures for a fetch at `pc` without
    /// counting activity: ITLB entry, L1I line, and — on an L1I miss — the
    /// L2 line. Used to replay a functional-warming window after a
    /// checkpoint restore.
    pub fn warm_fetch(&mut self, pc: u32) {
        self.itlb.warm(pc);
        if !self.il1.warm(pc, false).hit {
            self.l2.warm(pc, false);
        }
    }

    /// Warms the data-side structures for an access at `addr` without
    /// counting activity, mirroring [`MemoryHierarchy::data_latency`]:
    /// DTLB entry, L1D line (with the dirty bit on stores), L2 on an L1D
    /// miss, and the L2 line of any dirty victim written back.
    pub fn warm_data(&mut self, addr: u32, is_write: bool) {
        self.dtlb.warm(addr);
        let l1 = self.dl1.warm(addr, is_write);
        if !l1.hit {
            self.l2.warm(addr, false);
        }
        if let Some(victim) = l1.writeback_of {
            self.l2.warm(victim, true);
        }
    }

    /// Activity counters across all structures.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            il1: *self.il1.stats(),
            dl1: *self.dl1.stats(),
            l2: *self.l2.stats(),
            itlb: *self.itlb.stats(),
            dtlb: *self.dtlb.stats(),
            memory_fills: self.memory_fills,
        }
    }

    /// Invalidates every structure (cold restart).
    pub fn flush(&mut self) {
        self.il1.flush();
        self.dl1.flush();
        self.l2.flush();
        self.itlb.flush();
        self.dtlb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::table1()).unwrap()
    }

    #[test]
    fn fill_latency_math() {
        let m = MainMemoryConfig { first_chunk: 80, inter_chunk: 8, chunk_bytes: 8 };
        assert_eq!(m.fill_latency(8), 80);
        assert_eq!(m.fill_latency(32), 80 + 3 * 8);
        assert_eq!(m.fill_latency(64), 80 + 7 * 8);
        assert_eq!(m.fill_latency(1), 80);
    }

    #[test]
    fn cold_fetch_pays_full_stack() {
        let mut mem = mk();
        let lat = mem.fetch_latency(0x0040_0000);
        // ITLB miss (30) + L1I (1) + L2 (8) + memory fill of a 64 B line.
        assert_eq!(lat, 30 + 1 + 8 + 80 + 7 * 8);
    }

    #[test]
    fn l2_catches_l1_conflicts() {
        let mut mem = mk();
        mem.data_latency(0x0, false);
        // Evict from direct L1 set by touching a conflicting line far away,
        // then return: should hit in L2 (latency 1 + 8, TLB warm... the
        // second page access pays DTLB misses; use same page).
        let a = 0x0;
        let b = 32 * 256 * 4; // same L1D set, different tag, same... (different page)
        mem.data_latency(b, false);
        let lat = mem.data_latency(a, false);
        assert_eq!(lat, 1, "still resident in 4-way L1D");
    }

    #[test]
    fn dirty_writeback_counts_l2_write() {
        let cfg = HierarchyConfig {
            dl1: CacheConfig { sets: 1, ways: 1, line_bytes: 32, hit_latency: 1 },
            ..HierarchyConfig::table1()
        };
        let mut mem = MemoryHierarchy::new(cfg).unwrap();
        mem.data_latency(0x100, true); // dirty
        let l2_writes_before = mem.stats().l2.writes;
        mem.data_latency(0x4100, false); // evicts dirty line
        assert_eq!(mem.stats().l2.writes, l2_writes_before + 1);
        assert_eq!(mem.stats().dl1.writebacks, 1);
    }

    #[test]
    fn stats_aggregate() {
        let mut mem = mk();
        mem.fetch_latency(0x400000);
        mem.fetch_latency(0x400004);
        mem.data_latency(0x10000000, false);
        let s = mem.stats();
        assert_eq!(s.il1.accesses(), 2);
        assert_eq!(s.dl1.accesses(), 1);
        assert_eq!(s.itlb.accesses(), 2);
        assert!(s.memory_fills >= 2);
    }

    #[test]
    fn warming_primes_without_counting() {
        let mut mem = mk();
        mem.warm_fetch(0x400000);
        mem.warm_data(0x10000000, true);
        assert_eq!(mem.stats(), HierarchyStats::default(), "warming is stats-neutral");
        assert_eq!(mem.fetch_latency(0x400000), 1, "warmed fetch hits L1I");
        assert_eq!(mem.data_latency(0x10000000, false), 1, "warmed access hits L1D");
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut mem = mk();
        mem.fetch_latency(0x400000);
        assert_eq!(mem.fetch_latency(0x400000), 1);
        mem.flush();
        assert!(mem.fetch_latency(0x400000) > 1);
    }
}
