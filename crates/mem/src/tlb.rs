//! Translation lookaside buffer timing model.
//!
//! Like the caches, TLBs here model timing/activity only: the simulator
//! uses flat physical addresses, so the TLB's job is to charge the miss
//! penalty from Table 1 of the paper (set-associative, 4 KB pages).

use crate::cache::{Cache, CacheConfig, CacheConfigError, CacheStats};

/// Page size assumed by the TLBs (Table 1: 4 KB).
pub const PAGE_BYTES: u32 = 4096;

/// Configuration of one TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Cycles charged on a miss.
    pub miss_penalty: u64,
}

/// A set-associative TLB built over the cache array model, tracking one
/// entry per 4 KB page.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_mem::{Tlb, TlbConfig};
/// let mut tlb = Tlb::new(TlbConfig { sets: 16, ways: 4, miss_penalty: 30 })?;
/// assert_eq!(tlb.translate(0x40_0000), 30, "cold miss pays the penalty");
/// assert_eq!(tlb.translate(0x40_0ffc), 0, "same page hits");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    array: Cache,
    miss_penalty: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry is invalid.
    pub fn new(cfg: TlbConfig) -> Result<Tlb, CacheConfigError> {
        // Model each TLB entry as a "line" covering one page.
        let array = Cache::new(CacheConfig {
            sets: cfg.sets,
            ways: cfg.ways,
            line_bytes: PAGE_BYTES,
            hit_latency: 0,
        })?;
        Ok(Tlb { array, miss_penalty: cfg.miss_penalty })
    }

    /// Presents a virtual address; returns the extra cycles charged
    /// (zero on a hit, the miss penalty on a miss).
    pub fn translate(&mut self, addr: u32) -> u64 {
        if self.array.access(addr, false).hit {
            0
        } else {
            self.miss_penalty
        }
    }

    /// Installs the entry for `addr` without counting the access, for
    /// functional warming after a checkpoint restore.
    pub fn warm(&mut self, addr: u32) {
        self.array.warm(addr, false);
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        self.array.stats()
    }

    /// Invalidates all entries.
    pub fn flush(&mut self) {
        self.array.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut tlb = Tlb::new(TlbConfig { sets: 4, ways: 2, miss_penalty: 30 }).unwrap();
        assert_eq!(tlb.translate(0x1000), 30);
        assert_eq!(tlb.translate(0x1004), 0);
        assert_eq!(tlb.translate(0x1fff & !3), 0);
        assert_eq!(tlb.translate(0x2000), 30, "next page misses");
    }

    #[test]
    fn capacity_eviction() {
        // 1 set x 1 way: any second page evicts the first.
        let mut tlb = Tlb::new(TlbConfig { sets: 1, ways: 1, miss_penalty: 30 }).unwrap();
        tlb.translate(0x1000);
        tlb.translate(0x2000);
        assert_eq!(tlb.translate(0x1000), 30);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut tlb = Tlb::new(TlbConfig { sets: 16, ways: 4, miss_penalty: 30 }).unwrap();
        tlb.translate(0x5000);
        tlb.translate(0x5000);
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }
}
