//! # riq-mem — memory-hierarchy timing models
//!
//! Timing and activity models for the memory system of the paper's Table 1
//! baseline: split 32 KB L1 caches, a 256 KB unified L2, I/D TLBs, and a
//! chunked main-memory latency model. These are *timing* models only —
//! data values live in the functional memory of `riq-emu`, exactly as in
//! SimpleScalar, whose `cache.c` this crate mirrors.
//!
//! The cycle simulator asks two questions per access and overlaps the
//! answers out of order:
//!
//! * [`MemoryHierarchy::fetch_latency`] — instruction fetch (ITLB → L1I →
//!   L2 → memory);
//! * [`MemoryHierarchy::data_latency`] — load/store (DTLB → L1D → L2 →
//!   memory, with dirty-eviction write-backs).
//!
//! Every structure keeps activity counters ([`CacheStats`]) that the
//! `riq-power` model turns into energy.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_mem::{HierarchyConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::table1())?;
//! let cold = mem.data_latency(0x1000_0000, false);
//! let warm = mem.data_latency(0x1000_0000, false);
//! assert!(cold > warm);
//! assert_eq!(mem.stats().dl1.accesses(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod hierarchy;
mod tlb;

pub use cache::{Cache, CacheAccess, CacheConfig, CacheConfigError, CacheStats};
pub use hierarchy::{HierarchyConfig, HierarchyStats, MainMemoryConfig, MemoryHierarchy};
pub use tlb::{Tlb, TlbConfig, PAGE_BYTES};
