//! Set-associative cache timing model.
//!
//! This models *timing and activity only* — data values live in the
//! functional memory. The model is a write-back, write-allocate,
//! true-LRU set-associative cache, matching SimpleScalar's `cache.c`
//! defaults used by the paper's baseline (Table 1).

use std::error::Error;
use std::fmt;

/// Geometry and latency of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u32,
    /// Access latency in cycles on a hit.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.sets * self.ways * self.line_bytes
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns an error if any dimension is zero or a non-power-of-two
    /// where a power of two is required.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(CacheConfigError::BadSets(self.sets));
        }
        if self.ways == 0 {
            return Err(CacheConfigError::BadWays(self.ways));
        }
        if self.line_bytes < 4 || !self.line_bytes.is_power_of_two() {
            return Err(CacheConfigError::BadLine(self.line_bytes));
        }
        Ok(())
    }
}

/// Error validating a [`CacheConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Set count must be a non-zero power of two.
    BadSets(u32),
    /// Associativity must be non-zero.
    BadWays(u32),
    /// Line size must be a power of two and at least 4 bytes.
    BadLine(u32),
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::BadSets(n) => {
                write!(f, "cache sets must be a non-zero power of two, got {n}")
            }
            CacheConfigError::BadWays(n) => write!(f, "cache ways must be non-zero, got {n}"),
            CacheConfigError::BadLine(n) => {
                write!(f, "cache line size must be a power of two >= 4, got {n}")
            }
        }
    }
}

impl Error for CacheConfigError {}

/// Per-cache activity counters (inputs to the power model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses presented to the cache.
    pub reads: u64,
    /// Write accesses presented to the cache.
    pub writes: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Miss ratio in `[0, 1]`, zero when idle.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

impl riq_trace::ToJson for CacheStats {
    fn to_json(&self) -> riq_trace::JsonValue {
        riq_trace::JsonValue::obj([
            ("reads", self.reads.to_json()),
            ("writes", self.writes.to_json()),
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
            ("writebacks", self.writebacks.to_json()),
            ("miss_rate", self.miss_rate().to_json()),
        ])
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    dirty: bool,
    last_use: u64,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// Address of a dirty line evicted by the fill, if any.
    pub writeback_of: Option<u32>,
}

/// A write-back, write-allocate, true-LRU set-associative cache.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { sets: 2, ways: 1, line_bytes: 16, hit_latency: 1 })?;
/// assert!(!c.access(0x100, false).hit, "cold miss");
/// assert!(c.access(0x104, false).hit, "same line");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Option<Line>>, // sets * ways, row-major by set
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(cfg: CacheConfig) -> Result<Cache, CacheConfigError> {
        cfg.validate()?;
        Ok(Cache {
            cfg,
            lines: vec![None; (cfg.sets * cfg.ways) as usize],
            stats: CacheStats::default(),
            tick: 0,
        })
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Activity counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_and_tag(&self, addr: u32) -> (u32, u32) {
        let line = addr / self.cfg.line_bytes;
        (line % self.cfg.sets, line / self.cfg.sets)
    }

    /// Presents an access; fills on miss (write-allocate) and returns the
    /// hit/miss outcome plus any dirty eviction.
    pub fn access(&mut self, addr: u32, is_write: bool) -> CacheAccess {
        self.tick += 1;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let (set, tag) = self.set_and_tag(addr);
        let base = (set * self.cfg.ways) as usize;
        let ways = &mut self.lines[base..base + self.cfg.ways as usize];

        // Hit?
        for line in ways.iter_mut().flatten() {
            if line.tag == tag {
                line.last_use = self.tick;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return CacheAccess { hit: true, writeback_of: None };
            }
        }
        self.stats.misses += 1;

        // Fill: choose an invalid way or the LRU victim.
        let victim = match ways.iter().position(Option::is_none) {
            Some(i) => i,
            None => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.map_or(0, |l| l.last_use))
                .map(|(i, _)| i)
                .unwrap_or(0),
        };
        let mut writeback_of = None;
        if let Some(old) = ways[victim] {
            if old.dirty {
                self.stats.writebacks += 1;
                let old_line = old.tag * self.cfg.sets + set;
                writeback_of = Some(old_line * self.cfg.line_bytes);
            }
        }
        ways[victim] = Some(Line { tag, dirty: is_write, last_use: self.tick });
        CacheAccess { hit: false, writeback_of }
    }

    /// Presents an access without counting it: the tag array, LRU order and
    /// dirty bits update exactly as in [`Cache::access`], but the activity
    /// counters are left untouched. Used for functional warming after a
    /// checkpoint restore, where the warm-up window must prime the arrays
    /// without polluting the measured statistics (or the power model fed by
    /// them).
    pub fn warm(&mut self, addr: u32, is_write: bool) -> CacheAccess {
        let saved = self.stats;
        let outcome = self.access(addr, is_write);
        self.stats = saved;
        outcome
    }

    /// Invalidates all lines, discarding dirty data (used between runs).
    pub fn flush(&mut self) {
        self.lines.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(sets: u32, ways: u32, line: u32) -> Cache {
        Cache::new(CacheConfig { sets, ways, line_bytes: line, hit_latency: 1 }).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig { sets: 0, ways: 1, line_bytes: 16, hit_latency: 1 }
            .validate()
            .is_err());
        assert!(CacheConfig { sets: 3, ways: 1, line_bytes: 16, hit_latency: 1 }
            .validate()
            .is_err());
        assert!(CacheConfig { sets: 4, ways: 0, line_bytes: 16, hit_latency: 1 }
            .validate()
            .is_err());
        assert!(CacheConfig { sets: 4, ways: 2, line_bytes: 2, hit_latency: 1 }
            .validate()
            .is_err());
        let ok = CacheConfig { sets: 128, ways: 4, line_bytes: 32, hit_latency: 1 };
        assert!(ok.validate().is_ok());
        assert_eq!(ok.capacity(), 16384);
    }

    #[test]
    fn spatial_locality_hits() {
        let mut c = mk(4, 1, 32);
        assert!(!c.access(0x1000, false).hit);
        for off in (4..32).step_by(4) {
            assert!(c.access(0x1000 + off, false).hit, "offset {off}");
        }
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 7);
    }

    #[test]
    fn conflict_misses_in_direct_mapped() {
        let mut c = mk(2, 1, 16);
        // 0x00 and 0x20 map to set 0 with different tags.
        assert!(!c.access(0x00, false).hit);
        assert!(!c.access(0x20, false).hit);
        assert!(!c.access(0x00, false).hit, "evicted by 0x20");
    }

    #[test]
    fn lru_replacement_order() {
        let mut c = mk(1, 2, 16);
        c.access(0x00, false); // A
        c.access(0x10, false); // B
        c.access(0x00, false); // touch A => B is LRU
        c.access(0x20, false); // C evicts B
        assert!(c.access(0x00, false).hit, "A stayed");
        assert!(!c.access(0x10, false).hit, "B was evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = mk(1, 1, 16);
        c.access(0x40, true); // dirty line at 0x40
        let res = c.access(0x80, false);
        assert!(!res.hit);
        assert_eq!(res.writeback_of, Some(0x40));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = mk(1, 1, 16);
        c.access(0x40, false);
        let res = c.access(0x80, false);
        assert_eq!(res.writeback_of, None);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_allocate() {
        let mut c = mk(4, 2, 32);
        assert!(!c.access(0x100, true).hit);
        assert!(c.access(0x100, false).hit, "write allocated the line");
    }

    #[test]
    fn flush_invalidates() {
        let mut c = mk(4, 2, 32);
        c.access(0x100, false);
        c.flush();
        assert!(!c.access(0x100, false).hit);
    }

    #[test]
    fn warm_fills_without_counting() {
        let mut c = mk(4, 2, 32);
        assert!(!c.warm(0x100, false).hit, "cold warm access misses");
        assert_eq!(*c.stats(), CacheStats::default(), "warming leaves counters untouched");
        assert!(c.access(0x100, false).hit, "warmed line hits");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().accesses(), 1);
    }

    #[test]
    fn stats_identities() {
        let mut c = mk(8, 2, 32);
        for i in 0..100u32 {
            c.access(i * 8, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses());
        assert!(s.miss_rate() > 0.0 && s.miss_rate() <= 1.0);
    }
}
