//! Property tests on the power model: accounting identities, monotonicity
//! of gating, and geometry scaling.

use proptest::prelude::*;
use riq_power::{
    Activity, Component, ComponentGroup, PowerConfig, PowerModel, GATED_FRACTION, IDLE_FRACTION,
};

fn arbitrary_activity() -> impl Strategy<Value = Activity> {
    prop::collection::vec(0u32..4, Component::ALL.len()).prop_map(|counts| {
        let mut act = Activity::new();
        for (c, n) in Component::ALL.into_iter().zip(counts) {
            act.add(c, n);
        }
        act
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    #[test]
    fn group_energies_sum_to_total(acts in prop::collection::vec(arbitrary_activity(), 1..50)) {
        let mut m = PowerModel::new(&PowerConfig::table1());
        for (i, a) in acts.iter().enumerate() {
            m.end_cycle(a, i % 3 == 0);
        }
        let r = m.report();
        let group_sum: f64 = ComponentGroup::ALL.iter().map(|&g| r.group_energy(g)).sum();
        prop_assert!((group_sum - r.total_energy()).abs() < 1e-6 * r.total_energy().max(1.0));
        prop_assert!(r.total_energy() > 0.0, "cc3 idle power is never zero");
        prop_assert_eq!(r.cycles, acts.len() as u64);
    }

    #[test]
    fn gating_a_cycle_never_costs_more(act_gated in arbitrary_activity()) {
        // For identical activity, a gated cycle consumes <= an ungated one
        // (front-end idle power drops to the gated fraction; everything
        // else is unchanged).
        let cfg = PowerConfig::table1();
        let mut gated = PowerModel::new(&cfg);
        let mut ungated = PowerModel::new(&cfg);
        gated.end_cycle(&act_gated, true);
        ungated.end_cycle(&act_gated, false);
        let g = gated.report().total_energy();
        let u = ungated.report().total_energy();
        prop_assert!(g <= u + 1e-12, "gated {g} > ungated {u}");
    }

    #[test]
    fn more_activity_never_reduces_energy(base in arbitrary_activity(), extra in 0u32..5) {
        let cfg = PowerConfig::table1();
        let mut low = PowerModel::new(&cfg);
        let mut high = PowerModel::new(&cfg);
        low.end_cycle(&base, false);
        let mut more = base;
        more.add(Component::IntAlu, extra);
        more.add(Component::Dcache, extra);
        high.end_cycle(&more, false);
        prop_assert!(high.report().total_energy() >= low.report().total_energy() - 1e-12);
    }

    #[test]
    fn larger_queues_cost_more_per_access(iq in 8u32..256) {
        let small = PowerModel::new(&PowerConfig { iq_entries: iq, ..PowerConfig::table1() });
        let large = PowerModel::new(&PowerConfig { iq_entries: iq * 2, ..PowerConfig::table1() });
        for c in [
            Component::IqInsert,
            Component::IqWakeup,
            Component::IqIssueRead,
            Component::IqPartialUpdate,
            Component::Lrl,
        ] {
            prop_assert!(
                large.unit_energy(c) > small.unit_energy(c),
                "{c} must grow with queue size"
            );
        }
    }

    #[test]
    fn idle_and_gated_fractions_bracket_reality(cycles in 1u64..100) {
        // An always-idle ungated model burns IDLE_FRACTION of peak per
        // structure per cycle; gated burns GATED_FRACTION for front-end
        // structures. Check the front-end ratio lands between the two.
        let cfg = PowerConfig::table1();
        let mut idle = PowerModel::new(&cfg);
        let mut gated = PowerModel::new(&cfg);
        for _ in 0..cycles {
            idle.end_cycle(&Activity::new(), false);
            gated.end_cycle(&Activity::new(), true);
        }
        for c in [Component::Icache, Component::Decode, Component::BpredDir] {
            let r = gated.report().energy(c) / idle.report().energy(c);
            let expect = GATED_FRACTION / IDLE_FRACTION;
            prop_assert!((r - expect).abs() < 1e-9, "{c}: ratio {r}");
        }
    }
}
