//! Analytic per-access energy formulas for array structures.
//!
//! Wattch derives per-access capacitances from detailed 0.35 µm circuit
//! models (Cacti-style). This reproduction only needs *relative* energies —
//! the paper reports percentage reductions — so we use a compact analytic
//! model whose terms scale the way the Wattch/Cacti components do:
//!
//! * decoder energy ∝ log2(rows);
//! * bitline energy ∝ rows (every cell on the column loads the bitline);
//! * wordline + sense energy ∝ bits per row;
//! * everything multiplied by the number of ports (ports also lengthen
//!   word/bitlines; we fold that into the linear port factor);
//! * CAM match adds a full tag-comparison term across all rows.
//!
//! Energies are in arbitrary units (think picojoules at some fixed V²);
//! only ratios matter and the constants below were calibrated so that the
//! baseline per-component power breakdown lands in the regime Wattch
//! reports for an R10000-class core.

/// Geometry of a RAM-like array (register files, queues, cache data/tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayGeometry {
    /// Number of rows (entries or sets).
    pub rows: u32,
    /// Bits per row (entry width, or line+tag bits × ways for caches).
    pub bits: u32,
    /// Total read+write ports.
    pub ports: u32,
}

const C_DECODE: f64 = 0.6;
const C_BITLINE: f64 = 0.012;
const C_WORDLINE: f64 = 0.018;
const C_SENSE: f64 = 0.03;
const C_CAM_MATCH: f64 = 0.01;

/// Per-access read/write energy of a RAM array.
///
/// # Examples
///
/// ```
/// use riq_power::{ram_access_energy, ArrayGeometry};
/// let small = ram_access_energy(ArrayGeometry { rows: 64, bits: 64, ports: 2 });
/// let large = ram_access_energy(ArrayGeometry { rows: 256, bits: 64, ports: 2 });
/// assert!(large > small, "bigger arrays cost more per access");
/// ```
#[must_use]
pub fn ram_access_energy(g: ArrayGeometry) -> f64 {
    let rows = f64::from(g.rows.max(1));
    let bits = f64::from(g.bits.max(1));
    let ports = f64::from(g.ports.max(1));
    ports * (C_DECODE * rows.log2().max(1.0) + C_BITLINE * rows + (C_WORDLINE + C_SENSE) * bits)
}

/// Per-search energy of a CAM (content-addressed) array: every row
/// participates in the match, which is why wakeup and NBLT searches are
/// expensive relative to indexed reads.
///
/// # Examples
///
/// ```
/// use riq_power::cam_search_energy;
/// assert!(cam_search_energy(64, 8, 4) > cam_search_energy(8, 8, 4));
/// ```
#[must_use]
pub fn cam_search_energy(rows: u32, tag_bits: u32, ports: u32) -> f64 {
    let rows = f64::from(rows.max(1));
    let tag_bits = f64::from(tag_bits.max(1));
    let ports = f64::from(ports.max(1));
    ports * C_CAM_MATCH * rows * tag_bits
}

/// Per-access energy of a set-associative cache: all ways of the indexed
/// set are read in parallel (data + tags), plus tag comparison.
#[must_use]
pub fn cache_access_energy(sets: u32, ways: u32, line_bytes: u32, ports: u32) -> f64 {
    let tag_bits = 24u32; // address tag + state, per way
    let bits = line_bytes * 8 * ways + tag_bits * ways;
    ram_access_energy(ArrayGeometry { rows: sets, bits, ports })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_every_dimension() {
        let base = ArrayGeometry { rows: 64, bits: 64, ports: 1 };
        let e = ram_access_energy(base);
        assert!(ram_access_energy(ArrayGeometry { rows: 128, ..base }) > e);
        assert!(ram_access_energy(ArrayGeometry { bits: 128, ..base }) > e);
        assert!(ram_access_energy(ArrayGeometry { ports: 2, ..base }) > e);
    }

    #[test]
    fn ports_scale_linearly() {
        let g1 = ArrayGeometry { rows: 64, bits: 64, ports: 1 };
        let g4 = ArrayGeometry { rows: 64, bits: 64, ports: 4 };
        let r = ram_access_energy(g4) / ram_access_energy(g1);
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_geometries_are_finite() {
        let e = ram_access_energy(ArrayGeometry { rows: 0, bits: 0, ports: 0 });
        assert!(e.is_finite() && e > 0.0);
        assert!(cam_search_energy(0, 0, 0).is_finite());
    }

    #[test]
    fn bigger_caches_cost_more() {
        let l1 = cache_access_energy(512, 2, 32, 1);
        let l2 = cache_access_energy(1024, 4, 64, 1);
        assert!(l2 > l1);
    }

    #[test]
    fn cam_grows_with_rows() {
        // A 256-entry wakeup CAM must cost ~4x a 64-entry one.
        let e64 = cam_search_energy(64, 8, 1);
        let e256 = cam_search_energy(256, 8, 1);
        assert!((e256 / e64 - 4.0).abs() < 1e-9);
    }
}
