//! # riq-power — Wattch-style architectural power model
//!
//! The paper evaluates its reuse issue queue with Wattch (Brooks et al.,
//! HPCA 2000) on top of SimpleScalar. This crate fills that role: it turns
//! the cycle simulator's per-cycle activity counts into per-component
//! energies using geometry-derived per-access costs and cc3-style
//! conditional clocking (idle structures burn 10 % of peak, clock-gated
//! structures 2 %).
//!
//! Absolute units are arbitrary — the paper only reports *relative* power,
//! and so do our reproduced figures. What the model preserves from Wattch:
//!
//! * per-access energy grows with structure size (rows/bits/ports), so a
//!   256-entry issue queue's wakeup CAM really costs 8× a 32-entry one;
//! * idle-vs-gated distinction, which is the entire mechanism behind the
//!   paper's front-end savings;
//! * a clock-network component with a front-end share that stops toggling
//!   while gated;
//! * explicit overhead components for the reuse machinery (Logical
//!   Register List, Non-Bufferable Loop Table, control), reported as the
//!   "Overhead" series of Figure 6.
//!
//! # Examples
//!
//! ```
//! use riq_power::{Activity, Component, ComponentGroup, PowerConfig, PowerModel};
//!
//! let mut model = PowerModel::new(&PowerConfig::table1());
//! let mut act = Activity::new();
//! act.add(Component::Icache, 1);
//! act.add(Component::Decode, 4);
//! model.end_cycle(&act, false);          // a normal cycle
//! model.end_cycle(&Activity::new(), true); // a front-end-gated cycle
//! let report = model.report();
//! assert!(report.group_energy(ComponentGroup::Icache) > 0.0);
//! assert_eq!(report.gated_cycles, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod energy;
mod model;

pub use energy::{cache_access_energy, cam_search_energy, ram_access_energy, ArrayGeometry};
pub use model::{
    Activity, ClassEnergyProfile, Component, ComponentGroup, EnergyClass, PowerConfig, PowerModel,
    PowerReport, CLOCK_FRACTION, CLOCK_FRONT_END_SHARE, GATED_FRACTION, IDLE_FRACTION,
    NUM_COMPONENTS,
};
