//! The architectural power model: components, activity, accounting.
//!
//! Follows Wattch's methodology: per-structure per-access energies derived
//! from geometry (see [`crate::energy`]), activity counted by the cycle
//! simulator, and *conditional clocking* in the cc3 style — a structure
//! that performs no access in a cycle still burns 10 % of its peak power
//! (clock and precharge), and a clock-*gated* structure burns 2 %. The
//! front-end gating of the reuse issue queue maps exactly onto that last
//! state.

use crate::energy::{cache_access_energy, cam_search_energy, ram_access_energy, ArrayGeometry};
use std::fmt;

/// Fraction of peak power burned by an idle (but clocked) structure.
pub const IDLE_FRACTION: f64 = 0.10;
/// Fraction of peak power burned by a clock-gated structure.
pub const GATED_FRACTION: f64 = 0.02;
/// Fraction of the chip's summed peak that the clock network burns each
/// cycle.
pub const CLOCK_FRACTION: f64 = 0.22;
/// Share of the clock network that serves the front-end stages (saved
/// while the pipeline front-end is gated).
pub const CLOCK_FRONT_END_SHARE: f64 = 0.18;

/// A power-tracked hardware component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
#[allow(missing_docs)] // names mirror the hardware structures directly
pub enum Component {
    Icache,
    Itlb,
    BpredDir,
    Btb,
    Ras,
    FetchQueue,
    Decode,
    RenameTable,
    IqInsert,
    IqWakeup,
    IqSelect,
    IqIssueRead,
    IqPartialUpdate,
    IqCollapse,
    Rob,
    Lsq,
    Regfile,
    IntAlu,
    IntMult,
    FpAlu,
    FpMult,
    Dcache,
    Dtlb,
    L2,
    ResultBus,
    Clock,
    Lrl,
    Nblt,
    ReuseCtl,
}

/// Number of tracked components.
pub const NUM_COMPONENTS: usize = 29;

impl Component {
    /// All components, in index order.
    pub const ALL: [Component; NUM_COMPONENTS] = [
        Component::Icache,
        Component::Itlb,
        Component::BpredDir,
        Component::Btb,
        Component::Ras,
        Component::FetchQueue,
        Component::Decode,
        Component::RenameTable,
        Component::IqInsert,
        Component::IqWakeup,
        Component::IqSelect,
        Component::IqIssueRead,
        Component::IqPartialUpdate,
        Component::IqCollapse,
        Component::Rob,
        Component::Lsq,
        Component::Regfile,
        Component::IntAlu,
        Component::IntMult,
        Component::FpAlu,
        Component::FpMult,
        Component::Dcache,
        Component::Dtlb,
        Component::L2,
        Component::ResultBus,
        Component::Clock,
        Component::Lrl,
        Component::Nblt,
        Component::ReuseCtl,
    ];

    /// Flat index.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this structure is inside the gateable pipeline front-end
    /// (stages before register renaming, §1 of the paper).
    #[must_use]
    pub fn is_front_end(self) -> bool {
        matches!(
            self,
            Component::Icache
                | Component::Itlb
                | Component::BpredDir
                | Component::Btb
                | Component::Ras
                | Component::FetchQueue
                | Component::Decode
        )
    }

    /// The reporting group this component belongs to.
    #[must_use]
    pub fn group(self) -> ComponentGroup {
        match self {
            Component::Icache => ComponentGroup::Icache,
            Component::BpredDir | Component::Btb | Component::Ras => ComponentGroup::Bpred,
            Component::IqInsert
            | Component::IqWakeup
            | Component::IqSelect
            | Component::IqIssueRead
            | Component::IqPartialUpdate
            | Component::IqCollapse => ComponentGroup::IssueQueue,
            Component::Lrl | Component::Nblt | Component::ReuseCtl => ComponentGroup::Overhead,
            Component::Clock => ComponentGroup::Clock,
            _ => ComponentGroup::Other,
        }
    }

    /// The instruction class whose execution dominates this component's
    /// activity, or `None` for structures shared by every instruction
    /// (fetch, rename, queues, clock, ...). The partition lets
    /// [`ClassEnergyProfile`] reweight per-class energy without
    /// double-counting: `Σ class_energy + shared_energy == total_energy`.
    #[must_use]
    pub fn energy_class(self) -> Option<EnergyClass> {
        match self {
            Component::IntAlu | Component::IntMult => Some(EnergyClass::Int),
            Component::FpAlu | Component::FpMult => Some(EnergyClass::Fp),
            Component::Dcache | Component::Dtlb => Some(EnergyClass::Load),
            Component::Lsq => Some(EnergyClass::Store),
            Component::BpredDir | Component::Btb | Component::Ras => Some(EnergyClass::Branch),
            _ => None,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Reporting groups used by the paper's Figure 6/7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentGroup {
    /// The L1 instruction cache.
    Icache,
    /// Direction table + BTB + RAS.
    Bpred,
    /// All issue-queue activity (insert, wakeup, select, read, partial
    /// update, collapse).
    IssueQueue,
    /// Reuse-mechanism overhead: LRL, NBLT, control.
    Overhead,
    /// The clock network.
    Clock,
    /// Everything else (ROB, LSQ, FUs, data caches, buses, ...).
    Other,
}

impl ComponentGroup {
    /// All groups.
    pub const ALL: [ComponentGroup; 6] = [
        ComponentGroup::Icache,
        ComponentGroup::Bpred,
        ComponentGroup::IssueQueue,
        ComponentGroup::Overhead,
        ComponentGroup::Clock,
        ComponentGroup::Other,
    ];
}

/// Instruction classes the scaled model attributes class-specific energy
/// to (the profiled low-energy-ISA decomposition: arXiv 2103.08910).
/// Components serving every class — fetch, rename, queues, clock — stay
/// outside the partition as *shared* energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyClass {
    /// Integer ALU / multiply execution.
    Int,
    /// Floating-point execution.
    Fp,
    /// Data-cache and data-TLB access.
    Load,
    /// Store-queue residency and search.
    Store,
    /// Branch prediction structures.
    Branch,
}

impl EnergyClass {
    /// All classes, in reporting order.
    pub const ALL: [EnergyClass; 5] = [
        EnergyClass::Int,
        EnergyClass::Fp,
        EnergyClass::Load,
        EnergyClass::Store,
        EnergyClass::Branch,
    ];

    /// Stable lowercase label (CSV row names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EnergyClass::Int => "int",
            EnergyClass::Fp => "fp",
            EnergyClass::Load => "load",
            EnergyClass::Store => "store",
            EnergyClass::Branch => "branch",
        }
    }
}

impl fmt::Display for EnergyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-instruction-class energy weights applied on top of the scaled
/// model. The default profile is all-ones, under which
/// [`PowerReport::weighted_total_energy`] reproduces
/// [`PowerReport::total_energy`] exactly — weights reshape the class
/// decomposition, they do not add energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassEnergyProfile {
    /// Integer execution weight.
    pub int: f64,
    /// Floating-point execution weight.
    pub fp: f64,
    /// Load (D-cache/D-TLB) weight.
    pub load: f64,
    /// Store (LSQ) weight.
    pub store: f64,
    /// Branch-prediction weight.
    pub branch: f64,
}

impl Default for ClassEnergyProfile {
    fn default() -> Self {
        ClassEnergyProfile { int: 1.0, fp: 1.0, load: 1.0, store: 1.0, branch: 1.0 }
    }
}

impl ClassEnergyProfile {
    /// Calibrated non-uniform profile, derived from the model's own
    /// per-access energies (the Table-1-sized structures each class
    /// exercises), normalized to the integer ALU: FP datapaths cost
    /// roughly twice an integer op per access, loads pay the
    /// D-cache/D-TLB lookup, stores the cheaper LSQ insert, and branch
    /// direction/BTB lookups are fractions of an ALU op. Use this when
    /// per-class attribution should reflect datapath cost rather than
    /// raw component energy; the all-ones [`Default`] remains the
    /// identity that reproduces [`PowerReport::total_energy`] exactly.
    #[must_use]
    pub fn calibrated() -> ClassEnergyProfile {
        ClassEnergyProfile { int: 1.0, fp: 2.0, load: 1.6, store: 1.3, branch: 0.5 }
    }

    /// The weight for one class.
    #[must_use]
    pub fn weight(&self, class: EnergyClass) -> f64 {
        match class {
            EnergyClass::Int => self.int,
            EnergyClass::Fp => self.fp,
            EnergyClass::Load => self.load,
            EnergyClass::Store => self.store,
            EnergyClass::Branch => self.branch,
        }
    }
}

/// Structure sizes the per-access energies are derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerConfig {
    /// Fetch/decode width (instructions per cycle).
    pub fetch_width: u32,
    /// Issue/commit width.
    pub issue_width: u32,
    /// Fetch-queue entries.
    pub fetch_queue: u32,
    /// Issue-queue entries.
    pub iq_entries: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Load/store-queue entries.
    pub lsq_entries: u32,
    /// L1I geometry `(sets, ways, line_bytes)`.
    pub icache: (u32, u32, u32),
    /// L1D geometry.
    pub dcache: (u32, u32, u32),
    /// L2 geometry.
    pub l2: (u32, u32, u32),
    /// Direction-predictor entries.
    pub bpred_entries: u32,
    /// BTB `(sets, ways)`.
    pub btb: (u32, u32),
    /// RAS entries.
    pub ras_entries: u32,
    /// Non-bufferable-loop-table entries (0 disables its cost).
    pub nblt_entries: u32,
}

impl PowerConfig {
    /// The paper's Table 1 baseline with a 64-entry issue queue.
    #[must_use]
    pub fn table1() -> PowerConfig {
        PowerConfig {
            fetch_width: 4,
            issue_width: 4,
            fetch_queue: 4,
            iq_entries: 64,
            rob_entries: 64,
            lsq_entries: 32,
            icache: (512, 2, 32),
            dcache: (256, 4, 32),
            l2: (1024, 4, 64),
            bpred_entries: 2048,
            btb: (512, 4),
            ras_entries: 8,
            nblt_entries: 8,
        }
    }
}

/// Per-cycle activity counts, filled in by the simulator and consumed by
/// [`PowerModel::end_cycle`].
#[derive(Debug, Clone, Copy)]
pub struct Activity {
    counts: [u32; NUM_COMPONENTS],
}

impl Default for Activity {
    fn default() -> Self {
        Activity { counts: [0; NUM_COMPONENTS] }
    }
}

impl Activity {
    /// Creates an all-zero activity record.
    #[must_use]
    pub fn new() -> Activity {
        Activity::default()
    }

    /// Adds `n` accesses to `component` this cycle.
    pub fn add(&mut self, component: Component, n: u32) {
        self.counts[component.index()] += n;
    }

    /// Accesses recorded for `component` this cycle.
    #[must_use]
    pub fn count(&self, component: Component) -> u32 {
        self.counts[component.index()]
    }

    /// Resets all counts (reused between cycles to avoid reallocation).
    pub fn clear(&mut self) {
        self.counts = [0; NUM_COMPONENTS];
    }
}

/// The accumulating power model.
///
/// # Examples
///
/// ```
/// use riq_power::{Activity, Component, PowerConfig, PowerModel};
///
/// let mut model = PowerModel::new(&PowerConfig::table1());
/// let mut act = Activity::new();
/// act.add(Component::Icache, 1);
/// model.end_cycle(&act, false);
/// act.clear();
/// model.end_cycle(&act, true); // a gated cycle
/// let report = model.report();
/// assert_eq!(report.cycles, 2);
/// assert!(report.total_energy() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PowerModel {
    unit: [f64; NUM_COMPONENTS],
    peak: [f64; NUM_COMPONENTS],
    energy: [f64; NUM_COMPONENTS],
    clock_per_cycle: f64,
    cycles: u64,
    gated_cycles: u64,
}

impl PowerModel {
    /// Builds the model, deriving per-access energies from `cfg`.
    #[must_use]
    pub fn new(cfg: &PowerConfig) -> PowerModel {
        let mut unit = [0.0; NUM_COMPONENTS];
        let ram = |rows, bits, ports| ram_access_energy(ArrayGeometry { rows, bits, ports });
        let w = cfg.issue_width;

        unit[Component::Icache.index()] =
            cache_access_energy(cfg.icache.0, cfg.icache.1, cfg.icache.2, 1);
        unit[Component::Itlb.index()] = ram(64, 32, 1);
        unit[Component::BpredDir.index()] = ram(cfg.bpred_entries, 2, 1);
        unit[Component::Btb.index()] = ram(cfg.btb.0, cfg.btb.1 * 62, 1);
        unit[Component::Ras.index()] = ram(cfg.ras_entries, 32, 1);
        unit[Component::FetchQueue.index()] = ram(cfg.fetch_queue, 40, 2);
        unit[Component::Decode.index()] = 2.5;
        unit[Component::RenameTable.index()] = ram(64, 8, 4);
        unit[Component::IqInsert.index()] = ram(cfg.iq_entries, 80, 1);
        unit[Component::IqWakeup.index()] = cam_search_energy(cfg.iq_entries, 8, 1);
        unit[Component::IqSelect.index()] = 0.02 * f64::from(cfg.iq_entries);
        unit[Component::IqIssueRead.index()] = ram(cfg.iq_entries, 80, 1);
        // Partial update rewrites only the register identifiers and the ROB
        // pointer (~24 of ~80 bits) — the §3 source of IQ power savings.
        unit[Component::IqPartialUpdate.index()] = ram(cfg.iq_entries, 24, 1);
        // Collapse moves are latch-to-latch shifts, not array accesses.
        unit[Component::IqCollapse.index()] = 0.012 * 80.0;
        unit[Component::Rob.index()] = ram(cfg.rob_entries, 100, 2);
        unit[Component::Lsq.index()] =
            ram(cfg.lsq_entries, 80, 1) + cam_search_energy(cfg.lsq_entries, 32, 1);
        unit[Component::Regfile.index()] = ram(64, 64, 2);
        unit[Component::IntAlu.index()] = 4.0;
        unit[Component::IntMult.index()] = 12.0;
        unit[Component::FpAlu.index()] = 8.0;
        unit[Component::FpMult.index()] = 16.0;
        unit[Component::Dcache.index()] =
            cache_access_energy(cfg.dcache.0, cfg.dcache.1, cfg.dcache.2, 2);
        unit[Component::Dtlb.index()] = ram(128, 32, 2);
        unit[Component::L2.index()] = cache_access_energy(cfg.l2.0, cfg.l2.1, cfg.l2.2, 1);
        unit[Component::ResultBus.index()] = 2.0;
        unit[Component::Clock.index()] = 0.0; // handled via clock_per_cycle
        unit[Component::Lrl.index()] = ram(cfg.iq_entries, 15, 1);
        unit[Component::Nblt.index()] = if cfg.nblt_entries == 0 {
            0.0
        } else {
            cam_search_energy(cfg.nblt_entries, 32, 1) + ram(cfg.nblt_entries, 33, 1) * 0.2
        };
        unit[Component::ReuseCtl.index()] = 0.4;

        // Peak per-cycle activity per component, for idle-power accounting.
        let mut peak = [0.0; NUM_COMPONENTS];
        let width_of = |c: Component| -> f64 {
            f64::from(match c {
                Component::Icache | Component::Itlb => 1,
                Component::BpredDir | Component::Btb | Component::Ras => 1,
                Component::FetchQueue | Component::Decode => cfg.fetch_width,
                Component::RenameTable => w,
                Component::IqInsert | Component::IqIssueRead | Component::IqPartialUpdate => w,
                Component::IqWakeup => w,
                Component::IqSelect => 1,
                Component::IqCollapse => w,
                Component::Rob => 2 * w,
                Component::Lsq => 2,
                Component::Regfile => w,
                Component::IntAlu => 4,
                Component::IntMult => 1,
                Component::FpAlu => 4,
                Component::FpMult => 1,
                Component::Dcache | Component::Dtlb => 2,
                Component::L2 => 1,
                Component::ResultBus => w,
                Component::Clock => 0,
                Component::Lrl => w,
                Component::Nblt | Component::ReuseCtl => 1,
            })
        };
        for c in Component::ALL {
            peak[c.index()] = unit[c.index()] * width_of(c);
        }
        let total_peak: f64 = peak.iter().sum();
        let clock_per_cycle = CLOCK_FRACTION * total_peak * 0.5;

        PowerModel {
            unit,
            peak,
            energy: [0.0; NUM_COMPONENTS],
            clock_per_cycle,
            cycles: 0,
            gated_cycles: 0,
        }
    }

    /// Per-access energy of a component (exposed for tests and reports).
    #[must_use]
    pub fn unit_energy(&self, c: Component) -> f64 {
        self.unit[c.index()]
    }

    /// Accounts one cycle of activity. `front_end_gated` is true while the
    /// reuse issue queue has the fetch/decode stages gated.
    pub fn end_cycle(&mut self, act: &Activity, front_end_gated: bool) {
        self.cycles += 1;
        if front_end_gated {
            self.gated_cycles += 1;
        }
        for c in Component::ALL {
            if c == Component::Clock {
                continue;
            }
            let i = c.index();
            let n = act.count(c);
            if n > 0 {
                self.energy[i] += f64::from(n) * self.unit[i];
            } else {
                let frac = if front_end_gated && c.is_front_end() {
                    GATED_FRACTION
                } else {
                    IDLE_FRACTION
                };
                self.energy[i] += frac * self.peak[i];
            }
        }
        // The clock network: gating the front-end stops its latches and
        // local clock buffers.
        let clock = if front_end_gated {
            self.clock_per_cycle * (1.0 - CLOCK_FRONT_END_SHARE)
        } else {
            self.clock_per_cycle
        };
        self.energy[Component::Clock.index()] += clock;
    }

    /// Produces the final report.
    #[must_use]
    pub fn report(&self) -> PowerReport {
        PowerReport { energy: self.energy, cycles: self.cycles, gated_cycles: self.gated_cycles }
    }
}

/// Final per-component energy totals.
#[derive(Debug, Clone, Copy)]
pub struct PowerReport {
    energy: [f64; NUM_COMPONENTS],
    /// Simulated cycles.
    pub cycles: u64,
    /// Cycles with the front-end gated.
    pub gated_cycles: u64,
}

impl riq_trace::ToJson for PowerReport {
    fn to_json(&self) -> riq_trace::JsonValue {
        let components = riq_trace::JsonValue::Obj(
            Component::ALL
                .iter()
                .map(|&c| (c.to_string(), riq_trace::JsonValue::Num(self.energy(c))))
                .collect(),
        );
        let groups = riq_trace::JsonValue::Obj(
            ComponentGroup::ALL
                .iter()
                .map(|&g| (format!("{g:?}"), riq_trace::JsonValue::Num(self.group_energy(g))))
                .collect(),
        );
        riq_trace::JsonValue::obj([
            ("cycles", riq_trace::JsonValue::UInt(self.cycles)),
            ("gated_cycles", riq_trace::JsonValue::UInt(self.gated_cycles)),
            ("total_energy", riq_trace::JsonValue::Num(self.total_energy())),
            ("avg_power", riq_trace::JsonValue::Num(self.avg_power())),
            ("groups", groups),
            ("components", components),
        ])
    }
}

impl PowerReport {
    /// Reconstructs a report from raw per-component energies — the inverse
    /// of [`PowerReport::raw_energy`], used by binary result codecs that
    /// persist reports outside this crate.
    #[must_use]
    pub fn from_parts(
        energy: [f64; NUM_COMPONENTS],
        cycles: u64,
        gated_cycles: u64,
    ) -> PowerReport {
        PowerReport { energy, cycles, gated_cycles }
    }

    /// The raw per-component energy table, indexed by [`Component::index`].
    #[must_use]
    pub fn raw_energy(&self) -> &[f64; NUM_COMPONENTS] {
        &self.energy
    }

    /// Total energy over the run.
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        self.energy.iter().sum()
    }

    /// Energy attributed to one instruction class
    /// ([`Component::energy_class`] partition).
    #[must_use]
    pub fn class_energy(&self, class: EnergyClass) -> f64 {
        Component::ALL
            .iter()
            .filter(|c| c.energy_class() == Some(class))
            .map(|c| self.energy[c.index()])
            .sum()
    }

    /// Energy of the class-agnostic shared structures (everything
    /// [`Component::energy_class`] maps to `None`).
    #[must_use]
    pub fn shared_energy(&self) -> f64 {
        Component::ALL
            .iter()
            .filter(|c| c.energy_class().is_none())
            .map(|c| self.energy[c.index()])
            .sum()
    }

    /// Total energy with per-class weights applied:
    /// `Σ weight(class) · class_energy(class) + shared_energy`. At the
    /// default all-ones profile this equals [`PowerReport::total_energy`].
    #[must_use]
    pub fn weighted_total_energy(&self, profile: &ClassEnergyProfile) -> f64 {
        let classed: f64 =
            EnergyClass::ALL.iter().map(|&c| profile.weight(c) * self.class_energy(c)).sum();
        classed + self.shared_energy()
    }

    /// Energy-delay product: total energy × cycles. Zero for a zero-cycle
    /// report (no work, no delay to weight it by).
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.total_energy() * self.cycles as f64
    }

    /// Energy-delay-squared product: total energy × cycles². The squared
    /// delay term makes the metric voltage-scaling-neutral, the standard
    /// figure when trading frequency for energy.
    #[must_use]
    pub fn ed2p(&self) -> f64 {
        let cycles = self.cycles as f64;
        self.total_energy() * cycles * cycles
    }

    /// Energy of one component.
    #[must_use]
    pub fn energy(&self, c: Component) -> f64 {
        self.energy[c.index()]
    }

    /// Energy of a reporting group.
    #[must_use]
    pub fn group_energy(&self, g: ComponentGroup) -> f64 {
        Component::ALL.iter().filter(|c| c.group() == g).map(|c| self.energy[c.index()]).sum()
    }

    /// Average power (energy per cycle) of the whole chip.
    #[must_use]
    pub fn avg_power(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_energy() / self.cycles as f64
        }
    }

    /// Average power of a group.
    #[must_use]
    pub fn group_avg_power(&self, g: ComponentGroup) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.group_energy(g) / self.cycles as f64
        }
    }

    /// Relative per-cycle power reduction of `self` (the technique) versus
    /// `baseline`, as a fraction in `(-inf, 1]`: positive means savings.
    #[must_use]
    pub fn power_reduction_vs(&self, baseline: &PowerReport) -> f64 {
        let b = baseline.avg_power();
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.avg_power() / b
        }
    }

    /// Relative per-cycle group power reduction versus `baseline`.
    #[must_use]
    pub fn group_power_reduction_vs(&self, baseline: &PowerReport, g: ComponentGroup) -> f64 {
        let b = baseline.group_avg_power(g);
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.group_avg_power(g) / b
        }
    }

    /// Share of total energy consumed by a group.
    #[must_use]
    pub fn group_share(&self, g: ComponentGroup) -> f64 {
        let t = self.total_energy();
        if t == 0.0 {
            0.0
        } else {
            self.group_energy(g) / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_consistent() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c}");
        }
    }

    /// A report with distinct, non-trivial per-component energies.
    fn busy_report() -> PowerReport {
        let mut model = PowerModel::new(&PowerConfig::table1());
        let mut act = Activity::new();
        for (i, c) in Component::ALL.iter().enumerate() {
            act.add(*c, i as u32 + 1);
        }
        for _ in 0..10 {
            model.end_cycle(&act, false);
        }
        model.report()
    }

    #[test]
    fn classes_partition_into_class_plus_shared() {
        let r = busy_report();
        let classed: f64 = EnergyClass::ALL.iter().map(|&c| r.class_energy(c)).sum();
        let total = classed + r.shared_energy();
        assert!((total - r.total_energy()).abs() < 1e-9 * r.total_energy());
        for c in EnergyClass::ALL {
            assert!(r.class_energy(c) > 0.0, "{c} got activity, must carry energy");
        }
    }

    #[test]
    fn default_profile_reproduces_legacy_aggregate() {
        let r = busy_report();
        let w = r.weighted_total_energy(&ClassEnergyProfile::default());
        assert!((w - r.total_energy()).abs() < 1e-9 * r.total_energy());
    }

    #[test]
    fn calibrated_profile_is_nonuniform_and_conservative() {
        let p = ClassEnergyProfile::calibrated();
        assert_ne!(p, ClassEnergyProfile::default());
        // Every weight is positive and finite; FP is the heaviest class,
        // branch the lightest — the datapath-cost ordering the weights
        // were derived from.
        for c in EnergyClass::ALL {
            assert!(p.weight(c) > 0.0 && p.weight(c).is_finite());
            assert!(p.weight(EnergyClass::Fp) >= p.weight(c));
            assert!(p.weight(EnergyClass::Branch) <= p.weight(c));
        }
        // The calibrated weighting reshapes the decomposition without the
        // all-ones identity: on a busy run the two totals differ.
        let r = busy_report();
        let w = r.weighted_total_energy(&p);
        assert!((w - r.total_energy()).abs() > 1e-6 * r.total_energy());
        // And the all-ones default still reproduces the raw aggregate
        // exactly alongside it.
        let id = r.weighted_total_energy(&ClassEnergyProfile::default());
        assert!((id - r.total_energy()).abs() < 1e-12 * r.total_energy());
    }

    #[test]
    fn weights_scale_only_their_class() {
        let r = busy_report();
        let heavy_fp = ClassEnergyProfile { fp: 2.0, ..ClassEnergyProfile::default() };
        let expected = r.total_energy() + r.class_energy(EnergyClass::Fp);
        let got = r.weighted_total_energy(&heavy_fp);
        assert!((got - expected).abs() < 1e-9 * expected);
        let zeroed = ClassEnergyProfile { int: 0.0, fp: 0.0, load: 0.0, store: 0.0, branch: 0.0 };
        let shared_only = r.weighted_total_energy(&zeroed);
        assert!((shared_only - r.shared_energy()).abs() < 1e-9 * r.total_energy());
    }

    #[test]
    fn edp_and_ed2p_column_math() {
        let r = busy_report();
        assert_eq!(r.cycles, 10);
        let e = r.total_energy();
        assert!((r.edp() - e * 10.0).abs() < 1e-9 * r.edp());
        assert!((r.ed2p() - e * 100.0).abs() < 1e-9 * r.ed2p());
        assert!((r.ed2p() - r.edp() * 10.0).abs() < 1e-9 * r.ed2p());
    }

    #[test]
    fn edp_saturates_cleanly_at_the_edges() {
        // Zero cycles: no delay, both products are exactly zero.
        let zero = PowerReport::from_parts([0.5; NUM_COMPONENTS], 0, 0);
        assert_eq!(zero.edp(), 0.0);
        assert_eq!(zero.ed2p(), 0.0);
        assert!(zero.total_energy() > 0.0, "energy itself is untouched");
        // Absurd cycle counts stay finite in f64 (no u64 overflow path).
        let huge = PowerReport::from_parts([1.0; NUM_COMPONENTS], u64::MAX, 0);
        assert!(huge.edp().is_finite());
        assert!(huge.ed2p().is_finite());
        assert!(huge.ed2p() > huge.edp());
    }

    #[test]
    fn energy_class_labels_are_stable() {
        let labels: Vec<&str> = EnergyClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["int", "fp", "load", "store", "branch"]);
        assert_eq!(EnergyClass::Load.to_string(), "load");
    }

    #[test]
    fn idle_costs_less_than_active() {
        let cfg = PowerConfig::table1();
        let mut active = PowerModel::new(&cfg);
        let mut idle = PowerModel::new(&cfg);
        let mut act = Activity::new();
        act.add(Component::Icache, 1);
        active.end_cycle(&act, false);
        idle.end_cycle(&Activity::new(), false);
        assert!(
            active.report().energy(Component::Icache) > idle.report().energy(Component::Icache)
        );
        assert!(idle.report().energy(Component::Icache) > 0.0, "cc3 idle power");
    }

    #[test]
    fn gated_costs_less_than_idle() {
        let cfg = PowerConfig::table1();
        let mut gated = PowerModel::new(&cfg);
        let mut idle = PowerModel::new(&cfg);
        gated.end_cycle(&Activity::new(), true);
        idle.end_cycle(&Activity::new(), false);
        for c in [Component::Icache, Component::BpredDir, Component::Decode] {
            assert!(gated.report().energy(c) < idle.report().energy(c), "{c}");
        }
        // Non-front-end structures are unaffected by the gate signal.
        assert_eq!(
            gated.report().energy(Component::Dcache),
            idle.report().energy(Component::Dcache)
        );
        // Clock energy shrinks while gated.
        assert!(gated.report().energy(Component::Clock) < idle.report().energy(Component::Clock));
    }

    #[test]
    fn partial_update_cheaper_than_insert() {
        let model = PowerModel::new(&PowerConfig::table1());
        assert!(
            model.unit_energy(Component::IqPartialUpdate) < model.unit_energy(Component::IqInsert)
        );
    }

    #[test]
    fn wakeup_scales_with_iq_size() {
        let small = PowerModel::new(&PowerConfig { iq_entries: 32, ..PowerConfig::table1() });
        let large = PowerModel::new(&PowerConfig { iq_entries: 256, ..PowerConfig::table1() });
        let r = large.unit_energy(Component::IqWakeup) / small.unit_energy(Component::IqWakeup);
        assert!((r - 8.0).abs() < 1e-9, "CAM energy linear in entries, got {r}");
    }

    #[test]
    fn groups_partition_components() {
        let mut n = 0;
        for g in ComponentGroup::ALL {
            n += Component::ALL.iter().filter(|c| c.group() == g).count();
        }
        assert_eq!(n, NUM_COMPONENTS);
    }

    #[test]
    fn report_identities() {
        let cfg = PowerConfig::table1();
        let mut m = PowerModel::new(&cfg);
        let mut act = Activity::new();
        act.add(Component::Icache, 1);
        act.add(Component::IntAlu, 4);
        for _ in 0..10 {
            m.end_cycle(&act, false);
        }
        let r = m.report();
        assert_eq!(r.cycles, 10);
        let group_sum: f64 = ComponentGroup::ALL.iter().map(|&g| r.group_energy(g)).sum();
        assert!((group_sum - r.total_energy()).abs() < 1e-9);
        let share_sum: f64 = ComponentGroup::ALL.iter().map(|&g| r.group_share(g)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_math() {
        let cfg = PowerConfig::table1();
        let mut base = PowerModel::new(&cfg);
        let mut technique = PowerModel::new(&cfg);
        let mut act = Activity::new();
        act.add(Component::Icache, 1);
        for _ in 0..100 {
            base.end_cycle(&act, false);
            technique.end_cycle(&Activity::new(), true);
        }
        let red = technique.report().power_reduction_vs(&base.report());
        assert!(red > 0.0 && red < 1.0, "gating must save power, got {red}");
        let icache_red =
            technique.report().group_power_reduction_vs(&base.report(), ComponentGroup::Icache);
        assert!(icache_red > 0.9, "gated idle icache vs always-active: {icache_red}");
    }

    #[test]
    fn activity_clear_resets() {
        let mut act = Activity::new();
        act.add(Component::Rob, 3);
        assert_eq!(act.count(Component::Rob), 3);
        act.clear();
        assert_eq!(act.count(Component::Rob), 0);
    }
}
