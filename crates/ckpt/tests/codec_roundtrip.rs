//! Property tests for the checkpoint binary codec: arbitrary architectural
//! states round-trip exactly, and malformed inputs (truncated, corrupted,
//! random garbage) always yield typed errors — never panics.

use proptest::prelude::*;
use riq_ckpt::{Checkpoint, WarmAccess, WarmBranch, WarmEvent};
use riq_emu::{ArchState, SparseMemory, PAGE_SIZE};
use riq_isa::{CtrlKind, FpReg, IntReg, NUM_FP_REGS, NUM_INT_REGS};

fn arb_regs() -> impl Strategy<Value = ArchState> {
    (
        prop::collection::vec(any::<u32>(), NUM_INT_REGS),
        prop::collection::vec(any::<u64>(), NUM_FP_REGS),
    )
        .prop_map(|(ints, fps)| {
            let mut regs = ArchState::new();
            for (i, &v) in ints.iter().enumerate() {
                regs.set_int_reg(IntReg::new(i as u8), v);
            }
            for (i, &v) in fps.iter().enumerate() {
                regs.set_fp_reg_bits(FpReg::new(i as u8), v);
            }
            regs
        })
}

fn arb_mem() -> impl Strategy<Value = SparseMemory> {
    // Pages at arbitrary (possibly colliding) numbers, each filled from a
    // seed so content varies across the whole page.
    prop::collection::vec((0u32..0x000f_ffff, any::<u64>()), 0..6).prop_map(|pages| {
        let mut mem = SparseMemory::new();
        for (pno, seed) in pages {
            let mut page = [0u8; PAGE_SIZE];
            let mut x = seed;
            for (i, b) in page.iter_mut().enumerate() {
                x = x.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(i as u64);
                *b = (x >> 32) as u8;
            }
            mem.insert_page(pno, page);
        }
        mem
    })
}

fn arb_event() -> impl Strategy<Value = WarmEvent> {
    (
        any::<u32>(),
        any::<bool>(),
        any::<u32>(),
        any::<bool>(),
        0u8..5,
        any::<bool>(),
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(|(pc, has_mem, addr, is_store, kind, has_branch, next, taken)| {
            let kind = match kind {
                0 => CtrlKind::CondBranch,
                1 => CtrlKind::Jump,
                2 => CtrlKind::Call,
                3 => CtrlKind::IndirectCall,
                _ => CtrlKind::Return,
            };
            WarmEvent {
                pc,
                mem: has_mem.then_some(WarmAccess { addr, is_store }),
                branch: has_branch.then_some(WarmBranch { kind, taken, next }),
            }
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        arb_regs(),
        arb_mem(),
        prop::collection::vec(arb_event(), 0..24),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(|(regs, mem, warm, program_fingerprint, skip, retired, pc, halted)| {
            Checkpoint {
                program_fingerprint,
                skip,
                warmup: warm.len() as u64,
                retired,
                pc,
                halted,
                regs,
                mem,
                warm,
            }
        })
}

proptest! {
    #[test]
    fn encode_decode_roundtrips(ckpt in arb_checkpoint()) {
        let bytes = ckpt.encode();
        let decoded = Checkpoint::decode(&bytes);
        prop_assert_eq!(decoded.as_ref().ok(), Some(&ckpt));
        prop_assert_eq!(decoded.unwrap().fingerprint(), ckpt.fingerprint());
    }

    #[test]
    fn truncated_input_is_a_typed_error(ckpt in arb_checkpoint(), frac in 0.0f64..1.0) {
        let bytes = ckpt.encode();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(Checkpoint::decode(&bytes[..cut.min(bytes.len() - 1)]).is_err());
    }

    #[test]
    fn corrupted_byte_is_a_typed_error(
        ckpt in arb_checkpoint(),
        pick in any::<u64>(),
        flip in 1u8..255,
    ) {
        let mut bytes = ckpt.encode();
        let idx = (pick % bytes.len() as u64) as usize;
        bytes[idx] ^= flip;
        prop_assert!(Checkpoint::decode(&bytes).is_err(), "flip at byte {}", idx);
    }

    #[test]
    fn random_garbage_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine as long as it is a Result, not a panic.
        let _ = Checkpoint::decode(&data);
    }
}
