//! Shared checkpoint store for sweep engines.

use crate::checkpoint::Checkpoint;
use riq_asm::Program;
use riq_emu::EmuError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug, Default)]
struct StoreInner {
    map: Mutex<HashMap<(u64, u64), Arc<Checkpoint>>>,
    created: AtomicU64,
    reused: AtomicU64,
    ff_nanos: AtomicU64,
}

/// A thread-safe in-memory checkpoint store keyed by `(program
/// fingerprint, skip count)`.
///
/// A sweep runs the same program under many configurations; the
/// fast-forward prefix is configuration-independent, so one store shared
/// across an engine invocation turns N per-point fast-forwards into one.
/// Clones share the same underlying map and counters.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use riq_asm::assemble;
/// use riq_ckpt::CheckpointStore;
///
/// let program = assemble("loop: addi $r2, $r2, 1\n  bne $r2, $r0, loop\n  halt\n")?;
/// let store = CheckpointStore::new();
/// let a = store.get_or_create(&program, 100, 10)?;
/// let b = store.get_or_create(&program, 100, 10)?;
/// assert_eq!(a, b);
/// assert_eq!(store.created(), 1);
/// assert_eq!(store.reused(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<StoreInner>,
}

impl CheckpointStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Returns the checkpoint for `(program, skip)`, fast-forwarding and
    /// caching it on first request. A cached entry captured with a
    /// different warm-window size is recreated (the store assumes one
    /// warm-up setting per engine invocation, so this is rare).
    ///
    /// # Errors
    ///
    /// Propagates the first emulator fault hit during a fast-forward.
    pub fn get_or_create(
        &self,
        program: &Program,
        skip: u64,
        warmup: u64,
    ) -> Result<Arc<Checkpoint>, EmuError> {
        let key = (program.fingerprint(), skip);
        let mut map = self.inner.map.lock().expect("checkpoint store poisoned");
        if let Some(existing) = map.get(&key) {
            if existing.warmup == warmup {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(existing));
            }
        }
        let started = Instant::now();
        let ckpt = Arc::new(Checkpoint::fast_forward(program, skip, warmup)?);
        self.inner.ff_nanos.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.inner.created.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Arc::clone(&ckpt));
        Ok(ckpt)
    }

    /// Number of fast-forwards actually executed.
    #[must_use]
    pub fn created(&self) -> u64 {
        self.inner.created.load(Ordering::Relaxed)
    }

    /// Number of requests served from the store without a fast-forward.
    #[must_use]
    pub fn reused(&self) -> u64 {
        self.inner.reused.load(Ordering::Relaxed)
    }

    /// Total wall-clock seconds spent fast-forwarding.
    #[must_use]
    pub fn ff_seconds(&self) -> f64 {
        self.inner.ff_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Number of distinct checkpoints resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.map.lock().expect("checkpoint store poisoned").len()
    }

    /// Whether the store holds no checkpoints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    fn program(reps: u32) -> Program {
        assemble(&format!(
            "  li $r2, {reps}\nloop: addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n"
        ))
        .unwrap()
    }

    #[test]
    fn distinct_keys_create_distinct_checkpoints() {
        let store = CheckpointStore::new();
        let p1 = program(100);
        let p2 = program(200);
        let a = store.get_or_create(&p1, 50, 8).unwrap();
        let b = store.get_or_create(&p2, 50, 8).unwrap();
        let c = store.get_or_create(&p1, 60, 8).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(store.created(), 3);
        assert_eq!(store.reused(), 0);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn clones_share_state() {
        let store = CheckpointStore::new();
        let alias = store.clone();
        let p = program(100);
        store.get_or_create(&p, 50, 8).unwrap();
        alias.get_or_create(&p, 50, 8).unwrap();
        assert_eq!(store.created(), 1);
        assert_eq!(store.reused(), 1);
        assert!(!alias.is_empty());
    }

    #[test]
    fn warmup_mismatch_recreates() {
        let store = CheckpointStore::new();
        let p = program(100);
        let a = store.get_or_create(&p, 50, 8).unwrap();
        let b = store.get_or_create(&p, 50, 16).unwrap();
        assert_eq!(a.warm.len(), 8);
        assert_eq!(b.warm.len(), 16);
        assert_eq!(store.created(), 2);
        assert_eq!(store.len(), 1, "replacement keeps one entry per key");
    }
}
