//! # riq-ckpt — architectural checkpoints for fast-forward and sampling
//!
//! SimpleScalar-style simulation methodology (`-fastfwd`) for the riq
//! workspace: run the *functional* emulator past the uninteresting prefix
//! of a workload once, snapshot the full architectural state, and start
//! every *detailed* (cycle-accurate) measurement from that snapshot. The
//! cycle simulator's wall clock then scales with the measured window, not
//! with the whole program, and every configuration of a sweep sharing a
//! program amortizes a single fast-forward.
//!
//! The crate provides:
//!
//! * [`Checkpoint`] — full architectural state (integer/FP register file,
//!   PC, halted flag, retired count, the [`riq_emu::SparseMemory`] page
//!   set) plus a *warm window*: a log of the last N instructions before
//!   the snapshot, used to pre-touch caches/TLBs and train the branch
//!   predictor before detailed measurement begins;
//! * [`Checkpoint::fast_forward`] — produce a checkpoint by running the
//!   [`riq_emu::Machine`] for a given instruction count;
//! * [`Checkpoint::resume_machine`] — restore the emulator from a
//!   checkpoint (the cycle simulator restores via
//!   `riq_core::Processor::resume_from`);
//! * [`Checkpoint::encode`]/[`Checkpoint::decode`] — a versioned,
//!   digest-protected binary snapshot format with typed [`CodecError`]s;
//! * [`CheckpointStore`] — a thread-safe in-memory store keyed by
//!   `(program fingerprint, skip count)` so sweep engines reuse one
//!   fast-forward across all configurations of a program.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use riq_asm::assemble;
//! use riq_ckpt::Checkpoint;
//! use riq_emu::Machine;
//!
//! let program = assemble(
//!     "  li $r2, 100\nloop: addi $r3, $r3, 1\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
//! )?;
//!
//! // Fast-forward 50 instructions, keeping a 16-instruction warm window.
//! let ckpt = Checkpoint::fast_forward(&program, 50, 16)?;
//! assert_eq!(ckpt.retired, 50);
//!
//! // The snapshot round-trips through the binary codec…
//! let decoded = Checkpoint::decode(&ckpt.encode())?;
//! assert_eq!(decoded, ckpt);
//!
//! // …and a machine resumed from it finishes exactly like a from-zero run.
//! let mut full = Machine::new(&program);
//! full.run(10_000)?;
//! let mut resumed = ckpt.resume_machine();
//! resumed.run(10_000)?;
//! assert_eq!(resumed.state(), full.state());
//! assert_eq!(resumed.retired(), full.retired());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checkpoint;
mod codec;
mod store;

pub use checkpoint::{Checkpoint, WarmAccess, WarmBranch, WarmEvent};
pub use codec::{CodecError, FORMAT_VERSION, MAGIC};
pub use store::CheckpointStore;
