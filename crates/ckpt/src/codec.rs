//! Versioned binary snapshot format for [`Checkpoint`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            8 bytes  "RIQCKPT\0"
//! version          u32
//! program_fp       u64
//! skip             u64
//! warmup           u64
//! retired          u64
//! pc               u32
//! halted           u8   (0 or 1)
//! int regs         32 x u32
//! fp regs          32 x u64 (raw bits)
//! page count       u32, then per page: page number u32 + 4096 raw bytes,
//!                  page numbers strictly increasing
//! warm count       u32, then per event:
//!                  pc u32, flags u8 (bit0 has_mem, bit1 mem_is_store,
//!                  bit2 has_branch, bit3 branch_taken),
//!                  [addr u32 if has_mem], [kind u8 + next u32 if has_branch]
//! digest           u64  FNV-1a over every preceding byte
//! ```
//!
//! Decoding never panics: every malformed input maps to a typed
//! [`CodecError`].

use crate::checkpoint::{Checkpoint, WarmAccess, WarmBranch, WarmEvent};
use riq_emu::{ArchState, SparseMemory, PAGE_SIZE};
use riq_isa::{CtrlKind, FpReg, IntReg, StableHasher, NUM_FP_REGS, NUM_INT_REGS};
use std::error::Error;
use std::fmt;
use std::hash::Hasher;

/// Leading magic bytes of every encoded checkpoint.
pub const MAGIC: [u8; 8] = *b"RIQCKPT\0";

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

const FLAG_HAS_MEM: u8 = 1 << 0;
const FLAG_MEM_IS_STORE: u8 = 1 << 1;
const FLAG_HAS_BRANCH: u8 = 1 << 2;
const FLAG_BRANCH_TAKEN: u8 = 1 << 3;
const FLAG_ALL: u8 = FLAG_HAS_MEM | FLAG_MEM_IS_STORE | FLAG_HAS_BRANCH | FLAG_BRANCH_TAKEN;

/// Error decoding a checkpoint image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input does not start with the checkpoint magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The input ended before the structure was complete.
    Truncated {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// A field held a value the format does not allow.
    BadValue {
        /// Byte offset of the offending field.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// The trailing digest does not match the content.
    Corrupt {
        /// Digest recomputed from the content.
        expected: u64,
        /// Digest stored in the image.
        found: u64,
    },
    /// Well-formed checkpoint followed by extra bytes.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a checkpoint: bad magic"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            CodecError::Truncated { offset } => {
                write!(f, "truncated checkpoint: input ended at byte {offset}")
            }
            CodecError::BadValue { offset, what } => {
                write!(f, "invalid checkpoint field at byte {offset}: {what}")
            }
            CodecError::Corrupt { expected, found } => write!(
                f,
                "corrupt checkpoint: content digest {expected:#018x} != stored {found:#018x}"
            ),
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after checkpoint")
            }
        }
    }
}

impl Error for CodecError {}

pub(crate) fn ctrl_kind_code(kind: CtrlKind) -> u8 {
    match kind {
        CtrlKind::CondBranch => 0,
        CtrlKind::Jump => 1,
        CtrlKind::Call => 2,
        CtrlKind::IndirectCall => 3,
        CtrlKind::Return => 4,
    }
}

fn ctrl_kind_from_code(code: u8) -> Option<CtrlKind> {
    match code {
        0 => Some(CtrlKind::CondBranch),
        1 => Some(CtrlKind::Jump),
        2 => Some(CtrlKind::Call),
        3 => Some(CtrlKind::IndirectCall),
        4 => Some(CtrlKind::Return),
        _ => None,
    }
}

fn digest_of(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

impl Checkpoint {
    /// Serializes the checkpoint into the versioned binary format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.program_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.skip.to_le_bytes());
        out.extend_from_slice(&self.warmup.to_le_bytes());
        out.extend_from_slice(&self.retired.to_le_bytes());
        out.extend_from_slice(&self.pc.to_le_bytes());
        out.push(u8::from(self.halted));
        for i in 0..NUM_INT_REGS {
            out.extend_from_slice(&self.regs.int_reg(IntReg::new(i as u8)).to_le_bytes());
        }
        for i in 0..NUM_FP_REGS {
            out.extend_from_slice(&self.regs.fp_reg_bits(FpReg::new(i as u8)).to_le_bytes());
        }
        let pages: Vec<_> = self.mem.pages().collect();
        out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        for (pno, page) in pages {
            out.extend_from_slice(&pno.to_le_bytes());
            out.extend_from_slice(page.as_slice());
        }
        out.extend_from_slice(&(self.warm.len() as u32).to_le_bytes());
        for event in &self.warm {
            out.extend_from_slice(&event.pc.to_le_bytes());
            let mut flags = 0u8;
            if let Some(access) = event.mem {
                flags |= FLAG_HAS_MEM;
                if access.is_store {
                    flags |= FLAG_MEM_IS_STORE;
                }
            }
            if let Some(branch) = event.branch {
                flags |= FLAG_HAS_BRANCH;
                if branch.taken {
                    flags |= FLAG_BRANCH_TAKEN;
                }
            }
            out.push(flags);
            if let Some(access) = event.mem {
                out.extend_from_slice(&access.addr.to_le_bytes());
            }
            if let Some(branch) = event.branch {
                out.push(ctrl_kind_code(branch.kind));
                out.extend_from_slice(&branch.next.to_le_bytes());
            }
        }
        let digest = digest_of(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    /// Deserializes a checkpoint image produced by [`Checkpoint::encode`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`CodecError`] for any malformed, truncated, or
    /// corrupted input; never panics.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CodecError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let program_fingerprint = r.u64()?;
        let skip = r.u64()?;
        let warmup = r.u64()?;
        let retired = r.u64()?;
        let pc = r.u32()?;
        let halted = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::BadValue { offset: r.pos - 1, what: "halted flag" }),
        };
        let mut regs = ArchState::new();
        for i in 0..NUM_INT_REGS {
            let v = r.u32()?;
            let reg = IntReg::new(i as u8);
            if reg == IntReg::ZERO && v != 0 {
                return Err(CodecError::BadValue { offset: r.pos - 4, what: "nonzero $r0" });
            }
            regs.set_int_reg(reg, v);
        }
        for i in 0..NUM_FP_REGS {
            let v = r.u64()?;
            regs.set_fp_reg_bits(FpReg::new(i as u8), v);
        }
        let mut mem = SparseMemory::new();
        let page_count = r.u32()?;
        let mut prev_page: Option<u32> = None;
        for _ in 0..page_count {
            let pno = r.u32()?;
            if prev_page.is_some_and(|p| pno <= p) {
                return Err(CodecError::BadValue {
                    offset: r.pos - 4,
                    what: "page numbers not strictly increasing",
                });
            }
            prev_page = Some(pno);
            let raw = r.take(PAGE_SIZE)?;
            let mut page = [0u8; PAGE_SIZE];
            page.copy_from_slice(raw);
            mem.insert_page(pno, page);
        }
        let warm_count = r.u32()?;
        let mut warm = Vec::new();
        for _ in 0..warm_count {
            let pc = r.u32()?;
            let flags = r.u8()?;
            if flags & !FLAG_ALL != 0 {
                return Err(CodecError::BadValue { offset: r.pos - 1, what: "warm event flags" });
            }
            if flags & FLAG_MEM_IS_STORE != 0 && flags & FLAG_HAS_MEM == 0 {
                return Err(CodecError::BadValue {
                    offset: r.pos - 1,
                    what: "store flag without memory access",
                });
            }
            if flags & FLAG_BRANCH_TAKEN != 0 && flags & FLAG_HAS_BRANCH == 0 {
                return Err(CodecError::BadValue {
                    offset: r.pos - 1,
                    what: "taken flag without branch",
                });
            }
            let mem = if flags & FLAG_HAS_MEM != 0 {
                Some(WarmAccess { addr: r.u32()?, is_store: flags & FLAG_MEM_IS_STORE != 0 })
            } else {
                None
            };
            let branch = if flags & FLAG_HAS_BRANCH != 0 {
                let code = r.u8()?;
                let kind = ctrl_kind_from_code(code).ok_or(CodecError::BadValue {
                    offset: r.pos - 1,
                    what: "control-transfer kind",
                })?;
                Some(WarmBranch { kind, taken: flags & FLAG_BRANCH_TAKEN != 0, next: r.u32()? })
            } else {
                None
            };
            warm.push(WarmEvent { pc, mem, branch });
        }
        let content_end = r.pos;
        let found = r.u64()?;
        let expected = digest_of(&bytes[..content_end]);
        if found != expected {
            return Err(CodecError::Corrupt { expected, found });
        }
        if r.pos != bytes.len() {
            return Err(CodecError::TrailingBytes { extra: bytes.len() - r.pos });
        }
        Ok(Checkpoint { program_fingerprint, skip, warmup, retired, pc, halted, regs, mem, warm })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end =
            self.pos.checked_add(n).ok_or(CodecError::Truncated { offset: self.bytes.len() })?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated { offset: self.bytes.len() });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let raw = self.take(8)?;
        Ok(u64::from_le_bytes([raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    fn sample() -> Checkpoint {
        let p = assemble(
            "  li $r2, 30\nloop: sw $r2, 0x100($r0)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        )
        .unwrap();
        Checkpoint::fast_forward(&p, 25, 10).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ckpt = sample();
        let bytes = ckpt.encode();
        let decoded = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, ckpt);
        assert_eq!(decoded.fingerprint(), ckpt.fingerprint());
        assert_eq!(decoded.encode(), bytes, "canonical encoding");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xff;
        assert_eq!(Checkpoint::decode(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample().encode();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(Checkpoint::decode(&bytes), Err(CodecError::UnsupportedVersion(99)));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let err = Checkpoint::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. } | CodecError::Corrupt { .. }),
                "truncation to {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn single_byte_corruption_detected() {
        let bytes = sample().encode();
        // Probe a spread of positions including the trailing digest.
        for idx in (0..bytes.len()).step_by(97).chain(bytes.len() - 8..bytes.len()) {
            let mut bad = bytes.clone();
            bad[idx] ^= 0x40;
            assert!(Checkpoint::decode(&bad).is_err(), "flip at byte {idx} went undetected");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(Checkpoint::decode(&bytes), Err(CodecError::TrailingBytes { extra: 1 }));
    }
}
