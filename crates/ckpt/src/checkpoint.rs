//! The [`Checkpoint`] type: capture by fast-forward, restore, fingerprint.

use riq_asm::Program;
use riq_emu::{ArchState, ControlFlow, EmuError, Machine, SparseMemory};
use riq_isa::{CtrlKind, FpReg, IntReg, StableHasher, NUM_FP_REGS, NUM_INT_REGS};
use std::collections::VecDeque;
use std::hash::Hasher;

/// The memory access performed by one warm-window instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmAccess {
    /// Accessed byte address.
    pub addr: u32,
    /// Whether the access was a store.
    pub is_store: bool,
}

/// The resolved control transfer performed by one warm-window instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmBranch {
    /// Flavor of control transfer.
    pub kind: CtrlKind,
    /// Whether the transfer was taken.
    pub taken: bool,
    /// The architecturally next PC (the target when taken).
    pub next: u32,
}

/// One entry of the functional-warming log: an instruction executed during
/// the tail of the fast-forward, recorded so the detailed simulator can
/// pre-touch its caches/TLBs and train its branch predictor before
/// measurement starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmEvent {
    /// PC the instruction executed at (warms the instruction side).
    pub pc: u32,
    /// Data access, if the instruction was a load or store.
    pub mem: Option<WarmAccess>,
    /// Control transfer, if the instruction was one.
    pub branch: Option<WarmBranch>,
}

/// A full architectural snapshot of the functional machine, plus the warm
/// window leading up to it.
///
/// Produced by [`Checkpoint::fast_forward`], serialized with
/// [`Checkpoint::encode`], and restorable into both the emulator
/// ([`Checkpoint::resume_machine`]) and the cycle simulator
/// (`riq_core::Processor::resume_from`).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the program this state belongs to; restore targets
    /// must present a matching program.
    pub program_fingerprint: u64,
    /// The requested fast-forward instruction count. `retired` is smaller
    /// when the program halted before reaching it.
    pub skip: u64,
    /// The requested warm-window capacity at capture time. `warm` holds at
    /// most this many events (fewer when the run was shorter).
    pub warmup: u64,
    /// Instructions actually retired before the snapshot.
    pub retired: u64,
    /// PC of the next instruction to execute.
    pub pc: u32,
    /// Whether the program halted during the fast-forward.
    pub halted: bool,
    /// The architectural register file.
    pub regs: ArchState,
    /// The architectural memory image (resident pages only).
    pub mem: SparseMemory,
    /// The warm window: the last `warmup` instructions before the
    /// snapshot, oldest first.
    pub warm: Vec<WarmEvent>,
}

impl Checkpoint {
    /// Runs `program` on a fresh functional [`Machine`] until `skip`
    /// instructions have retired (or the program halts, whichever comes
    /// first) and snapshots the resulting state. The last `warmup`
    /// instructions of the fast-forward are captured as the warm window.
    ///
    /// # Errors
    ///
    /// Propagates the first decode or memory fault the emulator hits.
    pub fn fast_forward(program: &Program, skip: u64, warmup: u64) -> Result<Checkpoint, EmuError> {
        let mut machine = Machine::new(program);
        let mut warm: VecDeque<WarmEvent> = VecDeque::new();
        while machine.retired() < skip {
            let Some(record) = machine.step_recorded()? else {
                break;
            };
            if warmup == 0 {
                continue;
            }
            let branch = record.inst.ctrl_kind().map(|kind| WarmBranch {
                kind,
                taken: matches!(record.exec.flow, ControlFlow::Taken(_)),
                next: record.exec.flow.next_pc(record.pc),
            });
            let mem = record
                .exec
                .mem
                .map(|access| WarmAccess { addr: access.addr, is_store: access.is_store });
            warm.push_back(WarmEvent { pc: record.pc, mem, branch });
            if warm.len() as u64 > warmup {
                warm.pop_front();
            }
        }
        Ok(Checkpoint {
            program_fingerprint: program.fingerprint(),
            skip,
            warmup,
            retired: machine.retired(),
            pc: machine.pc(),
            halted: machine.is_halted(),
            regs: machine.state().clone(),
            mem: machine.memory().clone(),
            warm: warm.into(),
        })
    }

    /// Restores the functional machine from this snapshot. Running the
    /// result to completion is architecturally identical to running the
    /// original program from instruction zero.
    #[must_use]
    pub fn resume_machine(&self) -> Machine {
        Machine::from_state(self.regs.clone(), self.mem.clone(), self.pc, self.halted, self.retired)
    }

    /// A stable FNV-1a fingerprint of the entire checkpoint (header,
    /// registers, memory content digest, warm window). Identical
    /// fast-forwards of identical programs fingerprint equal on every
    /// platform; recorded as provenance in run reports.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.program_fingerprint);
        h.write_u64(self.skip);
        h.write_u64(self.warmup);
        h.write_u64(self.retired);
        h.write_u32(self.pc);
        h.write_u8(u8::from(self.halted));
        for i in 0..NUM_INT_REGS {
            h.write_u32(self.regs.int_reg(IntReg::new(i as u8)));
        }
        for i in 0..NUM_FP_REGS {
            h.write_u64(self.regs.fp_reg_bits(FpReg::new(i as u8)));
        }
        h.write_u64(self.mem.content_digest());
        h.write_u64(self.warm.len() as u64);
        for event in &self.warm {
            h.write_u32(event.pc);
            match event.mem {
                Some(access) => {
                    h.write_u8(1);
                    h.write_u32(access.addr);
                    h.write_u8(u8::from(access.is_store));
                }
                None => h.write_u8(0),
            }
            match event.branch {
                Some(branch) => {
                    h.write_u8(1);
                    h.write_u8(crate::codec::ctrl_kind_code(branch.kind));
                    h.write_u8(u8::from(branch.taken));
                    h.write_u32(branch.next);
                }
                None => h.write_u8(0),
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_asm::assemble;

    fn program() -> Program {
        assemble(
            r#"
                li   $r2, 40
                li   $r6, 0x2000
            loop:
                sw   $r2, 0($r6)
                lw   $r3, 0($r6)
                add  $r4, $r4, $r3
                addi $r2, $r2, -1
                bne  $r2, $r0, loop
                halt
            "#,
        )
        .expect("assembles")
    }

    #[test]
    fn fast_forward_matches_manual_stepping() {
        let p = program();
        let ckpt = Checkpoint::fast_forward(&p, 17, 8).unwrap();
        let mut m = Machine::new(&p);
        for _ in 0..17 {
            m.step().unwrap();
        }
        assert_eq!(ckpt.retired, 17);
        assert_eq!(ckpt.pc, m.pc());
        assert_eq!(&ckpt.regs, m.state());
        assert_eq!(ckpt.mem.content_digest(), m.memory().content_digest());
        assert!(!ckpt.halted);
        assert_eq!(ckpt.warm.len(), 8, "window holds the last 8 instructions");
    }

    #[test]
    fn resume_finishes_identically_to_from_zero() {
        let p = program();
        let mut full = Machine::new(&p);
        full.run(100_000).unwrap();

        let ckpt = Checkpoint::fast_forward(&p, 50, 16).unwrap();
        let mut resumed = ckpt.resume_machine();
        resumed.run(100_000).unwrap();

        assert_eq!(resumed.state(), full.state());
        assert_eq!(resumed.retired(), full.retired());
        assert_eq!(resumed.memory().content_digest(), full.memory().content_digest());
    }

    #[test]
    fn skip_past_halt_is_valid() {
        let p = program();
        let mut full = Machine::new(&p);
        let total = full.run(100_000).unwrap().retired;

        let ckpt = Checkpoint::fast_forward(&p, total + 1_000, 4).unwrap();
        assert!(ckpt.halted);
        assert_eq!(ckpt.retired, total);
        assert_eq!(&ckpt.regs, full.state());
    }

    #[test]
    fn warm_window_records_accesses_and_branches() {
        let p = program();
        // Skip to just past one full loop iteration so the window spans it.
        let ckpt = Checkpoint::fast_forward(&p, 12, 5).unwrap();
        let stores = ckpt.warm.iter().filter(|e| e.mem.is_some_and(|m| m.is_store)).count();
        let loads = ckpt.warm.iter().filter(|e| e.mem.is_some_and(|m| !m.is_store)).count();
        let branches = ckpt.warm.iter().filter(|e| e.branch.is_some()).count();
        assert!(stores >= 1, "window saw the sw");
        assert!(loads >= 1, "window saw the lw");
        assert!(branches >= 1, "window saw the bne");
        let taken = ckpt.warm.iter().filter_map(|e| e.branch).find(|b| b.taken).unwrap();
        assert_eq!(taken.kind, CtrlKind::CondBranch);
        assert_eq!(taken.next, p.symbol("loop").unwrap(), "taken branch targets the loop head");
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let p = program();
        let a = Checkpoint::fast_forward(&p, 20, 8).unwrap();
        let b = Checkpoint::fast_forward(&p, 20, 8).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "deterministic");
        let c = Checkpoint::fast_forward(&p, 21, 8).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint(), "skip count changes state");
    }
}
