//! The per-run metric registry owned by one simulator core.

use crate::ids::{SimCounter, Stage};
use crate::snapshot::MetricsSnapshot;

/// Number of fixed histogram buckets: bucket 0 holds value 0, bucket `k`
/// holds values in `[2^(k-1), 2^k)`, the last bucket saturates.
pub const HIST_BUCKETS: usize = 17;

/// A fixed-bucket power-of-two histogram (no allocation, no hashing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Bucket counts; see [`HIST_BUCKETS`] for the bucket boundaries.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = if value == 0 {
            0
        } else {
            (64 - u64::leading_zeros(value) as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[b] += 1;
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Counter-wise merge.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// How a profiled run samples its stage timers.
///
/// Reading the host clock twice per stage per cycle would itself dominate
/// the cycle loop, so timers fire only on cycles where
/// `cycle & (sample_period - 1) == 0`. Stage *shares* are ratios over the
/// sampled population and converge quickly; visit counters are never
/// sampled — they count every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Stage-timer sampling period in cycles; rounded up to a power of
    /// two, minimum 1 (= time every cycle).
    pub sample_period: u64,
}

impl ProfileConfig {
    /// The default sampling period (16: <7% of cycles pay for a timer).
    pub const DEFAULT_SAMPLE_PERIOD: u64 = 16;
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig { sample_period: ProfileConfig::DEFAULT_SAMPLE_PERIOD }
    }
}

/// The per-run registry: an `enabled` flag and fixed arrays.
///
/// Disabled (the default for plain `Processor::run`) every recording
/// method is a single predictable branch on one bool — the same residual
/// cost as riq-trace's `TraceSink::enabled` check — and the snapshot is
/// `None`-equivalent (all zeros, `is_enabled` false).
#[derive(Debug, Clone)]
pub struct Registry {
    enabled: bool,
    sample_mask: u64,
    sim: [u64; SimCounter::COUNT],
    stage_nanos: [u64; Stage::COUNT],
    stage_samples: u64,
    iq_occupancy: Histogram,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::disabled()
    }
}

impl Registry {
    /// A disabled registry: every recording call is a no-op.
    #[must_use]
    pub fn disabled() -> Registry {
        Registry {
            enabled: false,
            sample_mask: 0,
            sim: [0; SimCounter::COUNT],
            stage_nanos: [0; Stage::COUNT],
            stage_samples: 0,
            iq_occupancy: Histogram::default(),
        }
    }

    /// An enabled registry with the given stage-timer sampling config.
    #[must_use]
    pub fn profiling(profile: ProfileConfig) -> Registry {
        let period = profile.sample_period.max(1).next_power_of_two();
        Registry { enabled: true, sample_mask: period - 1, ..Registry::disabled() }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to a simulation-domain counter.
    #[inline(always)]
    pub fn add(&mut self, c: SimCounter, n: u64) {
        if self.enabled {
            self.sim[c as usize] += n;
        }
    }

    /// Overwrites a simulation-domain counter (for end-of-run mirrors of
    /// counters the simulator already maintains).
    #[inline]
    pub fn set(&mut self, c: SimCounter, n: u64) {
        if self.enabled {
            self.sim[c as usize] = n;
        }
    }

    /// Whether the stage timers fire on `cycle`. Call once per cycle; when
    /// `false` (always, for a disabled registry) no host clock is read.
    #[inline(always)]
    #[must_use]
    pub fn stage_timers_sampled(&self, cycle: u64) -> bool {
        self.enabled && cycle & self.sample_mask == 0
    }

    /// Records `nanos` of host time against a stage. Callers only reach
    /// this after [`stage_timers_sampled`](Registry::stage_timers_sampled)
    /// returned `true`.
    #[inline]
    pub fn record_stage(&mut self, s: Stage, nanos: u64) {
        self.stage_nanos[s as usize] += nanos;
    }

    /// Counts one fully-timed cycle (call once per sampled cycle).
    #[inline]
    pub fn count_stage_sample(&mut self) {
        self.stage_samples += 1;
    }

    /// Accumulated host nanoseconds recorded against a stage so far.
    #[must_use]
    pub fn stage_nanos(&self, s: Stage) -> u64 {
        self.stage_nanos[s as usize]
    }

    /// Records an issue-queue occupancy observation.
    #[inline(always)]
    pub fn observe_iq_occupancy(&mut self, entries: u64) {
        if self.enabled {
            self.iq_occupancy.record(entries);
        }
    }

    /// Freezes the registry into a snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sim: self.sim,
            stage_nanos: self.stage_nanos,
            stage_samples: self.stage_samples,
            iq_occupancy: self.iq_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The zero-overhead contract: a disabled registry records nothing —
    /// every path is the branch-not-taken side of one bool.
    #[test]
    fn disabled_registry_is_a_no_op() {
        let mut r = Registry::disabled();
        assert!(!r.is_enabled());
        r.add(SimCounter::IqScanVisits, 1000);
        r.set(SimCounter::Cycles, 42);
        r.observe_iq_occupancy(64);
        for cycle in 0..256 {
            assert!(!r.stage_timers_sampled(cycle), "disabled => never sampled");
        }
        let s = r.snapshot();
        assert_eq!(s.sim, [0; SimCounter::COUNT]);
        assert_eq!(s.stage_nanos, [0; Stage::COUNT]);
        assert_eq!(s.stage_samples, 0);
        assert_eq!(s.iq_occupancy.total(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn enabled_registry_records() {
        let mut r = Registry::profiling(ProfileConfig { sample_period: 4 });
        assert!(r.is_enabled());
        r.add(SimCounter::LsqSearchVisits, 3);
        r.add(SimCounter::LsqSearchVisits, 2);
        r.set(SimCounter::Cycles, 7);
        r.observe_iq_occupancy(0);
        r.observe_iq_occupancy(5);
        let s = r.snapshot();
        assert_eq!(s.sim[SimCounter::LsqSearchVisits as usize], 5);
        assert_eq!(s.sim[SimCounter::Cycles as usize], 7);
        assert_eq!(s.iq_occupancy.total(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn sampling_mask_follows_the_period() {
        let r = Registry::profiling(ProfileConfig { sample_period: 8 });
        let sampled: Vec<u64> = (0..32).filter(|&c| r.stage_timers_sampled(c)).collect();
        assert_eq!(sampled, vec![0, 8, 16, 24]);
        // Period 1 samples every cycle; odd periods round up to a power of
        // two so the mask trick stays valid.
        let every = Registry::profiling(ProfileConfig { sample_period: 1 });
        assert!((0..10).all(|c| every.stage_timers_sampled(c)));
        let rounded = Registry::profiling(ProfileConfig { sample_period: 5 });
        assert!(rounded.stage_timers_sampled(0));
        assert!(!rounded.stage_timers_sampled(5));
        assert!(rounded.stage_timers_sampled(8));
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // [1,2) -> bucket 1
        h.record(2); // [2,4) -> bucket 2
        h.record(3);
        h.record(u64::MAX); // saturates into the last bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(h.total(), 5);
        let mut other = Histogram::default();
        other.record(2);
        h.merge(&other);
        assert_eq!(h.buckets[2], 3);
    }
}
