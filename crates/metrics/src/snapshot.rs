//! Frozen registry state: what a run hands back when profiling is on.

use crate::ids::{SimCounter, Stage};
use crate::registry::Histogram;
use riq_trace::{JsonValue, ToJson};

/// The frozen result of one profiled run.
///
/// Attached to `RunResult::metrics` by `Processor::run_profiled`, merged
/// into the engine hub after parallel sweeps, and rendered by the deadlock
/// watchdog. The `sim` array is a pure function of (program, config); the
/// `stage_*` fields are host time and must never leak into
/// [`sim_json`](MetricsSnapshot::sim_json).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Simulation-domain counters, indexed by [`SimCounter`].
    pub sim: [u64; SimCounter::COUNT],
    /// Host nanoseconds spent per stage on sampled cycles, indexed by
    /// [`Stage`].
    pub stage_nanos: [u64; Stage::COUNT],
    /// Number of cycles on which the stage timers fired.
    pub stage_samples: u64,
    /// Issue-queue occupancy distribution (one observation per cycle).
    pub iq_occupancy: Histogram,
}

impl MetricsSnapshot {
    /// Convenience read of one simulation-domain counter.
    #[must_use]
    pub fn get(&self, c: SimCounter) -> u64 {
        self.sim[c as usize]
    }

    /// True when nothing was recorded (e.g. a disabled registry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sim.iter().all(|&v| v == 0)
            && self.stage_nanos.iter().all(|&v| v == 0)
            && self.stage_samples == 0
            && self.iq_occupancy.total() == 0
    }

    /// Counter-wise merge of another run's snapshot into this one.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.sim.iter_mut().zip(other.sim.iter()) {
            *a += b;
        }
        for (a, b) in self.stage_nanos.iter_mut().zip(other.stage_nanos.iter()) {
            *a += b;
        }
        self.stage_samples += other.stage_samples;
        self.iq_occupancy.merge(&other.iq_occupancy);
    }

    /// Simulation-domain counters as a JSON object — integers only, keys
    /// in [`SimCounter::ALL`] order via `BTreeMap`'s deterministic
    /// serialization. This is the payload determinism tests compare
    /// byte-for-byte; host-domain fields are structurally absent.
    #[must_use]
    pub fn sim_json(&self) -> JsonValue {
        JsonValue::obj(
            SimCounter::ALL.iter().map(|&c| (c.name(), JsonValue::UInt(self.sim[c as usize]))),
        )
    }

    /// Per-stage share of sampled host time, in [`Stage::ALL`] order.
    ///
    /// `Execute` is nested inside `Dispatch` in the cycle loop, so
    /// `Dispatch`'s raw nanos are reduced by `Execute`'s before shares are
    /// computed — the returned fractions partition the sampled cycle time
    /// (they sum to ~1.0 when any samples were taken).
    #[must_use]
    pub fn stage_shares(&self) -> [(Stage, f64); Stage::COUNT] {
        let mut nanos = self.stage_nanos;
        let execute = nanos[Stage::Execute as usize];
        let dispatch = &mut nanos[Stage::Dispatch as usize];
        *dispatch = dispatch.saturating_sub(execute);
        let total: u64 = nanos.iter().sum();
        let mut shares = [(Stage::Fetch, 0.0); Stage::COUNT];
        for (slot, &stage) in shares.iter_mut().zip(Stage::ALL.iter()) {
            let frac = if total == 0 { 0.0 } else { nanos[stage as usize] as f64 / total as f64 };
            *slot = (stage, frac);
        }
        shares
    }

    /// Stage shares as a JSON object (fractions, not nanos — host clock
    /// granularity varies between machines but shares are comparable).
    #[must_use]
    pub fn stage_shares_json(&self) -> JsonValue {
        JsonValue::obj(
            self.stage_shares().iter().map(|&(s, frac)| (s.name(), JsonValue::Num(frac))),
        )
    }

    /// One-line rendering of the simulation-domain counters for the
    /// deadlock watchdog dump (and any other plain-text surface).
    #[must_use]
    pub fn render_sim(&self) -> String {
        let mut out = String::from("metrics:");
        for &c in SimCounter::ALL.iter() {
            out.push_str(&format!(" {}={}", c.name(), self.sim[c as usize]));
        }
        out
    }
}

impl ToJson for MetricsSnapshot {
    /// Full snapshot: the deterministic `sim` object plus the host-domain
    /// profile (stage shares and sample count) under a separate key.
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("sim", self.sim_json()),
            (
                "host_profile",
                JsonValue::obj([
                    ("stage_shares", self.stage_shares_json()),
                    ("stage_samples", JsonValue::UInt(self.stage_samples)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.sim[SimCounter::Cycles as usize] = 100;
        s.sim[SimCounter::Committed as usize] = 80;
        s.stage_nanos[Stage::Dispatch as usize] = 600;
        s.stage_nanos[Stage::Execute as usize] = 200;
        s.stage_nanos[Stage::Issue as usize] = 400;
        s.stage_samples = 10;
        s.iq_occupancy.record(4);
        s
    }

    #[test]
    fn sim_json_contains_only_integers_and_all_counters() {
        let s = sample();
        let json = s.sim_json();
        for &c in SimCounter::ALL.iter() {
            let v = json.get(c.name()).expect("every counter present");
            assert!(v.as_u64().is_some(), "{} must serialize as an integer", c.name());
        }
        assert_eq!(json.get("cycles").and_then(JsonValue::as_u64), Some(100));
        // No host fields can appear — structurally guaranteed, but pin it.
        assert!(json.get("stage_shares").is_none());
        assert!(json.get("wall_clock_seconds").is_none());
    }

    #[test]
    fn stage_shares_unnest_execute_from_dispatch() {
        let s = sample();
        let shares = s.stage_shares();
        let get = |want: Stage| shares.iter().find(|(st, _)| *st == want).map(|&(_, f)| f).unwrap();
        // Total after unnesting: (600-200) + 200 + 400 = 1000.
        assert!((get(Stage::Dispatch) - 0.4).abs() < 1e-12);
        assert!((get(Stage::Execute) - 0.2).abs() < 1e-12);
        assert!((get(Stage::Issue) - 0.4).abs() < 1e-12);
        let total: f64 = shares.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counterwise() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.get(SimCounter::Cycles), 200);
        assert_eq!(a.stage_samples, 20);
        assert_eq!(a.iq_occupancy.total(), 2);
    }

    #[test]
    fn render_sim_is_one_line_with_every_counter() {
        let line = sample().render_sim();
        assert!(line.starts_with("metrics: cycles=100 committed=80"));
        assert!(!line.contains('\n'));
        for &c in SimCounter::ALL.iter() {
            assert!(line.contains(c.name()), "missing {}", c.name());
        }
    }
}
