//! Static metric identifiers.
//!
//! Metrics are addressed by `#[repr(usize)]` enums that index fixed-size
//! arrays — recording a metric is a bounds-known array add, never a string
//! hash. Names exist only at the snapshot/rendering edge.

/// Simulation-domain counters: deterministic functions of
/// (program, configuration). Never mix host time or host memory in here —
/// determinism tests compare these byte-for-byte across worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SimCounter {
    /// Simulated cycles (mirror of `SimStats::cycles`).
    Cycles,
    /// Committed instructions (mirror of `SimStats::committed`).
    Committed,
    /// Fetched instructions, wrong path included.
    Fetched,
    /// Dispatched instructions, reuse-supplied included.
    Dispatched,
    /// Instructions issued to function units.
    Issued,
    /// Front-end-gated cycles.
    GatedCycles,
    /// Instructions supplied by the issue queue in Code Reuse state.
    ReusedInsts,
    /// Issue-queue entries visited by the select/ready scan.
    IqScanVisits,
    /// Issue-queue entries visited by wakeup broadcasts.
    IqWakeupVisits,
    /// LSQ entries visited by load/store conflict searches.
    LsqSearchVisits,
    /// ROB entries visited by misprediction recovery walks.
    RobWalkVisits,
    /// Heap allocations performed by the cycle loop's temporaries
    /// (ready/classified position vectors, completion batches).
    AllocEvents,
    /// Memory-hierarchy hits (L1I + L1D + L2).
    CacheHits,
    /// Memory-hierarchy misses (L1I + L1D + L2).
    CacheMisses,
}

impl SimCounter {
    /// Number of simulation-domain counters.
    pub const COUNT: usize = 14;

    /// Every counter, in stable rendering order.
    pub const ALL: [SimCounter; SimCounter::COUNT] = [
        SimCounter::Cycles,
        SimCounter::Committed,
        SimCounter::Fetched,
        SimCounter::Dispatched,
        SimCounter::Issued,
        SimCounter::GatedCycles,
        SimCounter::ReusedInsts,
        SimCounter::IqScanVisits,
        SimCounter::IqWakeupVisits,
        SimCounter::LsqSearchVisits,
        SimCounter::RobWalkVisits,
        SimCounter::AllocEvents,
        SimCounter::CacheHits,
        SimCounter::CacheMisses,
    ];

    /// Stable snake_case name used in JSON and rendered snapshots.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SimCounter::Cycles => "cycles",
            SimCounter::Committed => "committed",
            SimCounter::Fetched => "fetched",
            SimCounter::Dispatched => "dispatched",
            SimCounter::Issued => "issued",
            SimCounter::GatedCycles => "gated_cycles",
            SimCounter::ReusedInsts => "reused_insts",
            SimCounter::IqScanVisits => "iq_scan_visits",
            SimCounter::IqWakeupVisits => "iq_wakeup_visits",
            SimCounter::LsqSearchVisits => "lsq_search_visits",
            SimCounter::RobWalkVisits => "rob_walk_visits",
            SimCounter::AllocEvents => "alloc_events",
            SimCounter::CacheHits => "cache_hits",
            SimCounter::CacheMisses => "cache_misses",
        }
    }
}

/// Host-domain counters: properties of the machine running the simulator.
/// Excluded from determinism comparisons by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HostCounter {
    /// Simulation points actually executed by the engine.
    JobsSimulated,
    /// Simulation points resolved from the result cache or in-batch dedup.
    JobsDeduplicated,
    /// Peak depth of the engine's pending-job queue.
    JobQueueDepthPeak,
    /// Checkpoints created by fast-forwarding.
    CkptCreated,
    /// Checkpoint requests served from the store.
    CkptReused,
    /// Nanoseconds spent fast-forwarding on the functional emulator.
    FastForwardNanos,
    /// Nanoseconds spent inside engine batches (the one engine clock).
    EngineWallNanos,
    /// Programs checked by the fuzzer.
    FuzzPrograms,
    /// Shrinker predicate evaluations.
    ShrinkEvals,
    /// Jobs resolved from the durable result store without simulating.
    StoreHits,
    /// Bytes appended to the durable result store's journal.
    StoreBytesWritten,
    /// Store entries evicted by the `--store-max-bytes` LRU policy.
    StoreEvictions,
    /// Job leases granted to service workers.
    JobsLeased,
    /// Jobs re-queued after a lease expired or a worker died.
    JobsRequeued,
}

impl HostCounter {
    /// Number of host-domain counters.
    pub const COUNT: usize = 14;

    /// Every counter, in stable rendering order.
    pub const ALL: [HostCounter; HostCounter::COUNT] = [
        HostCounter::JobsSimulated,
        HostCounter::JobsDeduplicated,
        HostCounter::JobQueueDepthPeak,
        HostCounter::CkptCreated,
        HostCounter::CkptReused,
        HostCounter::FastForwardNanos,
        HostCounter::EngineWallNanos,
        HostCounter::FuzzPrograms,
        HostCounter::ShrinkEvals,
        HostCounter::StoreHits,
        HostCounter::StoreBytesWritten,
        HostCounter::StoreEvictions,
        HostCounter::JobsLeased,
        HostCounter::JobsRequeued,
    ];

    /// Stable snake_case name used in JSON and rendered snapshots.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            HostCounter::JobsSimulated => "jobs_simulated",
            HostCounter::JobsDeduplicated => "jobs_deduplicated",
            HostCounter::JobQueueDepthPeak => "job_queue_depth_peak",
            HostCounter::CkptCreated => "ckpt_created",
            HostCounter::CkptReused => "ckpt_reused",
            HostCounter::FastForwardNanos => "fast_forward_nanos",
            HostCounter::EngineWallNanos => "engine_wall_nanos",
            HostCounter::FuzzPrograms => "fuzz_programs",
            HostCounter::ShrinkEvals => "shrink_evals",
            HostCounter::StoreHits => "store_hits",
            HostCounter::StoreBytesWritten => "store_bytes_written",
            HostCounter::StoreEvictions => "store_evictions",
            HostCounter::JobsLeased => "jobs_leased",
            HostCounter::JobsRequeued => "jobs_requeued",
        }
    }
}

/// Pipeline stages timed by the core's scoped stage timers (host domain:
/// the values are nanoseconds of *host* time spent in each stage's
/// modeling code on sampled cycles).
///
/// `Execute` is nested inside `Dispatch` (instructions execute
/// functionally at dispatch, sim-outorder style); share computations
/// subtract it so the stages partition the cycle loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Instruction fetch (front end, including I-cache latency modeling).
    Fetch,
    /// Decode buffering.
    Decode,
    /// Rename/dispatch into the window (includes `Execute`).
    Dispatch,
    /// Functional execution at dispatch (nested inside `Dispatch`).
    Execute,
    /// Wakeup/select and function-unit issue.
    Issue,
    /// Completion draining and misprediction recovery.
    Writeback,
    /// In-order retirement.
    Commit,
    /// End-of-cycle activity/power/epoch accounting.
    Accounting,
}

impl Stage {
    /// Number of timed stages.
    pub const COUNT: usize = 8;

    /// Every stage, in pipeline order (rendering order).
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Fetch,
        Stage::Decode,
        Stage::Dispatch,
        Stage::Execute,
        Stage::Issue,
        Stage::Writeback,
        Stage::Commit,
        Stage::Accounting,
    ];

    /// Stable snake_case name used in JSON and rendered snapshots.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Fetch => "fetch",
            Stage::Decode => "decode",
            Stage::Dispatch => "dispatch",
            Stage::Execute => "execute",
            Stage::Issue => "issue",
            Stage::Writeback => "writeback",
            Stage::Commit => "commit",
            Stage::Accounting => "accounting",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_tables_are_consistent() {
        for (i, c) in SimCounter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "SimCounter::ALL must list ids in discriminant order");
        }
        for (i, c) in HostCounter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
        }
    }

    #[test]
    fn names_are_unique_within_each_domain() {
        let mut sim: Vec<&str> = SimCounter::ALL.iter().map(|c| c.name()).collect();
        sim.sort_unstable();
        sim.dedup();
        assert_eq!(sim.len(), SimCounter::COUNT);
        let mut host: Vec<&str> = HostCounter::ALL.iter().map(|c| c.name()).collect();
        host.sort_unstable();
        host.dedup();
        assert_eq!(host.len(), HostCounter::COUNT);
    }
}
