//! # riq-metrics — simulator self-profiling
//!
//! The instrument the reproduction points at *itself*: a zero-cost-when-
//! disabled metrics layer with monotonic counters, stage timers, and
//! fixed-bucket histograms behind **static metric ids** — no string
//! hashing anywhere near the cycle loop, the same design discipline as
//! riq-trace's sinks (one boolean check when disabled).
//!
//! ## The domain split
//!
//! Every metric belongs to exactly one of two namespaces, and the split is
//! structural, not a naming convention:
//!
//! * **Simulation domain** ([`SimCounter`]) — counts of simulated work:
//!   cycles, committed instructions, issue-queue scan visits, LSQ search
//!   visits, ROB recovery-walk visits, per-cycle temporary allocations,
//!   cache hits/misses. These are a pure function of (program, config) and
//!   are **byte-identical across worker counts and checkpoint stores**
//!   (`tests/metrics determinism` in the workspace proves it).
//! * **Host domain** ([`HostCounter`], [`Stage`] timers) — wall-clock
//!   nanoseconds, RSS, job counts, fast-forward seconds. These describe
//!   the machine running the simulator and are *excluded from determinism
//!   comparisons by construction*: they live in separate arrays, render
//!   through separate entry points, and [`MetricsSnapshot::sim_json`]
//!   never touches them.
//!
//! ## Pieces
//!
//! * [`Registry`] — per-run, owned by one simulator core; trivially cheap
//!   (`enabled` bool + fixed arrays), disabled by default.
//! * [`MetricsSnapshot`] — the frozen result of a run, attached to
//!   `RunResult` by profiled runs and dumped by the deadlock watchdog.
//! * [`SharedRegistry`] — a thread-safe hub the sweep engine, checkpoint
//!   store, and fuzzer merge into (atomic adds commute exactly on `u64`,
//!   so the merged simulation-domain totals stay order-independent).
//! * [`PerfBlock`] — the run-speed accounting (simulated instructions/sec
//!   and cycles/sec, the related RISC-V sim's "605 KHz" line) embedded in
//!   schema-v4 run reports; one `PerfBlock` is the *single* clock source
//!   for both the stderr line and the JSON document.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod perf;
pub mod registry;
pub mod rss;
pub mod shared;
pub mod snapshot;

pub use ids::{HostCounter, SimCounter, Stage};
pub use perf::{format_rate, PerfBlock};
pub use registry::{Histogram, ProfileConfig, Registry, HIST_BUCKETS};
pub use rss::peak_rss_bytes;
pub use shared::{HubMode, HubSnapshot, SharedRegistry};
pub use snapshot::MetricsSnapshot;
