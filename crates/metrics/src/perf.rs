//! Run-speed accounting: the `perf` block of schema-v4 run reports.
//!
//! One [`PerfBlock`] is built from one wall-clock measurement and is the
//! *single* source for both the stderr `speed:` line and the JSON
//! document — the two surfaces can never disagree (they used to: the
//! engine timed itself separately from the report assembler).

use riq_trace::{JsonValue, ToJson};

/// Formats a rate as a human-friendly `"NNN.NN Hz/KHz/MHz"` string.
#[must_use]
pub fn format_rate(per_second: f64) -> String {
    if per_second >= 1e6 {
        format!("{:.2} MHz", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.2} KHz", per_second / 1e3)
    } else {
        format!("{:.2} Hz", per_second)
    }
}

/// Sim-speed accounting for one invocation (a run, a sweep batch, a fuzz
/// campaign, or one analyze leg).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBlock {
    /// Wall-clock seconds of the measured region (detailed simulation,
    /// excluding fast-forward — see `ff_wall_seconds`).
    pub wall_seconds: f64,
    /// Wall-clock seconds spent fast-forwarding on the functional
    /// emulator (0.0 when no checkpointing was involved).
    pub ff_wall_seconds: f64,
    /// Simulated instructions committed in the measured region.
    pub sim_instructions: u64,
    /// Simulated cycles in the measured region.
    pub sim_cycles: u64,
    /// Peak resident set size of the process, when the host exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Per-stage host-time shares (stage name → fraction), present only
    /// for profiled runs.
    pub stage_shares: Option<JsonValue>,
}

impl PerfBlock {
    /// Builds a perf block from a single wall-clock measurement.
    #[must_use]
    pub fn new(wall_seconds: f64, sim_instructions: u64, sim_cycles: u64) -> PerfBlock {
        PerfBlock {
            wall_seconds,
            ff_wall_seconds: 0.0,
            sim_instructions,
            sim_cycles,
            peak_rss_bytes: crate::rss::peak_rss_bytes(),
            stage_shares: None,
        }
    }

    /// Sets the fast-forward share of the wall clock.
    #[must_use]
    pub fn with_fast_forward(mut self, ff_wall_seconds: f64) -> PerfBlock {
        self.ff_wall_seconds = ff_wall_seconds;
        self
    }

    /// Attaches profiled stage shares.
    #[must_use]
    pub fn with_stage_shares(mut self, shares: JsonValue) -> PerfBlock {
        self.stage_shares = Some(shares);
        self
    }

    /// Simulated committed instructions per wall second.
    #[must_use]
    pub fn instructions_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sim_instructions as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Simulated cycles per wall second.
    #[must_use]
    pub fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sim_cycles as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Instructions per second in millions (the classic simulator MIPS).
    #[must_use]
    pub fn mips(&self) -> f64 {
        self.instructions_per_second() / 1e6
    }

    /// Cycles per second in thousands (the related RISC-V sim prints its
    /// speed as e.g. "605 KHz").
    #[must_use]
    pub fn sim_khz(&self) -> f64 {
        self.cycles_per_second() / 1e3
    }

    /// The stderr speed line, e.g.
    /// `speed: 1.23 MHz sim clock, 0.98 M inst/s, 1234567 cycles / 987654 insts in 1.00s`.
    #[must_use]
    pub fn speed_line(&self) -> String {
        format!(
            "speed: {} sim clock, {:.2} M inst/s, {} cycles / {} insts in {:.2}s",
            format_rate(self.cycles_per_second()),
            self.mips(),
            self.sim_cycles,
            self.sim_instructions,
            self.wall_seconds,
        )
    }
}

impl ToJson for PerfBlock {
    fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("wall_clock_seconds", JsonValue::Num(self.wall_seconds)),
            ("fast_forward_seconds", JsonValue::Num(self.ff_wall_seconds)),
            ("sim_instructions", JsonValue::UInt(self.sim_instructions)),
            ("sim_cycles", JsonValue::UInt(self.sim_cycles)),
            ("instructions_per_second", JsonValue::Num(self.instructions_per_second())),
            ("cycles_per_second", JsonValue::Num(self.cycles_per_second())),
            ("mips", JsonValue::Num(self.mips())),
            ("sim_khz", JsonValue::Num(self.sim_khz())),
        ];
        match self.peak_rss_bytes {
            Some(b) => pairs.push(("peak_rss_bytes", JsonValue::UInt(b))),
            None => pairs.push(("peak_rss_bytes", JsonValue::Null)),
        }
        if let Some(shares) = &self.stage_shares {
            pairs.push(("stage_shares", shares.clone()));
        }
        JsonValue::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_derive_from_one_clock() {
        let p = PerfBlock::new(2.0, 1_000_000, 4_000_000);
        assert!((p.instructions_per_second() - 500_000.0).abs() < 1e-6);
        assert!((p.cycles_per_second() - 2_000_000.0).abs() < 1e-6);
        assert!((p.mips() - 0.5).abs() < 1e-9);
        assert!((p.sim_khz() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_clock_yields_zero_rates_not_infinity() {
        let p = PerfBlock::new(0.0, 100, 100);
        assert_eq!(p.instructions_per_second(), 0.0);
        assert_eq!(p.cycles_per_second(), 0.0);
    }

    #[test]
    fn format_rate_picks_sensible_units() {
        assert_eq!(format_rate(12.0), "12.00 Hz");
        assert_eq!(format_rate(605_000.0), "605.00 KHz");
        assert_eq!(format_rate(2_500_000.0), "2.50 MHz");
    }

    #[test]
    fn json_block_and_speed_line_share_fields() {
        let p = PerfBlock::new(1.0, 900_000, 1_500_000).with_fast_forward(0.25);
        let json = p.to_json();
        assert_eq!(json.get("sim_instructions").and_then(JsonValue::as_u64), Some(900_000));
        assert_eq!(json.get("sim_cycles").and_then(JsonValue::as_u64), Some(1_500_000));
        assert!(json.get("wall_clock_seconds").and_then(JsonValue::as_f64).is_some());
        assert_eq!(json.get("fast_forward_seconds").and_then(JsonValue::as_f64), Some(0.25));
        assert!(json.get("peak_rss_bytes").is_some());
        let line = p.speed_line();
        assert!(line.starts_with("speed: "));
        assert!(line.contains("1500000 cycles / 900000 insts"));
    }

    #[test]
    fn stage_shares_attach_only_when_profiled() {
        let plain = PerfBlock::new(1.0, 1, 1);
        assert!(plain.to_json().get("stage_shares").is_none());
        let profiled = plain.with_stage_shares(JsonValue::obj([("fetch", JsonValue::Num(0.5))]));
        assert!(profiled.to_json().get("stage_shares").is_some());
    }
}
