//! The process-wide hub: a thread-safe registry the sweep engine,
//! checkpoint store, and fuzzer all merge into.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::ids::{HostCounter, SimCounter};
use crate::snapshot::MetricsSnapshot;
use riq_trace::JsonValue;

/// What the hub records for each simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HubMode {
    /// Record nothing (the engine default — zero cost for existing users).
    #[default]
    Disabled,
    /// Accumulate sim-speed totals (cycles, committed) from the stats every
    /// run already produces; cores run with a disabled per-run registry.
    Speed,
    /// Run cores with profiling registries and merge full snapshots.
    Profile,
}

struct HubInner {
    mode: HubMode,
    sim: [AtomicU64; SimCounter::COUNT],
    host: [AtomicU64; HostCounter::COUNT],
}

/// A cloneable handle to the shared hub.
///
/// All updates are relaxed atomic adds on `u64`, which commute exactly:
/// the merged simulation-domain totals are identical for any interleaving
/// of workers, which is what lets `--jobs 1` and `--jobs 4` produce
/// byte-identical [`HubSnapshot::sim_json`] documents.
#[derive(Clone)]
pub struct SharedRegistry {
    inner: Arc<HubInner>,
}

impl std::fmt::Debug for SharedRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedRegistry").field("mode", &self.inner.mode).finish()
    }
}

impl Default for SharedRegistry {
    fn default() -> SharedRegistry {
        SharedRegistry::new(HubMode::Disabled)
    }
}

impl SharedRegistry {
    /// Creates a hub in the given mode.
    #[must_use]
    pub fn new(mode: HubMode) -> SharedRegistry {
        SharedRegistry {
            inner: Arc::new(HubInner {
                mode,
                sim: [(); SimCounter::COUNT].map(|()| AtomicU64::new(0)),
                host: [(); HostCounter::COUNT].map(|()| AtomicU64::new(0)),
            }),
        }
    }

    /// The hub's recording mode.
    #[must_use]
    pub fn mode(&self) -> HubMode {
        self.inner.mode
    }

    /// True unless the hub is [`HubMode::Disabled`].
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.mode != HubMode::Disabled
    }

    /// True when runs should execute with a profiling per-run registry.
    #[must_use]
    pub fn wants_profile(&self) -> bool {
        self.inner.mode == HubMode::Profile
    }

    /// Adds to a simulation-domain total.
    #[inline]
    pub fn add_sim(&self, c: SimCounter, n: u64) {
        if self.is_enabled() {
            self.inner.sim[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds to a host-domain total.
    #[inline]
    pub fn add_host(&self, c: HostCounter, n: u64) {
        if self.is_enabled() {
            self.inner.host[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises a host-domain high-water mark (e.g. peak queue depth).
    #[inline]
    pub fn max_host(&self, c: HostCounter, n: u64) {
        if self.is_enabled() {
            self.inner.host[c as usize].fetch_max(n, Ordering::Relaxed);
        }
    }

    /// Overwrites a host-domain total with an externally-maintained value
    /// (e.g. copying the checkpoint store's lifetime counters in).
    #[inline]
    pub fn set_host(&self, c: HostCounter, n: u64) {
        if self.is_enabled() {
            self.inner.host[c as usize].store(n, Ordering::Relaxed);
        }
    }

    /// Merges one run's frozen snapshot into the hub.
    pub fn merge_run(&self, snap: &MetricsSnapshot) {
        if !self.is_enabled() {
            return;
        }
        for (slot, &v) in self.inner.sim.iter().zip(snap.sim.iter()) {
            slot.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Freezes the hub's totals.
    #[must_use]
    pub fn snapshot(&self) -> HubSnapshot {
        HubSnapshot {
            mode: self.inner.mode,
            sim: std::array::from_fn(|i| self.inner.sim[i].load(Ordering::Relaxed)),
            host: std::array::from_fn(|i| self.inner.host[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of the hub's totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HubSnapshot {
    /// The mode the hub was created in.
    pub mode: HubMode,
    /// Simulation-domain totals, indexed by [`SimCounter`].
    pub sim: [u64; SimCounter::COUNT],
    /// Host-domain totals, indexed by [`HostCounter`].
    pub host: [u64; HostCounter::COUNT],
}

impl HubSnapshot {
    /// Convenience read of one simulation-domain total.
    #[must_use]
    pub fn sim(&self, c: SimCounter) -> u64 {
        self.sim[c as usize]
    }

    /// Convenience read of one host-domain total.
    #[must_use]
    pub fn host(&self, c: HostCounter) -> u64 {
        self.host[c as usize]
    }

    /// Simulation-domain totals as JSON — the deterministic payload.
    #[must_use]
    pub fn sim_json(&self) -> JsonValue {
        JsonValue::obj(
            SimCounter::ALL.iter().map(|&c| (c.name(), JsonValue::UInt(self.sim[c as usize]))),
        )
    }

    /// Host-domain totals as JSON — kept in a separate document from
    /// [`sim_json`](HubSnapshot::sim_json) so determinism diffs can never
    /// accidentally include a nanosecond field.
    #[must_use]
    pub fn host_json(&self) -> JsonValue {
        JsonValue::obj(
            HostCounter::ALL.iter().map(|&c| (c.name(), JsonValue::UInt(self.host[c as usize]))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn disabled_hub_records_nothing() {
        let hub = SharedRegistry::default();
        assert!(!hub.is_enabled());
        hub.add_sim(SimCounter::Cycles, 10);
        hub.add_host(HostCounter::JobsSimulated, 3);
        hub.max_host(HostCounter::JobQueueDepthPeak, 9);
        hub.merge_run(&{
            let mut s = MetricsSnapshot::default();
            s.sim[0] = 7;
            s
        });
        let snap = hub.snapshot();
        assert_eq!(snap.sim, [0; SimCounter::COUNT]);
        assert_eq!(snap.host, [0; HostCounter::COUNT]);
    }

    #[test]
    fn concurrent_adds_commute() {
        let hub = SharedRegistry::new(HubMode::Speed);
        thread::scope(|scope| {
            for _ in 0..4 {
                let h = hub.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        h.add_sim(SimCounter::Committed, 2);
                        h.max_host(HostCounter::JobQueueDepthPeak, 5);
                    }
                });
            }
        });
        let snap = hub.snapshot();
        assert_eq!(snap.sim(SimCounter::Committed), 8000);
        assert_eq!(snap.host(HostCounter::JobQueueDepthPeak), 5);
    }

    #[test]
    fn sim_and_host_json_are_disjoint_documents() {
        let hub = SharedRegistry::new(HubMode::Profile);
        hub.add_sim(SimCounter::Cycles, 11);
        hub.add_host(HostCounter::EngineWallNanos, 99);
        let snap = hub.snapshot();
        let sim = snap.sim_json();
        let host = snap.host_json();
        assert_eq!(sim.get("cycles").and_then(JsonValue::as_u64), Some(11));
        assert!(sim.get("engine_wall_nanos").is_none());
        assert_eq!(host.get("engine_wall_nanos").and_then(JsonValue::as_u64), Some(99));
        assert!(host.get("cycles").is_none());
    }
}
