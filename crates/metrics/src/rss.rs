//! Peak resident set size, read from the host OS when available.

/// Peak RSS of the current process in bytes.
///
/// Linux-only (parses `VmHWM` from `/proc/self/status`); returns `None`
/// on other platforms or if the pseudo-file cannot be read — callers must
/// treat the value as best-effort host-domain data.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parses the `VmHWM:` line (`VmHWM:     12345 kB`) out of a
/// `/proc/<pid>/status` document.
#[cfg(any(target_os = "linux", test))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let doc = "Name:\triq\nVmPeak:\t  100 kB\nVmHWM:\t   2048 kB\nVmRSS:\t 1024 kB\n";
        assert_eq!(parse_vm_hwm(doc), Some(2048 * 1024));
        assert_eq!(parse_vm_hwm("Name: riq\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reads_a_positive_peak_on_linux() {
        let rss = peak_rss_bytes().expect("/proc/self/status should parse");
        assert!(rss > 0);
    }
}
