//! Direction predictors: saturating counters, bimodal, gshare.

/// A 2-bit saturating counter, the building block of the direction tables.
///
/// States 0–1 predict not-taken, 2–3 predict taken; counters start weakly
/// not-taken (1) like SimpleScalar's `bpred_create`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoBitCounter(u8);

impl Default for TwoBitCounter {
    fn default() -> Self {
        TwoBitCounter(1)
    }
}

impl TwoBitCounter {
    /// Current prediction.
    #[must_use]
    pub fn predict(self) -> bool {
        self.0 >= 2
    }

    /// Trains the counter with the actual outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Raw state (0..=3), for tests.
    #[must_use]
    pub fn state(self) -> u8 {
        self.0
    }
}

/// Which direction predictor the front-end uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirPredictorKind {
    /// Bimodal table of 2-bit counters (Table 1: 2048 entries).
    Bimod {
        /// Table entries (power of two).
        entries: u32,
    },
    /// Gshare: global history XOR PC indexing (extension for ablations).
    Gshare {
        /// Table entries (power of two).
        entries: u32,
        /// Global history length in bits.
        history_bits: u32,
    },
    /// Static always-taken.
    Taken,
    /// Static always-not-taken.
    NotTaken,
}

/// A direction predictor instance.
#[derive(Debug, Clone)]
pub enum DirPredictor {
    /// See [`DirPredictorKind::Bimod`].
    Bimod {
        /// Counter table.
        table: Vec<TwoBitCounter>,
    },
    /// See [`DirPredictorKind::Gshare`].
    Gshare {
        /// Counter table.
        table: Vec<TwoBitCounter>,
        /// Global branch-history register.
        history: u32,
        /// History mask.
        mask: u32,
    },
    /// Always predict taken.
    Taken,
    /// Always predict not-taken.
    NotTaken,
}

impl DirPredictor {
    /// Instantiates a predictor of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if a table size is zero or not a power of two.
    #[must_use]
    pub fn new(kind: DirPredictorKind) -> DirPredictor {
        let check = |entries: u32| {
            assert!(
                entries > 0 && entries.is_power_of_two(),
                "predictor table size must be a power of two, got {entries}"
            );
        };
        match kind {
            DirPredictorKind::Bimod { entries } => {
                check(entries);
                DirPredictor::Bimod { table: vec![TwoBitCounter::default(); entries as usize] }
            }
            DirPredictorKind::Gshare { entries, history_bits } => {
                check(entries);
                assert!(history_bits <= 31, "history too long: {history_bits}");
                DirPredictor::Gshare {
                    table: vec![TwoBitCounter::default(); entries as usize],
                    history: 0,
                    mask: (1u32 << history_bits) - 1,
                }
            }
            DirPredictorKind::Taken => DirPredictor::Taken,
            DirPredictorKind::NotTaken => DirPredictor::NotTaken,
        }
    }

    fn index(table_len: usize, pc: u32, xor: u32) -> usize {
        (((pc >> 2) ^ xor) as usize) & (table_len - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u32) -> bool {
        match self {
            DirPredictor::Bimod { table } => table[Self::index(table.len(), pc, 0)].predict(),
            DirPredictor::Gshare { table, history, mask } => {
                table[Self::index(table.len(), pc, history & mask)].predict()
            }
            DirPredictor::Taken => true,
            DirPredictor::NotTaken => false,
        }
    }

    /// Trains with the resolved outcome.
    pub fn update(&mut self, pc: u32, taken: bool) {
        match self {
            DirPredictor::Bimod { table } => {
                let i = Self::index(table.len(), pc, 0);
                table[i].update(taken);
            }
            DirPredictor::Gshare { table, history, mask } => {
                let i = Self::index(table.len(), pc, *history & *mask);
                table[i].update(taken);
                *history = ((*history << 1) | u32::from(taken)) & *mask;
            }
            DirPredictor::Taken | DirPredictor::NotTaken => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = TwoBitCounter::default();
        assert_eq!(c.state(), 1);
        assert!(!c.predict());
        c.update(true);
        c.update(true);
        c.update(true);
        assert_eq!(c.state(), 3);
        assert!(c.predict());
        c.update(false);
        assert!(c.predict(), "hysteresis: one not-taken keeps predicting taken");
        c.update(false);
        c.update(false);
        c.update(false);
        assert_eq!(c.state(), 0);
    }

    #[test]
    fn bimod_learns_a_loop_branch() {
        let mut p = DirPredictor::new(DirPredictorKind::Bimod { entries: 64 });
        let pc = 0x40_0100;
        for _ in 0..4 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
        // Loop exit once: still predicts taken next iteration.
        p.update(pc, false);
        assert!(p.predict(pc));
    }

    #[test]
    fn bimod_aliasing_uses_separate_entries() {
        let mut p = DirPredictor::new(DirPredictorKind::Bimod { entries: 64 });
        p.update(0x100, true);
        p.update(0x100, true);
        assert!(p.predict(0x100));
        assert!(!p.predict(0x104), "neighbouring branch untrained");
    }

    #[test]
    fn gshare_separates_by_history() {
        let mut p = DirPredictor::new(DirPredictorKind::Gshare { entries: 256, history_bits: 8 });
        let pc = 0x200;
        // Alternating pattern T,N,T,N is learnable with history.
        for _ in 0..64 {
            let predicted_irrelevant = p.predict(pc);
            let _ = predicted_irrelevant;
            p.update(pc, true);
            p.update(pc, false);
        }
        // After training, prediction should follow the alternation at least
        // at one of the two history points.
        let before = p.predict(pc);
        p.update(pc, before);
        // No assertion on exact value — just exercise the path and check
        // determinism (same state => same prediction).
        assert_eq!(p.predict(pc), p.predict(pc));
    }

    #[test]
    fn static_predictors() {
        let t = DirPredictor::new(DirPredictorKind::Taken);
        let n = DirPredictor::new(DirPredictorKind::NotTaken);
        assert!(t.predict(0x123c));
        assert!(!n.predict(0x123c));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_table_panics() {
        let _ = DirPredictor::new(DirPredictorKind::Bimod { entries: 100 });
    }
}
