//! The combined front-end predictor: direction table + BTB + RAS.

use crate::btb::{Btb, BtbStats};
use crate::dir::{DirPredictor, DirPredictorKind};
use crate::ras::Ras;
use riq_isa::CtrlKind;

/// Configuration of the front-end predictor (Table 1 defaults via
/// [`PredictorConfig::table1`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredictorConfig {
    /// Direction predictor.
    pub dir: DirPredictorKind,
    /// BTB sets.
    pub btb_sets: u32,
    /// BTB associativity.
    pub btb_ways: u32,
    /// Return-address-stack depth.
    pub ras_entries: u32,
}

impl PredictorConfig {
    /// The paper's Table 1 predictor: bimod 2048, BTB 512x4, RAS 8.
    #[must_use]
    pub fn table1() -> PredictorConfig {
        PredictorConfig {
            dir: DirPredictorKind::Bimod { entries: 2048 },
            btb_sets: 512,
            btb_ways: 4,
            ras_entries: 8,
        }
    }
}

/// A fetch-time prediction for one control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional transfers).
    pub taken: bool,
    /// Predicted target; `None` means "taken but target unknown", which the
    /// fetch unit treats as a stall-free fall-through (and will mispredict).
    pub target: Option<u32>,
}

/// Accumulated predictor activity and accuracy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Direction-table lookups.
    pub dir_lookups: u64,
    /// Direction-table updates.
    pub dir_updates: u64,
    /// Conditional branches whose direction was predicted correctly.
    pub dir_correct: u64,
    /// Conditional branches whose direction was mispredicted.
    pub dir_wrong: u64,
    /// BTB counters.
    pub btb: BtbStats,
    /// RAS pushes.
    pub ras_pushes: u64,
    /// RAS pops.
    pub ras_pops: u64,
}

impl riq_trace::ToJson for BpredStats {
    fn to_json(&self) -> riq_trace::JsonValue {
        riq_trace::JsonValue::obj([
            ("dir_lookups", self.dir_lookups.to_json()),
            ("dir_updates", self.dir_updates.to_json()),
            ("dir_correct", self.dir_correct.to_json()),
            ("dir_wrong", self.dir_wrong.to_json()),
            ("dir_accuracy", self.dir_accuracy().to_json()),
            ("btb", self.btb.to_json()),
            ("ras_pushes", self.ras_pushes.to_json()),
            ("ras_pops", self.ras_pops.to_json()),
        ])
    }
}

impl BpredStats {
    /// Direction accuracy in `[0, 1]`, 1 when no branches were seen.
    #[must_use]
    pub fn dir_accuracy(&self) -> f64 {
        let total = self.dir_correct + self.dir_wrong;
        if total == 0 {
            1.0
        } else {
            self.dir_correct as f64 / total as f64
        }
    }
}

/// The dynamic front-end branch predictor.
///
/// The fetch unit calls [`predict`](BranchPredictor::predict) for every
/// control instruction it fetches (it has the decoded static target in
/// hand, as the fetch buffer pre-decodes — SimpleScalar does the same);
/// the writeback stage calls [`update`](BranchPredictor::update) with the
/// resolved outcome.
///
/// # Examples
///
/// ```
/// use riq_bpred::{BranchPredictor, PredictorConfig};
/// use riq_isa::CtrlKind;
///
/// let mut bp = BranchPredictor::new(PredictorConfig::table1());
/// let p = bp.predict(0x400100, CtrlKind::CondBranch, Some(0x400040));
/// assert!(!p.taken, "2-bit counters start weakly not-taken");
/// bp.update(0x400100, CtrlKind::CondBranch, true, 0x400040);
/// bp.update(0x400100, CtrlKind::CondBranch, true, 0x400040);
/// assert!(bp.predict(0x400100, CtrlKind::CondBranch, Some(0x400040)).taken);
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    dir: DirPredictor,
    btb: Btb,
    ras: Ras,
    stats: BpredStats,
}

impl BranchPredictor {
    /// Instantiates the predictor.
    ///
    /// # Panics
    ///
    /// Panics on invalid table geometries (non-power-of-two sizes).
    #[must_use]
    pub fn new(cfg: PredictorConfig) -> BranchPredictor {
        BranchPredictor {
            dir: DirPredictor::new(cfg.dir),
            btb: Btb::new(cfg.btb_sets, cfg.btb_ways),
            ras: Ras::new(cfg.ras_entries),
            stats: BpredStats::default(),
        }
    }

    /// Predicts the control instruction at `pc`. `static_target` is the
    /// decode-time target for direct branches/jumps (`None` for indirect).
    pub fn predict(&mut self, pc: u32, kind: CtrlKind, static_target: Option<u32>) -> Prediction {
        match kind {
            CtrlKind::CondBranch => {
                self.stats.dir_lookups += 1;
                let taken = self.dir.predict(pc);
                // The BTB is probed in parallel with the direction lookup.
                let btb_target = self.btb.lookup(pc);
                let target = if taken { static_target.or(btb_target) } else { None };
                Prediction { taken, target }
            }
            CtrlKind::Jump => Prediction { taken: true, target: static_target },
            CtrlKind::Call => {
                self.ras.push(pc.wrapping_add(4));
                self.stats.ras_pushes += 1;
                Prediction { taken: true, target: static_target }
            }
            CtrlKind::IndirectCall => {
                self.ras.push(pc.wrapping_add(4));
                self.stats.ras_pushes += 1;
                let target = self.btb.lookup(pc);
                Prediction { taken: true, target }
            }
            CtrlKind::Return => {
                self.stats.ras_pops += 1;
                let target = self.ras.pop().or_else(|| self.btb.lookup(pc));
                Prediction { taken: true, target }
            }
        }
    }

    /// Trains the predictor with the resolved outcome of the control
    /// instruction at `pc`. `predicted_taken` is what was predicted at
    /// fetch (the caller tracks it), used for accuracy accounting.
    pub fn update(&mut self, pc: u32, kind: CtrlKind, taken: bool, target: u32) {
        if kind == CtrlKind::CondBranch {
            self.stats.dir_updates += 1;
            let predicted = self.dir.predict(pc);
            if predicted == taken {
                self.stats.dir_correct += 1;
            } else {
                self.stats.dir_wrong += 1;
            }
            self.dir.update(pc, taken);
        }
        if taken && !matches!(kind, CtrlKind::Return) {
            self.btb.update(pc, target);
        }
    }

    /// Trains the predictor with a resolved outcome without counting any
    /// activity: the direction table, BTB and RAS update exactly as during
    /// a run, but every statistic stays untouched. Used to replay the
    /// functional-warming window after a checkpoint restore so detailed
    /// measurement starts with trained structures and clean counters.
    pub fn warm(&mut self, pc: u32, kind: CtrlKind, taken: bool, target: u32) {
        match kind {
            CtrlKind::CondBranch => self.dir.update(pc, taken),
            CtrlKind::Call | CtrlKind::IndirectCall => self.ras.push(pc.wrapping_add(4)),
            CtrlKind::Return => {
                let _ = self.ras.pop();
            }
            CtrlKind::Jump => {}
        }
        if taken && !matches!(kind, CtrlKind::Return) {
            self.btb.warm(pc, target);
        }
    }

    /// Activity/accuracy counters (BTB counters folded in).
    #[must_use]
    pub fn stats(&self) -> BpredStats {
        BpredStats { btb: *self.btb.stats(), ..self.stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(PredictorConfig::table1())
    }

    #[test]
    fn loop_branch_becomes_predicted_taken() {
        let mut bp = bp();
        let pc = 0x0040_0120;
        let tgt = 0x0040_0100;
        for _ in 0..3 {
            bp.update(pc, CtrlKind::CondBranch, true, tgt);
        }
        let p = bp.predict(pc, CtrlKind::CondBranch, Some(tgt));
        assert_eq!(p, Prediction { taken: true, target: Some(tgt) });
    }

    #[test]
    fn not_taken_prediction_has_no_target() {
        let mut bp = bp();
        let p = bp.predict(0x400100, CtrlKind::CondBranch, Some(0x400000));
        assert!(!p.taken);
        assert_eq!(p.target, None);
    }

    #[test]
    fn calls_push_returns_pop() {
        let mut bp = bp();
        let call = bp.predict(0x400200, CtrlKind::Call, Some(0x400800));
        assert_eq!(call.target, Some(0x400800));
        let ret = bp.predict(0x400810, CtrlKind::Return, None);
        assert_eq!(ret.target, Some(0x400204), "RAS supplies the return target");
    }

    #[test]
    fn indirect_call_uses_btb() {
        let mut bp = bp();
        let miss = bp.predict(0x400300, CtrlKind::IndirectCall, None);
        assert_eq!(miss.target, None);
        bp.update(0x400300, CtrlKind::IndirectCall, true, 0x400900);
        let hit = bp.predict(0x400300, CtrlKind::IndirectCall, None);
        assert_eq!(hit.target, Some(0x400900));
    }

    #[test]
    fn accuracy_accounting() {
        let mut bp = bp();
        let pc = 0x400100;
        // Initial prediction is not-taken; feed taken twice (two wrong),
        // then taken (now counter trained, correct).
        bp.update(pc, CtrlKind::CondBranch, true, 0x400000);
        bp.update(pc, CtrlKind::CondBranch, true, 0x400000);
        bp.update(pc, CtrlKind::CondBranch, true, 0x400000);
        let s = bp.stats();
        assert_eq!(s.dir_updates, 3);
        assert_eq!(s.dir_wrong, 1, "first update mispredicted (weakly NT)");
        assert_eq!(s.dir_correct, 2);
        assert!(s.dir_accuracy() > 0.6);
    }

    #[test]
    fn warming_trains_without_counting() {
        let mut bp = bp();
        let pc = 0x0040_0120;
        let tgt = 0x0040_0100;
        for _ in 0..3 {
            bp.warm(pc, CtrlKind::CondBranch, true, tgt);
        }
        assert_eq!(bp.stats(), BpredStats::default(), "warming is stats-neutral");
        let p = bp.predict(pc, CtrlKind::CondBranch, Some(tgt));
        assert_eq!(p, Prediction { taken: true, target: Some(tgt) }, "direction+BTB trained");

        bp.warm(0x400200, CtrlKind::Call, true, 0x400800);
        let ret = bp.predict(0x400810, CtrlKind::Return, None);
        assert_eq!(ret.target, Some(0x400204), "warmed RAS supplies the return target");
    }

    #[test]
    fn stats_merge_btb() {
        let mut bp = bp();
        let _ = bp.predict(0x100, CtrlKind::CondBranch, Some(0x40));
        assert_eq!(bp.stats().btb.lookups, 1);
    }
}
