//! Return address stack.

/// A fixed-depth circular return-address stack (Table 1: 8 entries).
///
/// Like real hardware (and SimpleScalar), the RAS is updated speculatively
/// at fetch and is *not* repaired on misprediction; deep call chains wrap
/// and overwrite the oldest entries.
///
/// # Examples
///
/// ```
/// use riq_bpred::Ras;
/// let mut ras = Ras::new(8);
/// ras.push(0x400104);
/// assert_eq!(ras.pop(), Some(0x400104));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Ras {
    entries: Vec<u32>,
    top: usize,
    depth: usize,
    pushes: u64,
    pops: u64,
}

impl Ras {
    /// Creates an empty stack of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u32) -> Ras {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        Ras { entries: vec![0; capacity as usize], top: 0, depth: 0, pushes: 0, pops: 0 }
    }

    /// Pushes a return address (on `jal`/`jalr` at fetch).
    pub fn push(&mut self, addr: u32) {
        self.pushes += 1;
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = addr;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return address (on `jr $ra` at fetch), or `None`
    /// when the stack has underflowed.
    pub fn pop(&mut self) -> Option<u32> {
        self.pops += 1;
        if self.depth == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(addr)
    }

    /// Current valid depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total pushes performed (activity for the power model).
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total pops performed.
    #[must_use]
    pub fn pops(&self) -> u64 {
        self.pops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(4);
        ras.push(0x10);
        ras.push(0x20);
        assert_eq!(ras.pop(), Some(0x20));
        assert_eq!(ras.pop(), Some(0x10));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn wraps_and_overwrites_oldest() {
        let mut ras = Ras::new(2);
        ras.push(0x10);
        ras.push(0x20);
        ras.push(0x30); // overwrites 0x10
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(0x30));
        assert_eq!(ras.pop(), Some(0x20));
        assert_eq!(ras.pop(), None, "0x10 was lost to wrap-around");
    }

    #[test]
    fn counts_activity() {
        let mut ras = Ras::new(4);
        ras.push(1);
        let _ = ras.pop();
        let _ = ras.pop();
        assert_eq!(ras.pushes(), 1);
        assert_eq!(ras.pops(), 2);
    }
}
