//! # riq-bpred — branch prediction for the riq pipeline
//!
//! The front-end prediction machinery of the paper's Table 1 baseline:
//! a 2048-entry bimodal direction table ([`DirPredictor`]), a 512-set
//! 4-way [`Btb`], and an 8-entry [`Ras`], composed behind
//! [`BranchPredictor`].
//!
//! When the reuse issue queue enters *Code Reuse* state, the whole front
//! end — including everything in this crate — is clock-gated: in-loop
//! branches are then statically predicted with their last dynamic outcome
//! from the buffering phase (§2.4 of the paper) and only *verified* after
//! execution. That logic lives in `riq-core`; this crate just stops being
//! asked.
//!
//! # Examples
//!
//! ```
//! use riq_bpred::{BranchPredictor, PredictorConfig};
//! use riq_isa::CtrlKind;
//!
//! let mut bp = BranchPredictor::new(PredictorConfig::table1());
//! bp.update(0x40_0120, CtrlKind::CondBranch, true, 0x40_0100);
//! bp.update(0x40_0120, CtrlKind::CondBranch, true, 0x40_0100);
//! let p = bp.predict(0x40_0120, CtrlKind::CondBranch, Some(0x40_0100));
//! assert!(p.taken);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod btb;
mod dir;
mod predictor;
mod ras;

pub use btb::{Btb, BtbStats};
pub use dir::{DirPredictor, DirPredictorKind, TwoBitCounter};
pub use predictor::{BpredStats, BranchPredictor, Prediction, PredictorConfig};
pub use ras::Ras;
