//! Branch target buffer: set-associative, LRU, tagged by branch PC.

/// A branch-target-buffer entry.
#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    tag: u32,
    target: u32,
    last_use: u64,
}

/// Activity counters of the BTB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Lookups presented.
    pub lookups: u64,
    /// Lookups that found a target.
    pub hits: u64,
    /// Entries written or refreshed.
    pub updates: u64,
}

impl riq_trace::ToJson for BtbStats {
    fn to_json(&self) -> riq_trace::JsonValue {
        riq_trace::JsonValue::obj([
            ("lookups", self.lookups.to_json()),
            ("hits", self.hits.to_json()),
            ("updates", self.updates.to_json()),
        ])
    }
}

/// A set-associative branch target buffer (Table 1: 512 sets, 4 ways).
///
/// # Examples
///
/// ```
/// use riq_bpred::Btb;
/// let mut btb = Btb::new(512, 4);
/// assert_eq!(btb.lookup(0x400100), None);
/// btb.update(0x400100, 0x400040);
/// assert_eq!(btb.lookup(0x400100), Some(0x400040));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    sets: u32,
    ways: u32,
    entries: Vec<Option<BtbEntry>>,
    stats: BtbStats,
    tick: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a non-zero power of two or `ways` is zero.
    #[must_use]
    pub fn new(sets: u32, ways: u32) -> Btb {
        assert!(sets > 0 && sets.is_power_of_two(), "BTB sets must be a power of two");
        assert!(ways > 0, "BTB ways must be non-zero");
        Btb {
            sets,
            ways,
            entries: vec![None; (sets * ways) as usize],
            stats: BtbStats::default(),
            tick: 0,
        }
    }

    fn set_and_tag(&self, pc: u32) -> (usize, u32) {
        let word = pc >> 2;
        (((word & (self.sets - 1)) * self.ways) as usize, word / self.sets)
    }

    /// Looks up the predicted target of the control instruction at `pc`.
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        self.tick += 1;
        self.stats.lookups += 1;
        let (base, tag) = self.set_and_tag(pc);
        for e in self.entries[base..base + self.ways as usize].iter_mut().flatten() {
            if e.tag == tag {
                e.last_use = self.tick;
                self.stats.hits += 1;
                return Some(e.target);
            }
        }
        None
    }

    /// Installs or refreshes the target for `pc`.
    pub fn update(&mut self, pc: u32, target: u32) {
        self.tick += 1;
        self.stats.updates += 1;
        let (base, tag) = self.set_and_tag(pc);
        let set = &mut self.entries[base..base + self.ways as usize];
        // Refresh an existing entry.
        for e in set.iter_mut().flatten() {
            if e.tag == tag {
                e.target = target;
                e.last_use = self.tick;
                return;
            }
        }
        // Fill an invalid way or evict LRU.
        let victim = set.iter().position(Option::is_none).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, e)| e.map_or(0, |e| e.last_use))
                .map(|(i, _)| i)
                .unwrap_or(0)
        });
        set[victim] = Some(BtbEntry { tag, target, last_use: self.tick });
    }

    /// Installs or refreshes the target for `pc` without counting the
    /// update, for functional warming after a checkpoint restore.
    pub fn warm(&mut self, pc: u32, target: u32) {
        let saved = self.stats;
        self.update(pc, target);
        self.stats = saved;
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> &BtbStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(16, 2);
        assert_eq!(btb.lookup(0x1000), None);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
        assert_eq!(btb.stats().hits, 1);
        assert_eq!(btb.stats().lookups, 2);
    }

    #[test]
    fn update_refreshes_target() {
        let mut btb = Btb::new(16, 2);
        btb.update(0x1000, 0x2000);
        btb.update(0x1000, 0x3000);
        assert_eq!(btb.lookup(0x1000), Some(0x3000));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut btb = Btb::new(1, 2);
        btb.update(0x4, 0x100); // A
        btb.update(0x8, 0x200); // B
        btb.lookup(0x4); // touch A
        btb.update(0xc, 0x300); // C evicts B
        assert_eq!(btb.lookup(0x4), Some(0x100));
        assert_eq!(btb.lookup(0x8), None);
        assert_eq!(btb.lookup(0xc), Some(0x300));
    }

    #[test]
    fn distinct_pcs_do_not_alias_across_tags() {
        let mut btb = Btb::new(4, 1);
        btb.update(0x10, 0xaaaa_0000);
        // 0x10 and 0x50 share set (word 4 vs 20, sets=4 -> set 0) but differ in tag.
        assert_eq!(btb.lookup(0x50), None);
    }
}
