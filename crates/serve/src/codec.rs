//! Versioned binary codecs for the service wire and store formats.
//!
//! Four framed blob kinds, all in the `crates/ckpt` codec style — magic,
//! `u32` version, length-checked little-endian fields, and a trailing
//! FNV-1a digest over every preceding byte:
//!
//! * **result** (`"RIQRES\0\0"`): a full [`RunResult`] — the payload the
//!   durable store journals and workers post back;
//! * **program** (`"RIQPROG\0"`): a [`Program`] image;
//! * **config** (`"RIQCFG\0\0"`): a [`SimConfig`];
//! * **job** (`"RIQJOB\0\0"`): a [`JobBlob`] lease response — job id, the
//!   content-address key, and nested program/config blobs whose decoded
//!   fingerprints must match the key.
//!
//! Decoding never panics: every malformed input maps to a typed
//! [`CodecError`].

use crate::JobKey;
use riq_asm::Program;
use riq_bpred::{BpredStats, BtbStats, DirPredictorKind, PredictorConfig};
use riq_core::{
    BufferingStrategy, EpochSample, FuConfig, IssuePolicyKind, LatencyConfig, ReuseConfig,
    ReuseStats, RunResult, SimConfig, SimStats,
};
use riq_emu::ArchState;
use riq_isa::{FpReg, IntReg, StableHasher, NUM_FP_REGS, NUM_INT_REGS};
use riq_mem::{
    CacheConfig, CacheStats, HierarchyConfig, HierarchyStats, MainMemoryConfig, TlbConfig,
};
use riq_metrics::{Histogram, MetricsSnapshot, SimCounter, Stage, HIST_BUCKETS};
use riq_power::{PowerReport, NUM_COMPONENTS};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::hash::Hasher;

/// Leading magic bytes of an encoded result.
pub const MAGIC_RESULT: [u8; 8] = *b"RIQRES\0\0";
/// Leading magic bytes of an encoded program.
pub const MAGIC_PROGRAM: [u8; 8] = *b"RIQPROG\0";
/// Leading magic bytes of an encoded configuration.
pub const MAGIC_CONFIG: [u8; 8] = *b"RIQCFG\0\0";
/// Leading magic bytes of an encoded job blob.
pub const MAGIC_JOB: [u8; 8] = *b"RIQJOB\0\0";

/// Current format version, shared by all four blob kinds.
///
/// Version history: 1 — initial layout; 2 — config blobs gained the
/// issue-policy byte (between the buffering strategy and `max_cycles`).
pub const FORMAT_VERSION: u32 = 2;

/// Error decoding a service blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input does not start with the expected magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The input ended before the structure was complete.
    Truncated {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// A field held a value the format does not allow.
    BadValue {
        /// Byte offset of the offending field.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// The trailing digest does not match the content.
    Corrupt {
        /// Digest recomputed from the content.
        expected: u64,
        /// Digest stored in the blob.
        found: u64,
    },
    /// Well-formed blob followed by extra bytes.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a service blob: bad magic"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported blob format version {v} (this build reads {FORMAT_VERSION})")
            }
            CodecError::Truncated { offset } => {
                write!(f, "truncated blob: input ended at byte {offset}")
            }
            CodecError::BadValue { offset, what } => {
                write!(f, "invalid blob field at byte {offset}: {what}")
            }
            CodecError::Corrupt { expected, found } => {
                write!(f, "corrupt blob: content digest {expected:#018x} != stored {found:#018x}")
            }
            CodecError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes after blob"),
        }
    }
}

impl Error for CodecError {}

fn digest_of(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

fn w32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn wf64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn wstr(out: &mut Vec<u8>, s: &str) {
    w32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end =
            self.pos.checked_add(n).ok_or(CodecError::Truncated { offset: self.bytes.len() })?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated { offset: self.bytes.len() });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let raw = self.take(8)?;
        Ok(u64::from_le_bytes([raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7]]))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let at = self.pos;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| CodecError::BadValue { offset: at, what: "string is not UTF-8" })
    }

    /// Checks the magic/version header shared by every blob kind.
    fn header(&mut self, magic: &[u8; 8]) -> Result<(), CodecError> {
        if self.take(magic.len())? != magic {
            return Err(CodecError::BadMagic);
        }
        let version = self.u32()?;
        if version != FORMAT_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        Ok(())
    }

    /// Verifies the trailing digest and rejects leftover bytes.
    fn finish(&mut self) -> Result<(), CodecError> {
        let content_end = self.pos;
        let found = self.u64()?;
        let expected = digest_of(&self.bytes[..content_end]);
        if found != expected {
            return Err(CodecError::Corrupt { expected, found });
        }
        if self.pos != self.bytes.len() {
            return Err(CodecError::TrailingBytes { extra: self.bytes.len() - self.pos });
        }
        Ok(())
    }
}

// ---- SimStats (19 u64 words, shared by results and epoch deltas) ----

fn encode_sim_stats(out: &mut Vec<u8>, s: &SimStats) {
    for v in [
        s.cycles,
        s.committed,
        s.fetched,
        s.dispatched,
        s.issued,
        s.squashed,
        s.branches,
        s.mispredictions,
        s.gated_cycles,
        s.iq_occupancy_sum,
        s.rob_occupancy_sum,
        s.reuse.loops_detected,
        s.reuse.nblt_hits,
        s.reuse.nblt_inserts,
        s.reuse.bufferings_started,
        s.reuse.bufferings_revoked,
        s.reuse.code_reuse_entries,
        s.reuse.iterations_buffered,
        s.reuse.reused_insts,
    ] {
        w64(out, v);
    }
}

fn decode_sim_stats(r: &mut Reader<'_>) -> Result<SimStats, CodecError> {
    Ok(SimStats {
        cycles: r.u64()?,
        committed: r.u64()?,
        fetched: r.u64()?,
        dispatched: r.u64()?,
        issued: r.u64()?,
        squashed: r.u64()?,
        branches: r.u64()?,
        mispredictions: r.u64()?,
        gated_cycles: r.u64()?,
        iq_occupancy_sum: r.u64()?,
        rob_occupancy_sum: r.u64()?,
        reuse: ReuseStats {
            loops_detected: r.u64()?,
            nblt_hits: r.u64()?,
            nblt_inserts: r.u64()?,
            bufferings_started: r.u64()?,
            bufferings_revoked: r.u64()?,
            code_reuse_entries: r.u64()?,
            iterations_buffered: r.u64()?,
            reused_insts: r.u64()?,
        },
    })
}

fn encode_cache_stats(out: &mut Vec<u8>, s: &CacheStats) {
    for v in [s.reads, s.writes, s.hits, s.misses, s.writebacks] {
        w64(out, v);
    }
}

fn decode_cache_stats(r: &mut Reader<'_>) -> Result<CacheStats, CodecError> {
    Ok(CacheStats {
        reads: r.u64()?,
        writes: r.u64()?,
        hits: r.u64()?,
        misses: r.u64()?,
        writebacks: r.u64()?,
    })
}

// ---- RunResult ----

/// Serializes a [`RunResult`] into the versioned result format.
#[must_use]
pub fn encode_result(result: &RunResult) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC_RESULT);
    w32(&mut out, FORMAT_VERSION);
    encode_sim_stats(&mut out, &result.stats);
    // Power: a count-checked component table keeps old readers from
    // silently misinterpreting a build with a different component set.
    w32(&mut out, NUM_COMPONENTS as u32);
    for &e in result.power.raw_energy() {
        wf64(&mut out, e);
    }
    w64(&mut out, result.power.cycles);
    w64(&mut out, result.power.gated_cycles);
    for c in [&result.mem.il1, &result.mem.dl1, &result.mem.l2, &result.mem.itlb, &result.mem.dtlb]
    {
        encode_cache_stats(&mut out, c);
    }
    w64(&mut out, result.mem.memory_fills);
    for v in [
        result.bpred.dir_lookups,
        result.bpred.dir_updates,
        result.bpred.dir_correct,
        result.bpred.dir_wrong,
        result.bpred.btb.lookups,
        result.bpred.btb.hits,
        result.bpred.btb.updates,
        result.bpred.ras_pushes,
        result.bpred.ras_pops,
    ] {
        w64(&mut out, v);
    }
    w32(&mut out, result.epochs.len() as u32);
    for e in &result.epochs {
        w64(&mut out, e.index);
        w64(&mut out, e.start_cycle);
        w64(&mut out, e.end_cycle);
        encode_sim_stats(&mut out, &e.delta);
    }
    for i in 0..NUM_INT_REGS {
        w32(&mut out, result.arch_state.int_reg(IntReg::new(i as u8)));
    }
    for i in 0..NUM_FP_REGS {
        w64(&mut out, result.arch_state.fp_reg_bits(FpReg::new(i as u8)));
    }
    w64(&mut out, result.mem_digest);
    match &result.metrics {
        None => out.push(0),
        Some(snap) => {
            out.push(1);
            w32(&mut out, SimCounter::COUNT as u32);
            for &v in &snap.sim {
                w64(&mut out, v);
            }
            w32(&mut out, Stage::COUNT as u32);
            for &v in &snap.stage_nanos {
                w64(&mut out, v);
            }
            w64(&mut out, snap.stage_samples);
            w32(&mut out, HIST_BUCKETS as u32);
            for &v in &snap.iq_occupancy.buckets {
                w64(&mut out, v);
            }
        }
    }
    let digest = digest_of(&out);
    w64(&mut out, digest);
    out
}

/// Deserializes a result blob produced by [`encode_result`].
///
/// # Errors
///
/// Returns a typed [`CodecError`] for any malformed, truncated, or
/// corrupted input; never panics.
pub fn decode_result(bytes: &[u8]) -> Result<RunResult, CodecError> {
    let mut r = Reader::new(bytes);
    r.header(&MAGIC_RESULT)?;
    let stats = decode_sim_stats(&mut r)?;
    let components = r.u32()?;
    if components as usize != NUM_COMPONENTS {
        return Err(CodecError::BadValue { offset: r.pos - 4, what: "power component count" });
    }
    let mut energy = [0.0f64; NUM_COMPONENTS];
    for e in &mut energy {
        *e = r.f64()?;
    }
    let power_cycles = r.u64()?;
    let power_gated = r.u64()?;
    let power = PowerReport::from_parts(energy, power_cycles, power_gated);
    let il1 = decode_cache_stats(&mut r)?;
    let dl1 = decode_cache_stats(&mut r)?;
    let l2 = decode_cache_stats(&mut r)?;
    let itlb = decode_cache_stats(&mut r)?;
    let dtlb = decode_cache_stats(&mut r)?;
    let memory_fills = r.u64()?;
    let mem = HierarchyStats { il1, dl1, l2, itlb, dtlb, memory_fills };
    let bpred = BpredStats {
        dir_lookups: r.u64()?,
        dir_updates: r.u64()?,
        dir_correct: r.u64()?,
        dir_wrong: r.u64()?,
        btb: BtbStats { lookups: r.u64()?, hits: r.u64()?, updates: r.u64()? },
        ras_pushes: r.u64()?,
        ras_pops: r.u64()?,
    };
    let epoch_count = r.u32()?;
    let mut epochs = Vec::new();
    for _ in 0..epoch_count {
        epochs.push(EpochSample {
            index: r.u64()?,
            start_cycle: r.u64()?,
            end_cycle: r.u64()?,
            delta: decode_sim_stats(&mut r)?,
        });
    }
    let mut arch_state = ArchState::new();
    for i in 0..NUM_INT_REGS {
        let v = r.u32()?;
        let reg = IntReg::new(i as u8);
        if reg == IntReg::ZERO && v != 0 {
            return Err(CodecError::BadValue { offset: r.pos - 4, what: "nonzero $r0" });
        }
        arch_state.set_int_reg(reg, v);
    }
    for i in 0..NUM_FP_REGS {
        let v = r.u64()?;
        arch_state.set_fp_reg_bits(FpReg::new(i as u8), v);
    }
    let mem_digest = r.u64()?;
    let metrics = match r.u8()? {
        0 => None,
        1 => {
            let n = r.u32()?;
            if n as usize != SimCounter::COUNT {
                return Err(CodecError::BadValue { offset: r.pos - 4, what: "sim counter count" });
            }
            let mut sim = [0u64; SimCounter::COUNT];
            for v in &mut sim {
                *v = r.u64()?;
            }
            let n = r.u32()?;
            if n as usize != Stage::COUNT {
                return Err(CodecError::BadValue { offset: r.pos - 4, what: "stage count" });
            }
            let mut stage_nanos = [0u64; Stage::COUNT];
            for v in &mut stage_nanos {
                *v = r.u64()?;
            }
            let stage_samples = r.u64()?;
            let n = r.u32()?;
            if n as usize != HIST_BUCKETS {
                return Err(CodecError::BadValue {
                    offset: r.pos - 4,
                    what: "histogram bucket count",
                });
            }
            let mut buckets = [0u64; HIST_BUCKETS];
            for v in &mut buckets {
                *v = r.u64()?;
            }
            Some(MetricsSnapshot {
                sim,
                stage_nanos,
                stage_samples,
                iq_occupancy: Histogram { buckets },
            })
        }
        _ => return Err(CodecError::BadValue { offset: r.pos - 1, what: "metrics flag" }),
    };
    r.finish()?;
    Ok(RunResult { stats, power, mem, bpred, epochs, arch_state, mem_digest, metrics })
}

// ---- Program ----

/// Serializes a [`Program`] image.
#[must_use]
pub fn encode_program(program: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC_PROGRAM);
    w32(&mut out, FORMAT_VERSION);
    w32(&mut out, program.text_base());
    w32(&mut out, program.entry());
    w32(&mut out, program.data_base());
    w32(&mut out, program.text().len() as u32);
    for &word in program.text() {
        w32(&mut out, word);
    }
    w32(&mut out, program.data().len() as u32);
    out.extend_from_slice(program.data());
    // BTreeMap iterates in key order, so the encoding is canonical.
    w32(&mut out, program.symbols().len() as u32);
    for (name, &addr) in program.symbols() {
        wstr(&mut out, name);
        w32(&mut out, addr);
    }
    let digest = digest_of(&out);
    w64(&mut out, digest);
    out
}

/// Deserializes a program blob produced by [`encode_program`].
///
/// # Errors
///
/// Returns a typed [`CodecError`] for any malformed, truncated, or
/// corrupted input (including misaligned `text_base`/`entry`, which
/// [`Program::from_parts`] would otherwise panic on); never panics.
pub fn decode_program(bytes: &[u8]) -> Result<Program, CodecError> {
    let mut r = Reader::new(bytes);
    r.header(&MAGIC_PROGRAM)?;
    let text_base = r.u32()?;
    if text_base % 4 != 0 {
        return Err(CodecError::BadValue { offset: r.pos - 4, what: "misaligned text base" });
    }
    let entry = r.u32()?;
    if entry % 4 != 0 {
        return Err(CodecError::BadValue { offset: r.pos - 4, what: "misaligned entry point" });
    }
    let data_base = r.u32()?;
    let text_len = r.u32()? as usize;
    let mut text = Vec::new();
    for _ in 0..text_len {
        text.push(r.u32()?);
    }
    let data_len = r.u32()? as usize;
    let data = r.take(data_len)?.to_vec();
    let sym_count = r.u32()?;
    let mut symbols = BTreeMap::new();
    let mut prev: Option<String> = None;
    for _ in 0..sym_count {
        let name = r.str()?;
        if prev.as_ref().is_some_and(|p| *p >= name) {
            return Err(CodecError::BadValue {
                offset: r.pos,
                what: "symbol names not strictly increasing",
            });
        }
        let addr = r.u32()?;
        symbols.insert(name.clone(), addr);
        prev = Some(name);
    }
    r.finish()?;
    Ok(Program::from_parts(text_base, text, data_base, data, entry, symbols))
}

// ---- SimConfig ----

fn encode_cache_config(out: &mut Vec<u8>, c: &CacheConfig) {
    w32(out, c.sets);
    w32(out, c.ways);
    w32(out, c.line_bytes);
    w64(out, c.hit_latency);
}

fn decode_cache_config(r: &mut Reader<'_>) -> Result<CacheConfig, CodecError> {
    Ok(CacheConfig { sets: r.u32()?, ways: r.u32()?, line_bytes: r.u32()?, hit_latency: r.u64()? })
}

fn encode_tlb_config(out: &mut Vec<u8>, t: &TlbConfig) {
    w32(out, t.sets);
    w32(out, t.ways);
    w64(out, t.miss_penalty);
}

fn decode_tlb_config(r: &mut Reader<'_>) -> Result<TlbConfig, CodecError> {
    Ok(TlbConfig { sets: r.u32()?, ways: r.u32()?, miss_penalty: r.u64()? })
}

/// Serializes a [`SimConfig`].
#[must_use]
pub fn encode_config(cfg: &SimConfig) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC_CONFIG);
    w32(&mut out, FORMAT_VERSION);
    for v in [
        cfg.fetch_width,
        cfg.decode_width,
        cfg.issue_width,
        cfg.commit_width,
        cfg.fetch_queue,
        cfg.iq_entries,
        cfg.rob_entries,
        cfg.lsq_entries,
        cfg.fu.int_alu,
        cfg.fu.int_mult,
        cfg.fu.fp_alu,
        cfg.fu.fp_mult,
        cfg.fu.mem_ports,
    ] {
        w32(&mut out, v);
    }
    for v in [
        cfg.latency.int_alu,
        cfg.latency.int_mult,
        cfg.latency.int_div,
        cfg.latency.fp_alu,
        cfg.latency.fp_mult,
        cfg.latency.fp_div,
        cfg.latency.fp_sqrt,
    ] {
        w64(&mut out, v);
    }
    for c in [&cfg.mem.il1, &cfg.mem.dl1, &cfg.mem.l2] {
        encode_cache_config(&mut out, c);
    }
    encode_tlb_config(&mut out, &cfg.mem.itlb);
    encode_tlb_config(&mut out, &cfg.mem.dtlb);
    w64(&mut out, cfg.mem.memory.first_chunk);
    w64(&mut out, cfg.mem.memory.inter_chunk);
    w32(&mut out, cfg.mem.memory.chunk_bytes);
    match cfg.bpred.dir {
        DirPredictorKind::Bimod { entries } => {
            out.push(0);
            w32(&mut out, entries);
        }
        DirPredictorKind::Gshare { entries, history_bits } => {
            out.push(1);
            w32(&mut out, entries);
            w32(&mut out, history_bits);
        }
        DirPredictorKind::Taken => out.push(2),
        DirPredictorKind::NotTaken => out.push(3),
    }
    w32(&mut out, cfg.bpred.btb_sets);
    w32(&mut out, cfg.bpred.btb_ways);
    w32(&mut out, cfg.bpred.ras_entries);
    out.push(u8::from(cfg.reuse.enabled));
    w32(&mut out, cfg.reuse.nblt_entries);
    out.push(match cfg.reuse.strategy {
        BufferingStrategy::SingleIteration => 0,
        BufferingStrategy::MultiIteration => 1,
    });
    out.push(match cfg.policy {
        IssuePolicyKind::Oldest => 0,
        IssuePolicyKind::LoadDelay => 1,
    });
    w64(&mut out, cfg.max_cycles);
    let digest = digest_of(&out);
    w64(&mut out, digest);
    out
}

/// Deserializes a configuration blob produced by [`encode_config`].
///
/// # Errors
///
/// Returns a typed [`CodecError`] for any malformed, truncated, or
/// corrupted input; never panics.
pub fn decode_config(bytes: &[u8]) -> Result<SimConfig, CodecError> {
    let mut r = Reader::new(bytes);
    r.header(&MAGIC_CONFIG)?;
    let fetch_width = r.u32()?;
    let decode_width = r.u32()?;
    let issue_width = r.u32()?;
    let commit_width = r.u32()?;
    let fetch_queue = r.u32()?;
    let iq_entries = r.u32()?;
    let rob_entries = r.u32()?;
    let lsq_entries = r.u32()?;
    let fu = FuConfig {
        int_alu: r.u32()?,
        int_mult: r.u32()?,
        fp_alu: r.u32()?,
        fp_mult: r.u32()?,
        mem_ports: r.u32()?,
    };
    let latency = LatencyConfig {
        int_alu: r.u64()?,
        int_mult: r.u64()?,
        int_div: r.u64()?,
        fp_alu: r.u64()?,
        fp_mult: r.u64()?,
        fp_div: r.u64()?,
        fp_sqrt: r.u64()?,
    };
    let il1 = decode_cache_config(&mut r)?;
    let dl1 = decode_cache_config(&mut r)?;
    let l2 = decode_cache_config(&mut r)?;
    let itlb = decode_tlb_config(&mut r)?;
    let dtlb = decode_tlb_config(&mut r)?;
    let memory =
        MainMemoryConfig { first_chunk: r.u64()?, inter_chunk: r.u64()?, chunk_bytes: r.u32()? };
    let mem = HierarchyConfig { il1, dl1, l2, itlb, dtlb, memory };
    let dir = match r.u8()? {
        0 => DirPredictorKind::Bimod { entries: r.u32()? },
        1 => DirPredictorKind::Gshare { entries: r.u32()?, history_bits: r.u32()? },
        2 => DirPredictorKind::Taken,
        3 => DirPredictorKind::NotTaken,
        _ => {
            return Err(CodecError::BadValue { offset: r.pos - 1, what: "direction predictor tag" })
        }
    };
    let bpred =
        PredictorConfig { dir, btb_sets: r.u32()?, btb_ways: r.u32()?, ras_entries: r.u32()? };
    let enabled = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::BadValue { offset: r.pos - 1, what: "reuse enabled flag" }),
    };
    let nblt_entries = r.u32()?;
    let strategy = match r.u8()? {
        0 => BufferingStrategy::SingleIteration,
        1 => BufferingStrategy::MultiIteration,
        _ => return Err(CodecError::BadValue { offset: r.pos - 1, what: "buffering strategy" }),
    };
    let reuse = ReuseConfig { enabled, nblt_entries, strategy };
    let policy = match r.u8()? {
        0 => IssuePolicyKind::Oldest,
        1 => IssuePolicyKind::LoadDelay,
        _ => return Err(CodecError::BadValue { offset: r.pos - 1, what: "issue policy tag" }),
    };
    let max_cycles = r.u64()?;
    r.finish()?;
    Ok(SimConfig {
        fetch_width,
        decode_width,
        issue_width,
        commit_width,
        fetch_queue,
        iq_entries,
        rob_entries,
        lsq_entries,
        fu,
        latency,
        mem,
        bpred,
        reuse,
        policy,
        max_cycles,
    })
}

// ---- JobBlob ----

/// One leased job on the wire: everything a worker needs to simulate the
/// point and address the result.
#[derive(Debug, Clone)]
pub struct JobBlob {
    /// Daemon-assigned job id.
    pub job_id: u64,
    /// Content address of the result.
    pub key: JobKey,
    /// Display label (benchmark name).
    pub kernel: String,
    /// Instructions to fast-forward before detailed simulation.
    pub skip: u64,
    /// Warm-window size replayed on resume.
    pub warmup: u64,
    /// The program image.
    pub program: Program,
    /// The simulator configuration.
    pub config: SimConfig,
}

/// Serializes a [`JobBlob`] lease response.
#[must_use]
pub fn encode_job(job: &JobBlob) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC_JOB);
    w32(&mut out, FORMAT_VERSION);
    w64(&mut out, job.job_id);
    w64(&mut out, job.key.0);
    w64(&mut out, job.key.1);
    w64(&mut out, job.key.2);
    w64(&mut out, job.key.3);
    wstr(&mut out, &job.kernel);
    w64(&mut out, job.skip);
    w64(&mut out, job.warmup);
    let program = encode_program(&job.program);
    w32(&mut out, program.len() as u32);
    out.extend_from_slice(&program);
    let config = encode_config(&job.config);
    w32(&mut out, config.len() as u32);
    out.extend_from_slice(&config);
    let digest = digest_of(&out);
    w64(&mut out, digest);
    out
}

/// Deserializes a job blob produced by [`encode_job`], verifying that the
/// nested program/config fingerprints and skip/warmup match the key — a
/// worker can trust that simulating the blob produces the result the key
/// addresses.
///
/// # Errors
///
/// Returns a typed [`CodecError`] for any malformed, truncated, or
/// corrupted input, including a key that does not match the payload.
pub fn decode_job(bytes: &[u8]) -> Result<JobBlob, CodecError> {
    let mut r = Reader::new(bytes);
    r.header(&MAGIC_JOB)?;
    let job_id = r.u64()?;
    let key = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
    let kernel = r.str()?;
    let skip = r.u64()?;
    let warmup = r.u64()?;
    let program_len = r.u32()? as usize;
    let at = r.pos;
    let program = decode_program(r.take(program_len)?).map_err(|e| nested(e, at))?;
    let config_len = r.u32()? as usize;
    let at = r.pos;
    let config = decode_config(r.take(config_len)?).map_err(|e| nested(e, at))?;
    let key_end = r.pos;
    r.finish()?;
    if program.fingerprint() != key.0 {
        return Err(CodecError::BadValue {
            offset: key_end,
            what: "program fingerprint does not match key",
        });
    }
    if config.fingerprint() != key.1 {
        return Err(CodecError::BadValue {
            offset: key_end,
            what: "config fingerprint does not match key",
        });
    }
    let (norm_skip, norm_warmup) = if skip == 0 { (0, 0) } else { (skip, warmup) };
    if (norm_skip, norm_warmup) != (key.2, key.3) {
        return Err(CodecError::BadValue { offset: key_end, what: "skip/warmup do not match key" });
    }
    Ok(JobBlob { job_id, key, kernel, skip, warmup, program, config })
}

/// Rebases a nested blob's error offsets onto the outer blob.
fn nested(e: CodecError, base: usize) -> CodecError {
    match e {
        CodecError::Truncated { offset } => CodecError::Truncated { offset: base + offset },
        CodecError::BadValue { offset, what } => {
            CodecError::BadValue { offset: base + offset, what }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_core::Processor;

    fn sample_program() -> Program {
        riq_asm::assemble(
            "  li $r2, 30\nloop: sw $r2, 0x100($r0)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n",
        )
        .unwrap()
    }

    fn sample_result() -> RunResult {
        let p = sample_program();
        Processor::new(SimConfig::baseline().with_reuse(true)).run(&p).unwrap()
    }

    #[test]
    fn result_roundtrip_preserves_everything() {
        let result = sample_result();
        let bytes = encode_result(&result);
        let decoded = decode_result(&bytes).unwrap();
        assert_eq!(decoded.stats, result.stats);
        assert_eq!(decoded.mem, result.mem);
        assert_eq!(decoded.bpred, result.bpred);
        assert_eq!(decoded.arch_state, result.arch_state);
        assert_eq!(decoded.mem_digest, result.mem_digest);
        assert_eq!(decoded.power.cycles, result.power.cycles);
        assert_eq!(decoded.power.raw_energy(), result.power.raw_energy());
        assert_eq!(decode_result(&bytes).unwrap().metrics.is_some(), result.metrics.is_some());
        assert_eq!(encode_result(&decoded), bytes, "canonical encoding");
    }

    #[test]
    fn program_roundtrip_is_canonical() {
        let p = sample_program();
        let bytes = encode_program(&p);
        let decoded = decode_program(&bytes).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(decoded.fingerprint(), p.fingerprint());
        assert_eq!(encode_program(&decoded), bytes);
    }

    #[test]
    fn config_roundtrip_preserves_fingerprint() {
        for cfg in [
            SimConfig::baseline(),
            SimConfig::baseline().with_reuse(true),
            SimConfig::baseline().with_iq_size(256),
        ] {
            let bytes = encode_config(&cfg);
            let decoded = decode_config(&bytes).unwrap();
            assert_eq!(decoded, cfg);
            assert_eq!(decoded.fingerprint(), cfg.fingerprint());
            assert_eq!(encode_config(&decoded), bytes);
        }
    }

    #[test]
    fn job_roundtrip_and_key_validation() {
        let program = sample_program();
        let config = SimConfig::baseline();
        let key = (program.fingerprint(), config.fingerprint(), 0, 0);
        let blob = JobBlob {
            job_id: 7,
            key,
            kernel: "sample".to_string(),
            skip: 0,
            warmup: 0,
            program,
            config,
        };
        let bytes = encode_job(&blob);
        let decoded = decode_job(&bytes).unwrap();
        assert_eq!(decoded.job_id, 7);
        assert_eq!(decoded.key, key);
        assert_eq!(decoded.kernel, "sample");

        // A blob whose key does not match its payload is rejected.
        let mut lying = blob.clone();
        lying.key.0 ^= 1;
        let bad = encode_job(&lying);
        assert!(matches!(decode_job(&bad), Err(CodecError::BadValue { .. })));
    }

    #[test]
    fn bad_magic_and_future_version_rejected() {
        let mut bytes = encode_result(&sample_result());
        bytes[0] ^= 0xff;
        assert!(matches!(decode_result(&bytes), Err(CodecError::BadMagic)));
        let mut bytes = encode_program(&sample_program());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(decode_program(&bytes), Err(CodecError::UnsupportedVersion(99))));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encode_result(&sample_result());
        for len in 0..bytes.len() {
            let err = decode_result(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. } | CodecError::Corrupt { .. }),
                "truncation to {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn single_byte_corruption_detected() {
        let bytes = encode_result(&sample_result());
        for idx in (0..bytes.len()).step_by(97).chain(bytes.len() - 8..bytes.len()) {
            let mut bad = bytes.clone();
            bad[idx] ^= 0x40;
            assert!(decode_result(&bad).is_err(), "flip at byte {idx} went undetected");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_config(&SimConfig::baseline());
        bytes.push(0);
        assert!(matches!(decode_config(&bytes), Err(CodecError::TrailingBytes { extra: 1 })));
    }
}
