//! The worker loop: lease → verify → simulate → report.
//!
//! A worker is a plain HTTP client of the daemon. It polls
//! `POST /lease?worker=NAME`; a `200` carries an encoded job blob
//! ([`crate::codec::decode_job`] verifies that the nested program and
//! configuration hash to the job's content-address key, so a worker never
//! wastes cycles simulating a payload that could not produce the promised
//! result). The worker then simulates exactly the way the in-process
//! engine does for an unprofiled job — `Processor::run` from cycle zero,
//! or `Checkpoint::fast_forward` + `resume_from` when the job carries a
//! skip — which is what makes service results bit-identical to engine
//! results. Success posts the encoded result to `POST /complete`; any
//! failure (codec, fast-forward, simulator error, panic) posts a message
//! to `POST /fail` and the daemon's queue decides between retry and
//! terminal failure.
//!
//! Crash injection for tests: [`WorkerOptions::abandon_after`] makes the
//! worker exit *immediately after leasing* its Nth job, without
//! completing or failing it — indistinguishable, from the daemon's side,
//! from a SIGKILLed worker process. Lease expiry then requeues the job.

use crate::codec::{decode_job, encode_result, JobBlob};
use crate::http::http_request;
use riq_ckpt::Checkpoint;
use riq_core::{Processor, RunResult};
use std::panic::{self, AssertUnwindSafe};
use std::thread;
use std::time::{Duration, Instant};

/// Knobs for one worker loop.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Worker name reported in lease requests (shows up in `/statsz`).
    pub worker_id: String,
    /// Sleep between empty lease polls.
    pub poll: Duration,
    /// Stop after completing this many jobs (`None` = run until the
    /// daemon goes away or the queue reports idle with `exit_when_idle`).
    pub max_jobs: Option<u64>,
    /// Crash injection: exit right after *leasing* the Nth job, leaving
    /// it neither completed nor failed — the daemon sees a SIGKILL.
    pub abandon_after: Option<u64>,
    /// Return once a lease poll comes back empty instead of sleeping.
    pub exit_when_idle: bool,
}

impl WorkerOptions {
    /// A worker that polls forever (until the daemon disappears).
    #[must_use]
    pub fn named(worker_id: &str) -> WorkerOptions {
        WorkerOptions {
            worker_id: worker_id.to_string(),
            poll: Duration::from_millis(20),
            max_jobs: None,
            abandon_after: None,
            exit_when_idle: false,
        }
    }
}

/// Why [`run_worker`] returned, plus its lifetime counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Jobs simulated and successfully posted back.
    pub completed: u64,
    /// Jobs whose simulation failed (posted to `/fail`).
    pub failed: u64,
    /// Leases taken in total (≥ completed + failed; greater when the
    /// worker abandoned one).
    pub leased: u64,
    /// Terminal condition.
    pub exit: WorkerExit,
}

/// Terminal condition of a worker loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The queue had nothing to lease and `exit_when_idle` was set.
    Idle,
    /// `max_jobs` reached.
    JobBudget,
    /// Crash injection fired (`abandon_after`).
    Abandoned,
    /// The daemon stopped answering.
    Disconnected,
}

fn simulate(job: &JobBlob) -> Result<RunResult, String> {
    // Mirror of the engine's unprofiled execution path (run_pending_local
    // in riq-bench): same constructors, same resume semantics, so the
    // result is bit-identical to an in-process run of the same key.
    let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
        if job.skip > 0 {
            let ckpt = Checkpoint::fast_forward(&job.program, job.skip, job.warmup)
                .map_err(|e| format!("fast-forward failed: {e}"))?;
            Processor::new(job.config.clone())
                .resume_from(&job.program, &ckpt, job.warmup)
                .map_err(|e| format!("simulation failed: {e}"))
        } else {
            Processor::new(job.config.clone())
                .run(&job.program)
                .map_err(|e| format!("simulation failed: {e}"))
        }
    }));
    match attempt {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_string());
            Err(format!("simulation panicked: {msg}"))
        }
    }
}

/// Runs the worker loop against the daemon at `addr` (e.g.
/// `127.0.0.1:7341`) until a terminal condition is reached.
#[must_use]
pub fn run_worker(addr: &str, options: &WorkerOptions) -> WorkerOutcome {
    let mut outcome =
        WorkerOutcome { completed: 0, failed: 0, leased: 0, exit: WorkerExit::Disconnected };
    let lease_path = format!("/lease?worker={}", options.worker_id);
    loop {
        if let Some(max) = options.max_jobs {
            if outcome.completed + outcome.failed >= max {
                outcome.exit = WorkerExit::JobBudget;
                return outcome;
            }
        }
        let (status, body) = match http_request(addr, "POST", &lease_path, b"") {
            Ok(reply) => reply,
            Err(_) => {
                outcome.exit = WorkerExit::Disconnected;
                return outcome;
            }
        };
        match status {
            204 => {
                if options.exit_when_idle {
                    outcome.exit = WorkerExit::Idle;
                    return outcome;
                }
                thread::sleep(options.poll);
                continue;
            }
            200 => {}
            _ => {
                // Daemon answered but refused the lease; back off.
                thread::sleep(options.poll);
                continue;
            }
        }
        outcome.leased += 1;
        if options.abandon_after.is_some_and(|n| outcome.leased >= n) {
            // Simulated SIGKILL: vanish with the lease held.
            outcome.exit = WorkerExit::Abandoned;
            return outcome;
        }
        let job = match decode_job(&body) {
            Ok(job) => job,
            Err(e) => {
                // Can't even name the job id without a decoded blob; the
                // lease will expire and requeue on the daemon side.
                let _ = e;
                thread::sleep(options.poll);
                continue;
            }
        };
        let started = Instant::now();
        match simulate(&job) {
            Ok(result) => {
                let wall_nanos = started.elapsed().as_nanos() as u64;
                let path = format!(
                    "/complete?job={}&worker={}&wall_nanos={wall_nanos}",
                    job.job_id, options.worker_id
                );
                match http_request(addr, "POST", &path, &encode_result(&result)) {
                    Ok((200 | 204, _)) => outcome.completed += 1,
                    Ok(_) => outcome.failed += 1,
                    Err(_) => {
                        outcome.exit = WorkerExit::Disconnected;
                        return outcome;
                    }
                }
            }
            Err(message) => {
                let path = format!("/fail?job={}&worker={}", job.job_id, options.worker_id);
                if http_request(addr, "POST", &path, message.as_bytes()).is_err() {
                    outcome.exit = WorkerExit::Disconnected;
                    return outcome;
                }
                outcome.failed += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_job;
    use crate::http::{serve_on, Request, Response};
    use crate::queue::{JobQueue, QueueConfig};
    use crate::store::ResultStore;
    use riq_core::SimConfig;
    use std::collections::HashMap;
    use std::net::TcpListener;
    use std::sync::{Arc, Mutex};

    /// A minimal mechanism-only daemon: queue + store + job payload map,
    /// no sweep/aggregation policy. Exercises the full worker protocol.
    fn mini_daemon(
        jobs: Vec<JobBlob>,
        store_path: &std::path::Path,
        config: QueueConfig,
    ) -> (crate::http::ServerHandle, Arc<JobQueue>, Arc<Mutex<ResultStore>>) {
        let queue = Arc::new(JobQueue::new(config));
        let store = Arc::new(Mutex::new(ResultStore::open(store_path, None).unwrap()));
        let mut payloads: HashMap<u64, JobBlob> = HashMap::new();
        for mut job in jobs {
            let (id, _) = queue.submit(job.key, 0);
            job.job_id = id;
            payloads.insert(id, job);
        }
        let payloads = Arc::new(payloads);
        let handler = {
            let queue = Arc::clone(&queue);
            let store = Arc::clone(&store);
            move |req: &Request| match (req.method.as_str(), req.path.as_str()) {
                ("POST", "/lease") => {
                    let worker = req.query_param("worker").unwrap_or("anon");
                    match queue.lease(worker) {
                        Some(lease) => {
                            let mut job = payloads[&lease.job_id].clone();
                            job.job_id = lease.job_id;
                            Response::bytes(encode_job(&job))
                        }
                        None => Response::no_content(),
                    }
                }
                ("POST", "/complete") => {
                    let Some(id) = req.query_param("job").and_then(|v| v.parse().ok()) else {
                        return Response::bad_request("bad job id");
                    };
                    let Some(key) = queue.key_of(id) else {
                        return Response::not_found("unknown job");
                    };
                    if crate::codec::decode_result(&req.body).is_err() {
                        return Response::bad_request("bad result blob");
                    }
                    store.lock().unwrap().put_blob(key, req.body.clone()).unwrap();
                    queue.complete(id);
                    Response::no_content()
                }
                ("POST", "/fail") => {
                    let Some(id) = req.query_param("job").and_then(|v| v.parse().ok()) else {
                        return Response::bad_request("bad job id");
                    };
                    queue.fail(id, &String::from_utf8_lossy(&req.body));
                    Response::no_content()
                }
                _ => Response::not_found("unhandled"),
            }
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = serve_on(listener, Arc::new(handler)).unwrap();
        (server, queue, store)
    }

    fn sample_job(n: u32) -> JobBlob {
        let src = format!(
            "  li $r2, {n}\nloop: sw $r2, 0x100($r0)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n"
        );
        let program = riq_asm::assemble(&src).unwrap();
        let config = SimConfig::baseline();
        let key = (program.fingerprint(), config.fingerprint(), 0, 0);
        JobBlob {
            job_id: 0,
            key,
            kernel: format!("sample-{n}"),
            skip: 0,
            warmup: 0,
            program,
            config,
        }
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("riq-worker-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("store.wal")
    }

    #[test]
    fn worker_drains_queue_and_results_match_local_run() {
        let path = tmp("drain");
        let jobs = vec![sample_job(4), sample_job(11)];
        let expected: Vec<RunResult> = jobs.iter().map(|j| simulate(j).unwrap()).collect();
        let keys: Vec<_> = jobs.iter().map(|j| j.key).collect();
        let (server, queue, store) = mini_daemon(jobs, &path, QueueConfig::default());
        let addr = server.addr().to_string();
        let outcome = run_worker(
            &addr,
            &WorkerOptions { exit_when_idle: true, ..WorkerOptions::named("w0") },
        );
        assert_eq!(outcome.completed, 2);
        assert_eq!(outcome.exit, WorkerExit::Idle);
        assert_eq!(queue.stats().done, 2);
        let mut store = store.lock().unwrap();
        for (key, expect) in keys.iter().zip(&expected) {
            let got = store.get(key).unwrap();
            assert_eq!(got.stats, expect.stats);
            assert_eq!(got.arch_state, expect.arch_state);
            assert_eq!(got.mem_digest, expect.mem_digest);
        }
        drop(store);
        server.stop();
    }

    #[test]
    fn abandoned_lease_is_recovered_by_second_worker() {
        let path = tmp("abandon");
        let config = QueueConfig {
            lease_ttl: Duration::from_millis(30),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
        };
        let (server, queue, _store) = mini_daemon(vec![sample_job(6)], &path, config);
        let addr = server.addr().to_string();
        // First worker leases the only job and vanishes mid-flight.
        let crashed = run_worker(
            &addr,
            &WorkerOptions { abandon_after: Some(1), ..WorkerOptions::named("doomed") },
        );
        assert_eq!(crashed.exit, WorkerExit::Abandoned);
        assert_eq!(crashed.completed, 0);
        thread::sleep(Duration::from_millis(40));
        // Lease expired; a healthy worker picks the job up and finishes.
        let healthy = run_worker(
            &addr,
            &WorkerOptions { exit_when_idle: true, ..WorkerOptions::named("healthy") },
        );
        assert_eq!(healthy.completed, 1);
        assert_eq!(queue.stats().done, 1);
        assert_eq!(queue.stats().requeues, 1);
        server.stop();
    }

    #[test]
    fn worker_reports_disconnect_when_daemon_stops() {
        let path = tmp("gone");
        let (server, _queue, _store) = mini_daemon(vec![], &path, QueueConfig::default());
        let addr = server.addr().to_string();
        server.stop();
        let outcome = run_worker(&addr, &WorkerOptions::named("orphan"));
        assert_eq!(outcome.exit, WorkerExit::Disconnected);
    }
}
