//! Durable content-addressed result store.
//!
//! The store is a single append-only write-ahead journal: every `put`
//! appends one framed record
//!
//! ```text
//! [u32 payload len][JobKey: 4 x u64 LE][result blob][u64 frame digest]
//! ```
//!
//! where the digest (FNV-1a, as everywhere else in the tree) covers the
//! length prefix, key, and blob. Because the journal is append-only, a
//! crash can only damage the *tail*: on open the store replays frames
//! until it hits a short or digest-mismatched one, truncates the file at
//! that frame boundary, and continues — every fully-synced record
//! survives any kill point.
//!
//! Results are content-addressed by [`JobKey`], so a record is immutable
//! once written; re-putting an existing key is a no-op. An optional byte
//! budget evicts least-recently-used records by compaction (rewrite to a
//! temp file + atomic rename), never touching *pinned* keys — the daemon
//! pins every key an in-flight sweep depends on, so eviction can never
//! pull a result out from under a sweep that is still aggregating.

use crate::codec::{decode_result, encode_result};
use crate::JobKey;
use riq_core::RunResult;
use riq_isa::StableHasher;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Per-frame overhead on disk: length prefix + key + digest trailer.
const FRAME_OVERHEAD: u64 = 4 + 32 + 8;

/// Counters and sizes reported by [`ResultStore::stats`] (and surfaced
/// through the daemon's `/statsz` endpoint and the bench host block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of results currently stored.
    pub entries: u64,
    /// Journal size on disk in bytes.
    pub bytes_on_disk: u64,
    /// `get` calls that found their key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Records evicted by the byte budget.
    pub evictions: u64,
    /// Total bytes appended to the journal over this store's lifetime
    /// (not reduced by compaction).
    pub bytes_written: u64,
    /// Frames dropped during recovery because the journal tail was torn
    /// or corrupt.
    pub recovered_torn_frames: u64,
}

struct Entry {
    blob: Arc<Vec<u8>>,
    /// LRU clock value of the most recent access.
    last_access: u64,
}

/// A durable, content-addressed map from [`JobKey`] to encoded
/// [`RunResult`], backed by a crash-safe append-only journal.
pub struct ResultStore {
    path: PathBuf,
    file: File,
    entries: HashMap<JobKey, Entry>,
    /// Pin refcounts by key. Pins are held independently of entry
    /// presence so the daemon can pin an in-flight sweep's keys *before*
    /// their results land — an entry whose key is pinned is never
    /// evicted.
    pins: HashMap<JobKey, u32>,
    max_bytes: Option<u64>,
    bytes_on_disk: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    bytes_written: u64,
    recovered_torn_frames: u64,
}

fn frame_digest(len_prefix: [u8; 4], key_bytes: &[u8], blob: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(&len_prefix);
    h.write(key_bytes);
    h.write(blob);
    h.finish()
}

fn key_bytes(key: &JobKey) -> [u8; 32] {
    let mut out = [0u8; 32];
    out[0..8].copy_from_slice(&key.0.to_le_bytes());
    out[8..16].copy_from_slice(&key.1.to_le_bytes());
    out[16..24].copy_from_slice(&key.2.to_le_bytes());
    out[24..32].copy_from_slice(&key.3.to_le_bytes());
    out
}

impl ResultStore {
    /// Opens (or creates) the journal at `path`, replaying every intact
    /// frame and truncating any torn tail left by a crash.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the journal cannot be read,
    /// created, or truncated.
    pub fn open(path: &Path, max_bytes: Option<u64>) -> io::Result<ResultStore> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new().read(true).append(true).create(true).open(path)?;
        let mut raw = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut raw)?;

        let mut entries = HashMap::new();
        let mut pos = 0usize;
        let mut clock = 0u64;
        let mut torn = 0u64;
        while pos < raw.len() {
            let frame_start = pos;
            let Some(rest) = raw.get(pos..pos + 4) else { break };
            let payload_len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            let frame_len = 4 + 32 + payload_len + 8;
            let Some(frame) = raw.get(frame_start..frame_start + frame_len) else {
                torn += 1;
                break;
            };
            let len_prefix = [frame[0], frame[1], frame[2], frame[3]];
            let kb = &frame[4..36];
            let blob = &frame[36..36 + payload_len];
            let stored = u64::from_le_bytes(frame[36 + payload_len..].try_into().unwrap());
            if frame_digest(len_prefix, kb, blob) != stored {
                torn += 1;
                break;
            }
            let key = (
                u64::from_le_bytes(kb[0..8].try_into().unwrap()),
                u64::from_le_bytes(kb[8..16].try_into().unwrap()),
                u64::from_le_bytes(kb[16..24].try_into().unwrap()),
                u64::from_le_bytes(kb[24..32].try_into().unwrap()),
            );
            clock += 1;
            entries.insert(key, Entry { blob: Arc::new(blob.to_vec()), last_access: clock });
            pos = frame_start + frame_len;
        }
        if pos < raw.len() {
            // Torn or corrupt tail: truncate back to the last intact frame
            // boundary so future appends start clean.
            file.set_len(pos as u64)?;
            file.sync_all()?;
        }
        let bytes_on_disk = pos as u64;
        Ok(ResultStore {
            path: path.to_path_buf(),
            file,
            entries,
            pins: HashMap::new(),
            max_bytes,
            bytes_on_disk,
            clock,
            hits: 0,
            misses: 0,
            evictions: 0,
            bytes_written: 0,
            recovered_torn_frames: torn,
        })
    }

    /// Number of results currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no results.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is present, without counting a hit or touching the
    /// LRU clock.
    #[must_use]
    pub fn contains(&self, key: &JobKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Looks up the result for `key`, decoding it from the stored blob.
    /// Counts a hit or miss and refreshes the entry's LRU position.
    pub fn get(&mut self, key: &JobKey) -> Option<Arc<RunResult>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_access = clock;
                // Frames are digest-verified on every open and append, so
                // a decode failure here would be a codec bug, not bad
                // data; surface it as a miss rather than a panic.
                match decode_result(&entry.blob) {
                    Ok(result) => {
                        self.hits += 1;
                        Some(Arc::new(result))
                    }
                    Err(_) => {
                        self.misses += 1;
                        None
                    }
                }
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Returns the raw encoded blob for `key`, for shipping over the wire
    /// without a decode/re-encode round trip.
    pub fn get_blob(&mut self, key: &JobKey) -> Option<Arc<Vec<u8>>> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(key)?;
        entry.last_access = clock;
        self.hits += 1;
        Some(Arc::clone(&entry.blob))
    }

    /// Durably stores `result` under `key`. A no-op if the key is already
    /// present (results are content-addressed and immutable). May trigger
    /// LRU eviction if a byte budget is set.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the append or sync fails.
    pub fn put(&mut self, key: JobKey, result: &RunResult) -> io::Result<()> {
        self.put_blob(key, encode_result(result))
    }

    /// Durably stores an already-encoded result blob under `key`.
    ///
    /// The blob must be a valid encoded result (workers produce them with
    /// `encode_result`; the daemon validates foreign blobs with
    /// `decode_result` before calling this).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the append or sync fails.
    pub fn put_blob(&mut self, key: JobKey, blob: Vec<u8>) -> io::Result<()> {
        if self.entries.contains_key(&key) {
            return Ok(());
        }
        let len_prefix = (blob.len() as u32).to_le_bytes();
        let kb = key_bytes(&key);
        let digest = frame_digest(len_prefix, &kb, &blob);
        let mut frame = Vec::with_capacity(blob.len() + FRAME_OVERHEAD as usize);
        frame.extend_from_slice(&len_prefix);
        frame.extend_from_slice(&kb);
        frame.extend_from_slice(&blob);
        frame.extend_from_slice(&digest.to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.bytes_on_disk += frame.len() as u64;
        self.bytes_written += frame.len() as u64;
        self.clock += 1;
        self.entries.insert(key, Entry { blob: Arc::new(blob), last_access: self.clock });
        self.maybe_evict()
    }

    /// Pins `key`: while pinned (refcounted), any entry under it is
    /// exempt from LRU eviction. The key does not have to be present yet —
    /// the daemon pins every key an accepted sweep depends on up front,
    /// so a result landing later is protected from the moment it lands.
    pub fn pin(&mut self, key: &JobKey) {
        *self.pins.entry(*key).or_insert(0) += 1;
    }

    /// Releases one pin on `key`.
    pub fn unpin(&mut self, key: &JobKey) {
        if let Some(count) = self.pins.get_mut(key) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(key);
            }
        }
    }

    /// Current counters and sizes.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.entries.len() as u64,
            bytes_on_disk: self.bytes_on_disk,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            bytes_written: self.bytes_written,
            recovered_torn_frames: self.recovered_torn_frames,
        }
    }

    fn disk_size_of(blob_len: usize) -> u64 {
        blob_len as u64 + FRAME_OVERHEAD
    }

    /// Evicts least-recently-used unpinned entries until the journal fits
    /// the byte budget, then compacts the file. Pinned entries are never
    /// evicted, even if the budget stays exceeded.
    fn maybe_evict(&mut self) -> io::Result<()> {
        let Some(max) = self.max_bytes else { return Ok(()) };
        if self.bytes_on_disk <= max {
            return Ok(());
        }
        let mut victims: Vec<(u64, JobKey, u64)> = self
            .entries
            .iter()
            .filter(|(k, _)| !self.pins.contains_key(*k))
            .map(|(k, e)| (e.last_access, *k, Self::disk_size_of(e.blob.len())))
            .collect();
        victims.sort_unstable();
        let mut projected = self.bytes_on_disk;
        let mut evicted = 0u64;
        for (_, key, size) in victims {
            if projected <= max {
                break;
            }
            self.entries.remove(&key);
            projected -= size;
            evicted += 1;
        }
        if evicted == 0 {
            return Ok(());
        }
        self.evictions += evicted;
        self.compact()
    }

    /// Rewrites the journal to contain exactly the live entries, via a
    /// temp file and atomic rename, then reopens the append handle.
    fn compact(&mut self) -> io::Result<()> {
        let tmp_path = self.path.with_extension("wal.tmp");
        let mut tmp = File::create(&tmp_path)?;
        let mut ordered: Vec<(&JobKey, &Entry)> = self.entries.iter().collect();
        ordered.sort_unstable_by_key(|(_, e)| e.last_access);
        let mut total = 0u64;
        for (key, entry) in ordered {
            let len_prefix = (entry.blob.len() as u32).to_le_bytes();
            let kb = key_bytes(key);
            let digest = frame_digest(len_prefix, &kb, &entry.blob);
            tmp.write_all(&len_prefix)?;
            tmp.write_all(&kb)?;
            tmp.write_all(&entry.blob)?;
            tmp.write_all(&digest.to_le_bytes())?;
            total += Self::disk_size_of(entry.blob.len());
        }
        tmp.sync_all()?;
        drop(tmp);
        fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new().read(true).append(true).open(&self.path)?;
        self.bytes_on_disk = total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riq_core::{Processor, SimConfig};

    fn sample_result(n: u32) -> RunResult {
        let src = format!(
            "  li $r2, {n}\nloop: sw $r2, 0x100($r0)\n  addi $r2, $r2, -1\n  bne $r2, $r0, loop\n  halt\n"
        );
        let p = riq_asm::assemble(&src).unwrap();
        Processor::new(SimConfig::baseline()).run(&p).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("riq-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = tmp_dir("reopen");
        let path = dir.join("store.wal");
        let r1 = sample_result(5);
        let r2 = sample_result(9);
        {
            let mut store = ResultStore::open(&path, None).unwrap();
            store.put((1, 2, 0, 0), &r1).unwrap();
            store.put((3, 4, 0, 0), &r2).unwrap();
            assert_eq!(store.len(), 2);
            // Re-putting an existing key appends nothing.
            let before = store.stats().bytes_on_disk;
            store.put((1, 2, 0, 0), &r1).unwrap();
            assert_eq!(store.stats().bytes_on_disk, before);
        }
        let mut store = ResultStore::open(&path, None).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&(1, 2, 0, 0)).unwrap().stats, r1.stats);
        assert_eq!(store.get(&(3, 4, 0, 0)).unwrap().stats, r2.stats);
        assert!(store.get(&(9, 9, 0, 0)).is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_offset_recovers_cleanly() {
        let dir = tmp_dir("trunc");
        let path = dir.join("store.wal");
        let r1 = sample_result(3);
        let r2 = sample_result(7);
        let (first_frame_end, full_len) = {
            let mut store = ResultStore::open(&path, None).unwrap();
            store.put((1, 1, 0, 0), &r1).unwrap();
            let first = store.stats().bytes_on_disk;
            store.put((2, 2, 0, 0), &r2).unwrap();
            (first, store.stats().bytes_on_disk)
        };
        let intact = fs::read(&path).unwrap();
        assert_eq!(intact.len() as u64, full_len);
        for cut in 0..intact.len() as u64 {
            fs::write(&path, &intact[..cut as usize]).unwrap();
            let mut store = ResultStore::open(&path, None)
                .unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
            // Every fully-journaled record before the cut survives; the
            // torn tail is dropped, never a panic or a garbled result.
            let expect = u64::from(cut >= first_frame_end) + u64::from(cut >= full_len);
            assert_eq!(store.len() as u64, expect, "cut at byte {cut}");
            if cut >= first_frame_end {
                assert_eq!(store.get(&(1, 1, 0, 0)).unwrap().stats, r1.stats);
            }
            // The store stays writable after recovery.
            store.put((3, 3, 0, 0), &r2).unwrap();
            assert_eq!(store.len() as u64, expect + 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tail_is_dropped_on_open() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("store.wal");
        {
            let mut store = ResultStore::open(&path, None).unwrap();
            store.put((1, 1, 0, 0), &sample_result(4)).unwrap();
            store.put((2, 2, 0, 0), &sample_result(6)).unwrap();
        }
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 20;
        raw[last] ^= 0x01;
        fs::write(&path, &raw).unwrap();
        let store = ResultStore::open(&path, None).unwrap();
        assert_eq!(store.len(), 1, "corrupt second frame dropped, first kept");
        assert!(store.contains(&(1, 1, 0, 0)));
        assert_eq!(store.stats().recovered_torn_frames, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_skips_pinned_entries() {
        let dir = tmp_dir("evict");
        let path = dir.join("store.wal");
        let result = sample_result(5);
        let frame = frame_size(&result);
        // Budget for exactly two frames.
        let mut store = ResultStore::open(&path, Some(2 * frame)).unwrap();
        store.put((1, 0, 0, 0), &result).unwrap();
        store.put((2, 0, 0, 0), &result).unwrap();
        store.pin(&(1, 0, 0, 0));
        // Touch key 1 is pinned; key 2 is the LRU unpinned victim.
        store.put((3, 0, 0, 0), &result).unwrap();
        assert!(store.contains(&(1, 0, 0, 0)), "pinned entry must survive eviction");
        assert!(!store.contains(&(2, 0, 0, 0)), "LRU unpinned entry evicted");
        assert!(store.contains(&(3, 0, 0, 0)));
        assert_eq!(store.stats().evictions, 1);
        assert!(store.stats().bytes_on_disk <= 2 * frame);

        // With every remaining entry pinned, going over budget evicts
        // nothing — in-flight dependencies are never sacrificed. Pins are
        // taken *before* the results land, daemon-style.
        store.pin(&(3, 0, 0, 0));
        for k in [4u64, 5, 6] {
            store.pin(&(k, 0, 0, 0));
            store.put((k, 0, 0, 0), &result).unwrap();
        }
        for k in [1u64, 3, 4, 5, 6] {
            assert!(store.contains(&(k, 0, 0, 0)), "pinned key {k} evicted");
        }
        // After unpinning, the next over-budget put can evict again.
        store.unpin(&(3, 0, 0, 0));
        store.put((7, 0, 0, 0), &result).unwrap();
        assert!(!store.contains(&(3, 0, 0, 0)));
        let _ = fs::remove_dir_all(&dir);
    }

    fn frame_size(result: &RunResult) -> u64 {
        encode_result(result).len() as u64 + FRAME_OVERHEAD
    }

    #[test]
    fn eviction_survives_reopen() {
        let dir = tmp_dir("evict-reopen");
        let path = dir.join("store.wal");
        let result = sample_result(8);
        let frame = frame_size(&result);
        {
            let mut store = ResultStore::open(&path, Some(2 * frame)).unwrap();
            for k in 1..=4u64 {
                store.put((k, 0, 0, 0), &result).unwrap();
            }
            assert!(store.len() <= 2);
        }
        let store = ResultStore::open(&path, Some(2 * frame)).unwrap();
        assert!(store.len() <= 2);
        assert!(store.contains(&(4, 0, 0, 0)), "most recent entry survives compaction + reopen");
        let _ = fs::remove_dir_all(&dir);
    }
}
