//! Leased priority job queue with cross-client dedup.
//!
//! Scheduling state machine (payloads live with the daemon; the queue
//! tracks ids, keys, and lifecycle only):
//!
//! ```text
//!            submit (new key)
//!                 │
//!                 ▼
//!   ┌────────► Queued ──lease──► Leased{worker, deadline, attempt}
//!   │             ▲                   │            │
//!   │   expiry /  │                   │ complete   │ lease expires or
//!   │   worker-   └───────────────────┼────────────┘ worker reports
//!   │   fail with retries left        ▼              failure
//!   │                               Done
//!   └── (attempt ≤ max_attempts)      ▲
//!                                     │ complete is idempotent: a stale
//!       attempts exhausted ──► Failed │ worker finishing after requeue
//!                                     │ still lands the (deterministic,
//!                                     └ content-addressed) result
//! ```
//!
//! Dedup: submitting a key that is already queued, leased, or done
//! returns the existing job id and performs no new work — the cross-client
//! "never simulate the same point twice" guarantee. Only a `Failed` job is
//! revived by resubmission (with its attempt counter reset).
//!
//! Leases carry a TTL. A worker that is SIGKILLed simply stops
//! heartbeating; when its lease deadline passes, the job is requeued with
//! a bounded exponential backoff, and after `max_attempts` transitions to
//! `Failed` (surfaced by the engine as `ExperimentError::JobFailed`).

use crate::JobKey;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning knobs for lease lifetime and retry policy.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// How long a lease is valid before the job is presumed abandoned.
    pub lease_ttl: Duration,
    /// Maximum simulation attempts (initial + retries) before `Failed`.
    pub max_attempts: u32,
    /// Base delay before a requeued job becomes leasable again; doubles
    /// per attempt (bounded exponential backoff).
    pub backoff_base: Duration,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            lease_ttl: Duration::from_secs(60),
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
        }
    }
}

/// Public lifecycle of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker (possibly in a backoff window).
    Queued,
    /// Held by a worker under a live lease.
    Leased {
        /// The worker holding the lease.
        worker: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// Result landed in the store.
    Done,
    /// Attempts exhausted.
    Failed {
        /// Last failure message reported (or "lease expired").
        message: String,
    },
}

/// A granted lease: everything the scheduling layer knows about the job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeasedJob {
    /// Daemon-assigned job id.
    pub job_id: u64,
    /// Content address of the result this job produces.
    pub key: JobKey,
    /// 1-based attempt number.
    pub attempt: u32,
}

/// Counters reported by [`JobQueue::stats`] (surfaced via `/statsz`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs currently waiting (including backoff windows).
    pub queued: u64,
    /// Jobs currently under a live lease.
    pub leased: u64,
    /// Jobs completed.
    pub done: u64,
    /// Jobs that exhausted their attempts.
    pub failed: u64,
    /// Submissions answered by an existing job (cross-client dedup).
    pub dedup_hits: u64,
    /// Leases granted over the queue's lifetime.
    pub leases_granted: u64,
    /// Jobs requeued after lease expiry or worker-reported failure.
    pub requeues: u64,
}

enum Slot {
    Queued { priority: i64, seq: u64, attempt: u32, available_at: Instant },
    Leased { priority: i64, seq: u64, worker: String, attempt: u32, deadline: Instant },
    Done,
    Failed { message: String },
}

struct Job {
    key: JobKey,
    slot: Slot,
}

#[derive(Default)]
struct Inner {
    jobs: HashMap<u64, Job>,
    by_key: HashMap<JobKey, u64>,
    next_id: u64,
    dedup_hits: u64,
    leases_granted: u64,
    requeues: u64,
}

/// Thread-safe leased priority queue. All methods take `&self`; the queue
/// is shared across connection-handler threads behind an `Arc`.
#[derive(Default)]
pub struct JobQueue {
    config: QueueConfig,
    inner: Mutex<Inner>,
    changed: Condvar,
}

impl JobQueue {
    /// Creates an empty queue with the given lease/retry policy.
    #[must_use]
    pub fn new(config: QueueConfig) -> JobQueue {
        JobQueue { config, inner: Mutex::new(Inner::default()), changed: Condvar::new() }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking holder cannot leave Inner half-updated in a way that
        // breaks scheduling invariants; keep serving.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Submits a job for `key` at `priority` (higher first, FIFO within a
    /// priority). Returns `(job_id, fresh)`: if an equivalent job is
    /// already queued, leased, or done, the existing id is returned with
    /// `fresh == false` and nothing is re-simulated. A `Failed` job is
    /// revived with a fresh attempt budget.
    pub fn submit(&self, key: JobKey, priority: i64) -> (u64, bool) {
        let mut inner = self.lock();
        if let Some(&id) = inner.by_key.get(&key) {
            let revive = matches!(inner.jobs.get(&id).map(|j| &j.slot), Some(Slot::Failed { .. }));
            if revive {
                let job = inner.jobs.get_mut(&id).expect("by_key points at live job");
                job.slot =
                    Slot::Queued { priority, seq: id, attempt: 0, available_at: Instant::now() };
                drop(inner);
                self.changed.notify_all();
                return (id, true);
            }
            inner.dedup_hits += 1;
            return (id, false);
        }
        inner.next_id += 1;
        let id = inner.next_id;
        inner.jobs.insert(
            id,
            Job {
                key,
                slot: Slot::Queued { priority, seq: id, attempt: 0, available_at: Instant::now() },
            },
        );
        inner.by_key.insert(key, id);
        drop(inner);
        self.changed.notify_all();
        (id, true)
    }

    /// Marks a job `Done` directly, without a lease — used when the store
    /// already holds the key at submission time.
    pub fn resolve_from_store(&self, job_id: u64) {
        let mut inner = self.lock();
        if let Some(job) = inner.jobs.get_mut(&job_id) {
            if !matches!(job.slot, Slot::Done) {
                job.slot = Slot::Done;
            }
        }
        drop(inner);
        self.changed.notify_all();
    }

    /// Requeues expired leases (and fails jobs out of attempts). Called
    /// internally by `lease`/`wait_done`; exposed so the daemon can also
    /// tick on a timer.
    pub fn expire_leases(&self) {
        let now = Instant::now();
        let mut inner = self.lock();
        self.expire_locked(&mut inner, now);
        drop(inner);
        self.changed.notify_all();
    }

    fn expire_locked(&self, inner: &mut Inner, now: Instant) {
        let mut requeues = 0u64;
        for job in inner.jobs.values_mut() {
            if let Slot::Leased { priority, seq, attempt, deadline, .. } = job.slot {
                if deadline <= now {
                    requeues += 1;
                    job.slot = if attempt >= self.config.max_attempts {
                        Slot::Failed { message: "lease expired".to_string() }
                    } else {
                        // The expired TTL already served as the backoff;
                        // the job is leasable again immediately.
                        Slot::Queued { priority, seq, attempt, available_at: now }
                    };
                }
            }
        }
        inner.requeues += requeues;
    }

    /// Grants the highest-priority available job to `worker`, or `None`
    /// if nothing is leasable right now.
    pub fn lease(&self, worker: &str) -> Option<LeasedJob> {
        let now = Instant::now();
        let mut inner = self.lock();
        self.expire_locked(&mut inner, now);
        let mut best: Option<(i64, u64, u64)> = None;
        for (&id, job) in &inner.jobs {
            if let Slot::Queued { priority, seq, available_at, .. } = job.slot {
                if available_at <= now {
                    // Highest priority first; FIFO (lowest seq) within one.
                    let rank = (priority, u64::MAX - seq, id);
                    let beats = match best {
                        None => true,
                        Some(b) => rank > (b.0, u64::MAX - b.1, b.2),
                    };
                    if beats {
                        best = Some((priority, seq, id));
                    }
                }
            }
        }
        let (_, _, id) = best?;
        inner.leases_granted += 1;
        let job = inner.jobs.get_mut(&id).expect("selected job exists");
        let Slot::Queued { priority, seq, attempt, .. } = job.slot else { unreachable!() };
        let attempt = attempt + 1;
        job.slot = Slot::Leased {
            priority,
            seq,
            worker: worker.to_string(),
            attempt,
            deadline: now + self.config.lease_ttl,
        };
        let key = job.key;
        drop(inner);
        Some(LeasedJob { job_id: id, key, attempt })
    }

    /// Extends the lease deadline for `job_id` if `worker` still holds it.
    /// Returns whether the lease was still valid.
    pub fn heartbeat(&self, job_id: u64, worker: &str) -> bool {
        let now = Instant::now();
        let mut inner = self.lock();
        if let Some(job) = inner.jobs.get_mut(&job_id) {
            if let Slot::Leased { worker: holder, deadline, .. } = &mut job.slot {
                if holder == worker {
                    *deadline = now + self.config.lease_ttl;
                    return true;
                }
            }
        }
        false
    }

    /// Marks `job_id` done. Idempotent, and deliberately accepts a stale
    /// worker: simulation is deterministic and results are
    /// content-addressed, so a result from an expired lease is exactly as
    /// good as one from the current holder.
    pub fn complete(&self, job_id: u64) {
        let mut inner = self.lock();
        if let Some(job) = inner.jobs.get_mut(&job_id) {
            job.slot = Slot::Done;
        }
        drop(inner);
        self.changed.notify_all();
    }

    /// Records a worker-reported failure: requeues with backoff while
    /// attempts remain, otherwise transitions to `Failed`. Ignored if the
    /// job already completed (e.g. via another worker).
    pub fn fail(&self, job_id: u64, message: &str) {
        let now = Instant::now();
        let mut inner = self.lock();
        let mut requeued = false;
        if let Some(job) = inner.jobs.get_mut(&job_id) {
            if let Slot::Leased { priority, seq, attempt, .. } = job.slot {
                requeued = true;
                job.slot = if attempt >= self.config.max_attempts {
                    Slot::Failed { message: message.to_string() }
                } else {
                    let backoff = self.config.backoff_base * 2u32.saturating_pow(attempt - 1);
                    Slot::Queued { priority, seq, attempt, available_at: now + backoff }
                };
            }
        }
        if requeued {
            inner.requeues += 1;
        }
        drop(inner);
        self.changed.notify_all();
    }

    /// Public lifecycle state of `job_id`.
    #[must_use]
    pub fn state(&self, job_id: u64) -> Option<JobState> {
        let inner = self.lock();
        inner.jobs.get(&job_id).map(|job| match &job.slot {
            Slot::Queued { .. } => JobState::Queued,
            Slot::Leased { worker, attempt, .. } => {
                JobState::Leased { worker: worker.clone(), attempt: *attempt }
            }
            Slot::Done => JobState::Done,
            Slot::Failed { message } => JobState::Failed { message: message.clone() },
        })
    }

    /// The content-address key of `job_id`.
    #[must_use]
    pub fn key_of(&self, job_id: u64) -> Option<JobKey> {
        self.lock().jobs.get(&job_id).map(|j| j.key)
    }

    /// Blocks until every job in `ids` is `Done` or `Failed`, expiring
    /// stale leases while it waits. Returns the terminal states in the
    /// same order, or `None` on timeout.
    pub fn wait_done(&self, ids: &[u64], timeout: Duration) -> Option<Vec<JobState>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            self.expire_locked(&mut inner, Instant::now());
            let mut states = Vec::with_capacity(ids.len());
            let mut all_terminal = true;
            for id in ids {
                match inner.jobs.get(id).map(|j| &j.slot) {
                    Some(Slot::Done) => states.push(JobState::Done),
                    Some(Slot::Failed { message }) => {
                        states.push(JobState::Failed { message: message.clone() });
                    }
                    _ => {
                        all_terminal = false;
                        break;
                    }
                }
            }
            if all_terminal {
                return Some(states);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Bounded wait so lease expiry is noticed even with no
            // notifications arriving.
            let slice = (deadline - now).min(Duration::from_millis(50));
            let (guard, _) =
                self.changed.wait_timeout(inner, slice).unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Current queue counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let inner = self.lock();
        let mut stats = QueueStats {
            dedup_hits: inner.dedup_hits,
            leases_granted: inner.leases_granted,
            requeues: inner.requeues,
            ..QueueStats::default()
        };
        for job in inner.jobs.values() {
            match job.slot {
                Slot::Queued { .. } => stats.queued += 1,
                Slot::Leased { .. } => stats.leased += 1,
                Slot::Done => stats.done += 1,
                Slot::Failed { .. } => stats.failed += 1,
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn fast_config() -> QueueConfig {
        QueueConfig {
            lease_ttl: Duration::from_millis(40),
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
        }
    }

    #[test]
    fn dedup_returns_existing_job() {
        let q = JobQueue::new(QueueConfig::default());
        let (a, fresh_a) = q.submit((1, 2, 0, 0), 0);
        let (b, fresh_b) = q.submit((1, 2, 0, 0), 5);
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(a, b);
        assert_eq!(q.stats().dedup_hits, 1);
        assert_eq!(q.stats().queued, 1);

        // Dedup still applies after completion — a done job is never redone.
        let lease = q.lease("w0").unwrap();
        q.complete(lease.job_id);
        let (c, fresh_c) = q.submit((1, 2, 0, 0), 0);
        assert_eq!(c, a);
        assert!(!fresh_c);
        assert_eq!(q.state(c), Some(JobState::Done));
    }

    #[test]
    fn priority_then_fifo_ordering() {
        let q = JobQueue::new(QueueConfig::default());
        let (low, _) = q.submit((1, 0, 0, 0), 1);
        let (hi_first, _) = q.submit((2, 0, 0, 0), 9);
        let (hi_second, _) = q.submit((3, 0, 0, 0), 9);
        assert_eq!(q.lease("w").unwrap().job_id, hi_first);
        assert_eq!(q.lease("w").unwrap().job_id, hi_second);
        assert_eq!(q.lease("w").unwrap().job_id, low);
        assert!(q.lease("w").is_none());
    }

    #[test]
    fn expired_lease_requeues_then_fails() {
        let q = JobQueue::new(fast_config());
        let (id, _) = q.submit((7, 0, 0, 0), 0);
        let first = q.lease("dead-worker").unwrap();
        assert_eq!((first.job_id, first.attempt), (id, 1));
        thread::sleep(Duration::from_millis(60));
        // Worker never came back; another worker picks the job up.
        let retry = q.lease("live-worker").unwrap();
        assert_eq!((retry.job_id, retry.attempt), (id, 2));
        assert_eq!(q.stats().requeues, 1);
        // Second holder also dies: attempts (max 2) are exhausted.
        thread::sleep(Duration::from_millis(60));
        assert!(q.lease("w3").is_none());
        assert!(matches!(q.state(id), Some(JobState::Failed { .. })));
    }

    #[test]
    fn heartbeat_keeps_lease_alive() {
        let q = JobQueue::new(fast_config());
        let (id, _) = q.submit((8, 0, 0, 0), 0);
        let lease = q.lease("w").unwrap();
        for _ in 0..4 {
            thread::sleep(Duration::from_millis(20));
            assert!(q.heartbeat(lease.job_id, "w"));
        }
        // Well past the original TTL, the lease is still live.
        assert!(q.lease("thief").is_none());
        q.complete(id);
        assert_eq!(q.state(id), Some(JobState::Done));
    }

    #[test]
    fn stale_completion_after_requeue_still_lands() {
        let q = JobQueue::new(fast_config());
        let (id, _) = q.submit((9, 0, 0, 0), 0);
        let stale = q.lease("slow").unwrap();
        thread::sleep(Duration::from_millis(60));
        let _retry = q.lease("fast").unwrap();
        // The slow worker finishes anyway; deterministic results make this
        // completion as good as any.
        q.complete(stale.job_id);
        assert_eq!(q.state(id), Some(JobState::Done));
    }

    #[test]
    fn worker_failure_retries_then_fails_terminally() {
        let q = JobQueue::new(fast_config());
        let (id, _) = q.submit((5, 0, 0, 0), 0);
        let l1 = q.lease("w").unwrap();
        q.fail(l1.job_id, "simulated crash");
        assert_eq!(q.state(id), Some(JobState::Queued));
        thread::sleep(Duration::from_millis(5));
        let l2 = q.lease("w").unwrap();
        assert_eq!(l2.attempt, 2);
        q.fail(l2.job_id, "simulated crash");
        assert_eq!(q.state(id), Some(JobState::Failed { message: "simulated crash".to_string() }));
        // Resubmission revives a failed job with a fresh attempt budget.
        let (revived, fresh) = q.submit((5, 0, 0, 0), 0);
        assert_eq!(revived, id);
        assert!(fresh);
        assert_eq!(q.state(id), Some(JobState::Queued));
    }

    #[test]
    fn wait_done_blocks_until_terminal() {
        let q = std::sync::Arc::new(JobQueue::new(fast_config()));
        let (a, _) = q.submit((1, 1, 0, 0), 0);
        let (b, _) = q.submit((2, 2, 0, 0), 0);
        let waiter = {
            let q = std::sync::Arc::clone(&q);
            thread::spawn(move || q.wait_done(&[a, b], Duration::from_secs(5)))
        };
        let l1 = q.lease("w").unwrap();
        q.complete(l1.job_id);
        let l2 = q.lease("w").unwrap();
        q.complete(l2.job_id);
        let states = waiter.join().unwrap().expect("wait_done timed out");
        assert_eq!(states, vec![JobState::Done, JobState::Done]);
        assert!(q.wait_done(&[a, b], Duration::from_millis(1)).is_some());
    }
}
