//! Simulation-as-a-service building blocks.
//!
//! This crate is the *mechanism* layer of the `riq-serve` daemon: binary
//! codecs for results/programs/configurations/job blobs ([`codec`]), a
//! durable write-ahead-journaled result store ([`store`]), a leased
//! priority job queue with cross-client dedup ([`queue`]), a hand-rolled
//! std-only HTTP/1.1 server and client ([`http`]), and the worker loop
//! that leases, simulates, and reports jobs ([`worker`]).
//!
//! Policy — experiment planning, sweep aggregation, the HTTP route table —
//! lives in `riq-bench`, which composes these pieces into the daemon
//! behind `riq-repro serve`. The split keeps the dependency direction
//! acyclic: `riq-bench → riq-serve → riq-core`.
//!
//! The governing invariant, inherited from the engine and proven by
//! `tests/serve_determinism.rs`: a sweep fetched from the service is
//! byte-identical to the in-process engine's output for any worker count,
//! any kill/restart schedule, and a warm or cold store — because the
//! simulator is deterministic, results are content-addressed by the same
//! `(program fingerprint, config fingerprint, skip, warmup)` key the
//! engine's cache uses, and aggregation happens in the engine either way.

pub mod codec;
pub mod http;
pub mod queue;
pub mod store;
pub mod worker;

/// A content address: `(program fingerprint, config fingerprint, skip,
/// warmup)` — the same dedup key `riq-bench`'s `JobSpec::key_with` builds
/// (skip `0` normalizes warmup to `0`).
pub type JobKey = (u64, u64, u64, u64);

pub use codec::{
    decode_config, decode_job, decode_program, decode_result, encode_config, encode_job,
    encode_program, encode_result, CodecError, JobBlob,
};
pub use http::{http_request, serve_on, Request, Response, ServerHandle};
pub use queue::{JobQueue, JobState, LeasedJob, QueueConfig, QueueStats};
pub use store::{ResultStore, StoreStats};
pub use worker::{run_worker, WorkerExit, WorkerOptions, WorkerOutcome};
