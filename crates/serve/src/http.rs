//! Minimal HTTP/1.1 server and client over `std::net`.
//!
//! Deliberately small: one request per connection (`Connection: close`),
//! bodies framed by `Content-Length`, thread-per-connection handling. The
//! daemon's traffic is a handful of workers polling for leases plus
//! occasional client submissions — simplicity and zero dependencies beat
//! keep-alive throughput here.
//!
//! The accept loop polls a nonblocking listener so [`ServerHandle::stop`]
//! can shut the daemon down promptly without a self-connect trick.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Upper bound on accepted request bodies (a job blob with a large
/// program image fits comfortably; a runaway client does not).
const MAX_BODY_BYTES: usize = 64 << 20;

/// A parsed inbound request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw query string (empty if absent).
    pub query: String,
    /// Request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Looks up a `key=value` pair in the query string.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// An outbound response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: String) -> Response {
        Response { status: 200, content_type: "application/json", body: body.into_bytes() }
    }

    /// A `200 OK` plain-text response.
    #[must_use]
    pub fn text(body: String) -> Response {
        Response { status: 200, content_type: "text/plain; charset=utf-8", body: body.into_bytes() }
    }

    /// A `200 OK` binary response (codec blobs).
    #[must_use]
    pub fn bytes(body: Vec<u8>) -> Response {
        Response { status: 200, content_type: "application/octet-stream", body }
    }

    /// A `404 Not Found` with a short plain-text reason.
    #[must_use]
    pub fn not_found(reason: &str) -> Response {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: reason.as_bytes().to_vec(),
        }
    }

    /// A `400 Bad Request` with a short plain-text reason.
    #[must_use]
    pub fn bad_request(reason: &str) -> Response {
        Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: reason.as_bytes().to_vec(),
        }
    }

    /// A `204 No Content`.
    #[must_use]
    pub fn no_content() -> Response {
        Response { status: 204, content_type: "text/plain; charset=utf-8", body: Vec::new() }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Running server: a nonblocking accept loop plus per-connection handler
/// threads. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::stop`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port 0 listen).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to exit and joins it. In-flight
    /// connection handlers finish their single request independently.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Starts serving `handler` on `listener` in background threads and
/// returns immediately.
///
/// # Errors
///
/// Returns the underlying I/O error if the listener cannot be inspected
/// or switched to nonblocking mode.
pub fn serve_on(
    listener: TcpListener,
    handler: Arc<dyn Fn(&Request) -> Response + Send + Sync>,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let accept_thread =
        thread::Builder::new().name("riq-serve-accept".to_string()).spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let handler = Arc::clone(&handler);
                        let _ = thread::Builder::new()
                            .name("riq-serve-conn".to_string())
                            .spawn(move || handle_connection(stream, &*handler));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(10)),
                }
            }
        })?;
    Ok(ServerHandle { addr, shutdown, accept_thread: Some(accept_thread) })
}

fn handle_connection(stream: TcpStream, handler: &(dyn Fn(&Request) -> Response + Send + Sync)) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let peer = stream.try_clone();
    let Ok(write_half) = peer else { return };
    let response = match read_request(stream) {
        Ok(request) => handler(&request),
        Err(reason) => reason,
    };
    let _ = write_response(write_half, &response);
}

/// Reads and parses one request. Malformed input maps to an error
/// `Response` that the connection handler sends back directly.
fn read_request(stream: TcpStream) -> Result<Request, Response> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.is_empty() {
        return Err(Response::bad_request("empty request"));
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || !target.starts_with('/') {
        return Err(Response::bad_request("malformed request line"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header).is_err() {
            return Err(Response::bad_request("unterminated headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Response::bad_request("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Response {
            status: 413,
            content_type: "text/plain; charset=utf-8",
            body: b"body too large".to_vec(),
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 && reader.read_exact(&mut body).is_err() {
        return Err(Response::bad_request("short body"));
    }
    Ok(Request { method, path, query, body })
}

fn write_response(mut stream: TcpStream, response: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Performs one HTTP request against `addr` and returns
/// `(status, body)`.
///
/// # Errors
///
/// Returns an I/O error if the connection fails or the response is not
/// parseable HTTP/1.1.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(120)))?;
    let mut write_half = stream.try_clone()?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    write_half.write_all(head.as_bytes())?;
    write_half.write_all(body)?;
    write_half.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut payload = Vec::new();
    match content_length {
        Some(n) => {
            payload.resize(n, 0);
            reader.read_exact(&mut payload)?;
        }
        None => {
            reader.read_to_end(&mut payload)?;
        }
    }
    Ok((status, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> ServerHandle {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        serve_on(
            listener,
            Arc::new(|req: &Request| match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/ping") => Response::text(format!("pong q={}", req.query)),
                ("POST", "/echo") => Response::bytes(req.body.clone()),
                ("GET", "/gone") => Response::not_found("nope"),
                _ => Response::bad_request("unhandled"),
            }),
        )
        .unwrap()
    }

    #[test]
    fn request_response_roundtrip() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let (status, body) = http_request(&addr, "GET", "/ping?a=1&b=2", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"pong q=a=1&b=2");
        let blob: Vec<u8> = (0u16..600).map(|i| (i % 251) as u8).collect();
        let (status, echoed) = http_request(&addr, "POST", "/echo", &blob).unwrap();
        assert_eq!(status, 200);
        assert_eq!(echoed, blob);
        let (status, _) = http_request(&addr, "GET", "/gone", b"").unwrap();
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                thread::spawn(move || {
                    let body = vec![i as u8; 1000];
                    let (status, echoed) = http_request(&addr, "POST", "/echo", &body).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(echoed, body);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn query_param_lookup() {
        let req = Request {
            method: "GET".to_string(),
            path: "/x".to_string(),
            query: "worker=w1&count=3".to_string(),
            body: Vec::new(),
        };
        assert_eq!(req.query_param("worker"), Some("w1"));
        assert_eq!(req.query_param("count"), Some("3"));
        assert_eq!(req.query_param("missing"), None);
    }
}
